//! dftmc — the command-line front end over the shared request layer.
//!
//! The CLI is deliberately thin: it reads a tree (Galileo text or dftlib
//! JSON interchange), parses query lines into an
//! [`AnalysisRequest`], and executes it through
//! [`AnalysisService::run_request`] — exactly the code path the HTTP server
//! and library callers use, so its JSON output is bit-identical to theirs.
//!
//! ```text
//! dftmc run <tree.dft|tree.json> --query "unreliability 1.0" [options]
//! dftmc convert <tree.dft|tree.json> [--to galileo|json]
//! ```
//!
//! Queries use the grammar documented in `dft_core::request`:
//!
//! ```text
//! unreliability <time>
//! curve <time> <time> ...
//! unavailability
//! mttf
//! sweep lambda(<element>)|mu(<element>)|scale in <start>..<end> step <step>
//! ```

use dft::json::Json;
use dft::Dft;
use dft_core::request::{AnalysisRequest, MethodSpec};
use dft_core::service::{AnalysisService, ServiceOptions};
use dftmc_serve::router::outcome_fields;

const USAGE: &str = "dftmc — compositional dynamic fault tree analysis

USAGE:
    dftmc run <tree> [--query <line>]... [--queries <file>] [options]
    dftmc convert <tree> [--to galileo|json]
    dftmc help

The tree file may be Galileo text (usually .dft) or a dftlib-style JSON
interchange document (.json); the format is detected from the content.

RUN OPTIONS:
    -q, --query <line>    A query line; repeatable.  One of:
                              unreliability <time>
                              curve <time> <time> ...
                              unavailability
                              mttf
                              sweep lambda(<el>)|mu(<el>)|scale \
in <start>..<end> step <step>
    --queries <file>      A file of query lines (one per line; blank lines
                          and lines starting with '#' are skipped).
    --method <name>       compositional | monolithic | hybrid  [default: hybrid]
    --epsilon <e>         Truncation error of the transient analysis.
    --store <dir>         Persistent model store shared across runs and with
                          dftmc-serve: a tree analyzed once is a disk read
                          ever after.
    --pretty              Indent the JSON output.

The result is a JSON document on stdout with the same report fields the
HTTP server's GET /result/{id} returns.";

/// A fatal CLI error: exit code 2 for usage problems, 1 for input problems.
struct Fatal {
    code: i32,
    message: String,
}

fn usage_error(message: impl Into<String>) -> Fatal {
    Fatal {
        code: 2,
        message: message.into(),
    }
}

fn input_error(message: impl Into<String>) -> Fatal {
    Fatal {
        code: 1,
        message: message.into(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => println!("{output}"),
        Err(fatal) => {
            eprintln!("dftmc: {}", fatal.message);
            std::process::exit(fatal.code);
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, Fatal> {
    match args.first().map(String::as_str) {
        Some("run") => run(args.get(1..).unwrap_or(&[])),
        Some("convert") => convert(args.get(1..).unwrap_or(&[])),
        Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_owned()),
        Some(other) => Err(usage_error(format!(
            "unknown command '{other}' (try 'dftmc help')"
        ))),
        None => Err(usage_error("missing command (try 'dftmc help')")),
    }
}

/// Reads and parses a tree file, detecting the format from the content:
/// dftlib JSON documents start with '{', Galileo text never does.
fn load_tree(path: &str) -> Result<Dft, Fatal> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| input_error(format!("cannot read '{path}': {e}")))?;
    let parsed = if text.trim_start().starts_with('{') {
        dft::json_format::parse(&text)
    } else {
        dft::galileo::parse(&text)
    };
    parsed.map_err(|e| input_error(format!("cannot parse '{path}': {e}")))
}

fn run(args: &[String]) -> Result<String, Fatal> {
    let mut tree_path: Option<&str> = None;
    let mut queries: Vec<String> = Vec::new();
    let mut method = MethodSpec(dft_core::Method::Hybrid);
    let mut epsilon: Option<f64> = None;
    let mut store: Option<&str> = None;
    let mut pretty = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .ok_or_else(|| usage_error(format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "-q" | "--query" => queries.push(value("a query line")?.clone()),
            "--queries" => {
                let path = value("a file of query lines")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| input_error(format!("cannot read '{path}': {e}")))?;
                queries.extend(
                    text.lines()
                        .map(str::trim)
                        .filter(|line| !line.is_empty() && !line.starts_with('#'))
                        .map(str::to_owned),
                );
            }
            "--method" => {
                method = value("a method name")?
                    .parse::<MethodSpec>()
                    .map_err(|e| usage_error(e.to_string()))?;
            }
            "--epsilon" => {
                let raw = value("a positive number")?;
                let parsed: f64 = raw
                    .parse()
                    .map_err(|_| usage_error(format!("cannot parse epsilon '{raw}'")))?;
                if !parsed.is_finite() || parsed <= 0.0 {
                    return Err(usage_error("epsilon must be a positive finite number"));
                }
                epsilon = Some(parsed);
            }
            "--store" => store = Some(value("a directory")?),
            "--pretty" => pretty = true,
            other if other.starts_with('-') => {
                return Err(usage_error(format!("unknown option '{other}'")));
            }
            _ if tree_path.is_none() => tree_path = Some(arg),
            _ => return Err(usage_error(format!("unexpected argument '{arg}'"))),
        }
    }

    let Some(path) = tree_path else {
        return Err(usage_error("missing tree file (try 'dftmc help')"));
    };
    if queries.is_empty() {
        return Err(usage_error("no queries given (use --query or --queries)"));
    }

    let mut request = AnalysisRequest::new(load_tree(path)?);
    request.options.method = method.0;
    if let Some(epsilon) = epsilon {
        request.options.epsilon = epsilon;
    }
    for line in &queries {
        request
            .add_query(line)
            .map_err(|e| usage_error(e.to_string()))?;
    }

    let mut options = ServiceOptions::default();
    if let Some(dir) = store {
        options = options.store(dir);
    }
    let service = AnalysisService::new(options);
    let epsilon = request.options.epsilon;
    let outcome = service.run_request(request);

    let mut entries = vec![
        ("tree".to_owned(), Json::Str(path.to_owned())),
        ("method".to_owned(), Json::Str(method.name().to_owned())),
        ("epsilon".to_owned(), Json::Num(epsilon)),
    ];
    entries.extend(outcome_fields(&outcome));
    let doc = Json::Obj(entries);
    Ok(if pretty { doc.pretty() } else { doc.render() })
}

fn convert(args: &[String]) -> Result<String, Fatal> {
    let mut tree_path: Option<&str> = None;
    let mut target: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--to" => {
                let value = iter
                    .next()
                    .ok_or_else(|| usage_error("--to needs 'galileo' or 'json'"))?;
                match value.as_str() {
                    "galileo" | "json" => target = Some(value),
                    other => {
                        return Err(usage_error(format!(
                            "unknown format '{other}' (expected 'galileo' or 'json')"
                        )))
                    }
                }
            }
            other if other.starts_with('-') => {
                return Err(usage_error(format!("unknown option '{other}'")));
            }
            _ if tree_path.is_none() => tree_path = Some(arg),
            _ => return Err(usage_error(format!("unexpected argument '{arg}'"))),
        }
    }
    let Some(path) = tree_path else {
        return Err(usage_error("missing tree file (try 'dftmc help')"));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| input_error(format!("cannot read '{path}': {e}")))?;
    let from_json = text.trim_start().starts_with('{');
    let dft = if from_json {
        dft::json_format::parse(&text)
    } else {
        dft::galileo::parse(&text)
    }
    .map_err(|e| input_error(format!("cannot parse '{path}': {e}")))?;
    // Without --to, convert to the format the input is not in.
    let to_json = match target {
        Some(t) => t == "json",
        None => !from_json,
    };
    Ok(if to_json {
        dft::json_format::to_json(&dft)
    } else {
        // The printer ends with a newline; println adds the final one.
        dft::galileo::to_galileo(&dft).trim_end().to_owned()
    })
}
