//! # dftmc — compositional Dynamic Fault Tree analysis with I/O-IMCs
//!
//! Facade crate re-exporting the workspace crates. See the README for a tour.

#![forbid(unsafe_code)]

pub use dft;
pub use dft_core;
pub use dftmc_serve;
pub use ioimc;
pub use markov;
