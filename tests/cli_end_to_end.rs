//! End-to-end tests for the `dftmc` CLI binary: its JSON output must be
//! bit-identical to what the library's shared request layer produces for the
//! same [`AnalysisRequest`] — same fields, same order, same shortest-round-trip
//! float rendering — because both surfaces build their documents through
//! `dftmc_serve::router::outcome_fields`.  Only the wall-clock `*_seconds`
//! fields may differ between the two runs, so the comparison scrubs those.

use dftmc::dft::json::{self, Json};
use dftmc::dft_core::request::{AnalysisRequest, MethodSpec};
use dftmc::dft_core::service::{AnalysisService, ServiceOptions};
use dftmc::dftmc_serve::router::outcome_fields;
use std::process::Command;

fn dftmc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dftmc"))
        .args(args)
        .output()
        .expect("the dftmc binary runs")
}

/// Drops every `*_seconds` entry, recursively: timing is the one part of the
/// report that legitimately differs between two runs of the same request.
fn scrub_timing(value: &Json) -> Json {
    match value {
        Json::Obj(entries) => Json::Obj(
            entries
                .iter()
                .filter(|(key, _)| !key.ends_with("_seconds"))
                .map(|(key, v)| (key.clone(), scrub_timing(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(scrub_timing).collect()),
        other => other.clone(),
    }
}

/// Runs the same request through the in-process library path and renders the
/// document exactly as `dftmc run` does.
fn library_document(tree_path: &str, method_name: &str, queries: &[&str]) -> Json {
    let text = std::fs::read_to_string(tree_path).expect("the corpus tree exists");
    let dft = dftmc::dft::galileo::parse(&text).expect("the corpus tree parses");
    let mut request = AnalysisRequest::new(dft);
    let method: MethodSpec = method_name.parse().expect("a valid method");
    request.options.method = method.0;
    for line in queries {
        request.add_query(line).expect("a valid query line");
    }
    let epsilon = request.options.epsilon;
    let service = AnalysisService::new(ServiceOptions::default());
    let outcome = service.run_request(request);
    let mut entries = vec![
        ("tree".to_owned(), Json::Str(tree_path.to_owned())),
        ("method".to_owned(), Json::Str(method_name.to_owned())),
        ("epsilon".to_owned(), Json::Num(epsilon)),
    ];
    entries.extend(outcome_fields(&outcome));
    Json::Obj(entries)
}

fn run_and_compare(tree_path: &str, method_name: &str, queries: &[&str]) -> Json {
    let mut args = vec!["run", tree_path, "--method", method_name];
    for q in queries {
        args.push("--query");
        args.push(q);
    }
    let output = dftmc(&args);
    assert!(
        output.status.success(),
        "dftmc failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let cli_doc = json::parse(stdout.trim()).expect("dftmc prints valid JSON");

    let lib_doc = library_document(tree_path, method_name, queries);
    assert_eq!(
        scrub_timing(&cli_doc).render(),
        scrub_timing(&lib_doc).render(),
        "CLI and library documents diverge for {tree_path}"
    );
    cli_doc
}

#[test]
fn run_is_bit_identical_to_the_library_path() {
    let doc = run_and_compare(
        "tests/fixtures/corpus/cas_lite.dft",
        "hybrid",
        &["unreliability 1", "curve 0.5 1.0 2.0"],
    );
    // Sanity on the document itself: two measures came back.
    let Json::Obj(entries) = &doc else {
        panic!("document root must be an object")
    };
    let results = entries
        .iter()
        .find(|(k, _)| k == "results")
        .map(|(_, v)| v)
        .expect("a results field");
    let Json::Arr(results) = results else {
        panic!("results must be an array")
    };
    assert_eq!(results.len(), 2);
}

#[test]
fn compositional_and_monolithic_methods_run_through_the_cli() {
    run_and_compare(
        "tests/fixtures/corpus/cps_lite.dft",
        "compositional",
        &["unreliability 1", "mttf"],
    );
    run_and_compare(
        "tests/fixtures/corpus/rc_gate.dft",
        "monolithic",
        &["unreliability 1"],
    );
}

/// The acceptance sweep: `sweep lambda(P1) in 0.5..2.0 step 0.1` expands to 16
/// valuations and the CLI's points match the library's parametric path
/// bit-for-bit.
#[test]
fn sweep_queries_match_the_parametric_path() {
    let doc = run_and_compare(
        "tests/fixtures/corpus/hecs.dft",
        "compositional",
        &["unreliability 1", "sweep lambda(P1) in 0.5..2.0 step 0.1"],
    );
    let Json::Obj(entries) = &doc else {
        panic!("document root must be an object")
    };
    let points = entries
        .iter()
        .find(|(k, _)| k == "points")
        .map(|(_, v)| v)
        .expect("a points field");
    let Json::Arr(points) = points else {
        panic!("points must be an array")
    };
    assert_eq!(points.len(), 16, "0.5..2.0 step 0.1 is 16 inclusive points");
}

#[test]
fn convert_round_trips_between_the_formats() {
    let source = "tests/fixtures/corpus/mdcs.dft";
    let to_json = dftmc(&["convert", source]);
    assert!(to_json.status.success());
    let json_text = String::from_utf8(to_json.stdout).expect("utf-8 output");

    // Park the JSON in a scratch file and convert it back.
    let scratch = std::env::temp_dir().join(format!("dftmc_cli_e2e_{}.json", std::process::id()));
    std::fs::write(&scratch, &json_text).expect("scratch file writes");
    let back = dftmc(&["convert", scratch.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&scratch);
    assert!(back.status.success());
    let galileo_text = String::from_utf8(back.stdout).expect("utf-8 output");

    // The round-tripped Galileo equals printing the original directly.
    let original = dftmc::dft::galileo::parse(
        &std::fs::read_to_string(source).expect("the corpus tree exists"),
    )
    .expect("the corpus tree parses");
    assert_eq!(
        galileo_text.trim_end(),
        dftmc::dft::galileo::to_galileo(&original).trim_end()
    );
}

#[test]
fn usage_and_input_errors_use_distinct_exit_codes() {
    // Usage problem: malformed query line -> exit code 2.
    let bad_query = dftmc(&[
        "run",
        "tests/fixtures/corpus/hecs.dft",
        "--query",
        "sweep lambda(P1) in 2.0..0.5 step 0.1",
    ]);
    assert_eq!(bad_query.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_query.stderr).contains("dftmc:"));

    // Input problem: unreadable tree -> exit code 1.
    let missing = dftmc(&["run", "no_such_tree.dft", "--query", "unreliability 1"]);
    assert_eq!(missing.status.code(), Some(1));

    // Unknown method is a usage problem with the typed message.
    let bad_method = dftmc(&[
        "run",
        "tests/fixtures/corpus/hecs.dft",
        "--method",
        "quantum",
        "--query",
        "unreliability 1",
    ]);
    assert_eq!(bad_method.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_method.stderr).contains("method"));
}
