//! Integration tests for the [`Analyzer`] session engine.
//!
//! The contract under test is the one the API redesign promises:
//!
//! 1. a mission-time sweep of any length triggers **exactly one**
//!    conversion + aggregation,
//! 2. [`Measure::UnreliabilityCurve`] matches repeated single-time queries,
//! 3. unreliability is monotone in the mission time (property test over random
//!    static trees),
//! 4. the legacy one-shot wrappers in `dft_core::analysis` return bit-identical
//!    results to the engine path on the paper's two case studies.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unavailability, unreliability};
use dftmc::dft_core::casestudies::{cas, cps, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::rng::SplitMix64;
use dftmc::dft_core::{AnalysisOptions, Method};

mod common;
use common::random_static_tree;

/// A ≥10-point mission-time sweep through one `Analyzer` session runs the
/// aggregation pipeline exactly once, and its statistics stay frozen across
/// queries of every kind.
#[test]
fn sweep_triggers_exactly_one_aggregation() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    assert_eq!(
        analyzer.aggregation_runs(),
        1,
        "construction aggregates once"
    );
    let stats_before = analyzer
        .aggregation_stats()
        .expect("compositional run")
        .clone();

    assert_eq!(DEFAULT_MISSION_TIMES.len(), 10);
    let curve = analyzer
        .query(Measure::curve(DEFAULT_MISSION_TIMES))
        .unwrap();
    assert_eq!(curve.len(), 10);
    // Pile on more queries of every supported kind.
    for &t in &DEFAULT_MISSION_TIMES {
        analyzer.query(Measure::Unreliability(t)).unwrap();
    }
    // CAS carries genuine non-determinism (its FDEP fails P and B simultaneously
    // under a spare gate), so MTTF is rejected — exactly as the legacy path does —
    // and unavailability needs a repairable model; neither error path re-runs
    // aggregation.
    assert!(
        analyzer.query(Measure::Mttf).is_err(),
        "CAS non-determinism rejects MTTF"
    );
    assert!(
        analyzer.query(Measure::Unavailability).is_err(),
        "CAS is not repairable"
    );

    assert_eq!(
        analyzer.aggregation_runs(),
        1,
        "21 queries later the pipeline still ran exactly once"
    );
    let stats_after = analyzer.aggregation_stats().expect("compositional run");
    assert_eq!(stats_before.steps.len(), stats_after.steps.len());
    assert_eq!(stats_before.peak, stats_after.peak);
    assert_eq!(stats_before.final_model, stats_after.final_model);
}

/// Curve queries match repeated single-time queries — on the same session they
/// are bit-identical (shared value-iteration pass, same Poisson weights).
#[test]
fn curve_matches_pointwise_queries() {
    for (dft, label) in [(cas(), "cas"), (cps(), "cps")] {
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let curve = analyzer
            .query(Measure::curve(DEFAULT_MISSION_TIMES))
            .unwrap();
        for (point, &t) in curve.points().iter().zip(&DEFAULT_MISSION_TIMES) {
            assert_eq!(point.time(), Some(t));
            let single = analyzer.query(Measure::Unreliability(t)).unwrap();
            let epsilon = analyzer.options().epsilon;
            assert!(
                (point.value() - single.value()).abs() <= epsilon,
                "{label} at t={t}: curve {} vs single {}",
                point.value(),
                single.value()
            );
            assert_eq!(
                point.value().to_bits(),
                single.value().to_bits(),
                "{label} at t={t}: same session, same pass — must be bit-identical"
            );
            assert_eq!(point.bounds(), single.bounds(), "{label} at t={t}");
        }
    }
}

/// Property test: on random static trees, the unreliability curve is monotone in
/// the mission time (failures accumulate; nothing is repairable here).
#[test]
fn unreliability_curve_is_monotone_in_time() {
    for case in 0..16u64 {
        let dft = random_static_tree(0xc0ffee + case, &format!("eng_mono{case}"));
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let mut rng = SplitMix64::new(0xbeef + case);
        // A sorted random grid plus the default grid, to vary the sample points.
        let mut times: Vec<f64> = (0..12).map(|_| rng.next_f64() * 4.0).collect();
        times.extend_from_slice(&DEFAULT_MISSION_TIMES);
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let curve = analyzer.query(Measure::curve(times)).unwrap();
        let values: Vec<f64> = curve.values().collect();
        for window in values.windows(2) {
            assert!(
                window[1] >= window[0] - 1e-9,
                "case {case}: unreliability decreased: {} -> {}",
                window[0],
                window[1]
            );
        }
        assert!(
            values.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)),
            "case {case}"
        );
        assert_eq!(analyzer.aggregation_runs(), 1);
    }
}

/// The legacy wrappers delegate to the engine, so their results must be
/// bit-identical to querying an `Analyzer` directly — on both case studies and
/// for both methods.
#[test]
fn legacy_wrappers_are_bit_identical_to_the_engine_on_the_case_studies() {
    for (dft, label) in [(cas(), "cas"), (cps(), "cps")] {
        for method in [Method::Compositional, Method::Monolithic] {
            let options = AnalysisOptions {
                method,
                ..AnalysisOptions::default()
            };
            let analyzer = Analyzer::new(&dft, options.clone()).unwrap();
            for &t in &DEFAULT_MISSION_TIMES {
                let engine = analyzer.query(Measure::Unreliability(t)).unwrap();
                let legacy = unreliability(&dft, t, &options).unwrap();
                assert_eq!(
                    legacy.probability().to_bits(),
                    engine.value().to_bits(),
                    "{label}/{method:?} at t={t}: legacy {} vs engine {}",
                    legacy.probability(),
                    engine.value()
                );
                assert_eq!(
                    legacy.bounds(),
                    engine.bounds(),
                    "{label}/{method:?} at t={t}"
                );
                assert_eq!(
                    legacy.is_nondeterministic(),
                    engine.is_nondeterministic(),
                    "{label}/{method:?} at t={t}"
                );
            }
        }
    }
}

/// Same bit-identity contract for the unavailability wrapper, on a repairable
/// system (the case studies are non-repairable, where both paths must agree on
/// the error instead).
#[test]
fn legacy_unavailability_matches_the_engine() {
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("eng_rA", 1.0, Dormancy::Hot, 10.0)
        .unwrap();
    let bb = b
        .repairable_basic_event("eng_rB", 2.0, Dormancy::Hot, 10.0)
        .unwrap();
    let top = b.and_gate("eng_rTop", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();

    let options = AnalysisOptions::default();
    let analyzer = Analyzer::new(&dft, options.clone()).unwrap();
    let engine = analyzer.query(Measure::Unavailability).unwrap();
    let legacy = unavailability(&dft, &options).unwrap();
    assert_eq!(legacy.unavailability.to_bits(), engine.value().to_bits());
    assert_eq!(legacy.final_model, analyzer.model_stats());

    // Non-repairable trees: both paths reject the query.
    assert!(unavailability(&cas(), &options).is_err());
    assert!(Analyzer::new(&cas(), options)
        .unwrap()
        .query(Measure::Unavailability)
        .is_err());
}

/// The engine handles edge-case sweeps: unsorted input (answered in request
/// order), duplicate points, t = 0, and the empty sweep.
#[test]
fn curve_edge_cases() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();

    let unsorted = [2.0, 0.5, 1.0, 0.5, 0.0];
    let curve = analyzer.query(Measure::curve(unsorted)).unwrap();
    assert_eq!(curve.len(), 5);
    let values: Vec<f64> = curve.values().collect();
    assert_eq!(
        values[1].to_bits(),
        values[3].to_bits(),
        "duplicate points agree"
    );
    assert_eq!(values[4], 0.0, "nothing fails in zero time");
    assert!(
        values[0] > values[2] && values[2] > values[1],
        "request order is preserved"
    );

    // An empty sweep has nothing to evaluate: rejected with a typed error at
    // query time, so `MeasureResult::value()` can never panic on engine output.
    assert!(
        matches!(
            analyzer.query(Measure::UnreliabilityCurve(Vec::new())),
            Err(dftmc::dft_core::Error::EmptyCurve)
        ),
        "empty curves are rejected with the typed error"
    );

    assert!(
        analyzer.query(Measure::curve([1.0, -1.0])).is_err(),
        "negative mission times are rejected"
    );
}

/// Non-finite (and negative) mission times are rejected with the typed
/// [`Error::InvalidMissionTime`] at the `query`/`query_all` boundary — before
/// any uniformisation starts — across every [`Measure`] variant.  The
/// time-less measures (`Unavailability`, `Mttf`) have nothing to validate and
/// keep working unchanged in the same batch.
#[test]
fn non_finite_mission_times_are_typed_errors_at_the_query_boundary() {
    use dftmc::dft_core::Error;

    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    let reject = |measure: Measure, expected: f64| {
        match analyzer.query(&measure) {
            Err(Error::InvalidMissionTime { value }) => {
                // NaN never equals itself; compare representations instead.
                assert_eq!(
                    value.to_bits(),
                    expected.to_bits(),
                    "the error must carry the offending time"
                );
            }
            other => panic!("{measure:?} must be InvalidMissionTime, got {other:?}"),
        }
        // `query_all` validates while merging the time grid: the same typed
        // error, even when healthy measures surround the faulty one.
        assert!(
            matches!(
                analyzer.query_all(&[Measure::Mttf, measure.clone(), Measure::Unreliability(1.0)]),
                Err(Error::InvalidMissionTime { .. })
            ),
            "{measure:?} must fail the whole query_all batch with the typed error"
        );
    };

    // Measure::Unreliability — scalar mission times.
    reject(Measure::Unreliability(f64::NAN), f64::NAN);
    reject(Measure::Unreliability(f64::INFINITY), f64::INFINITY);
    reject(Measure::Unreliability(-1.0), -1.0);

    // Measure::UnreliabilityCurve — any faulty point poisons the curve, also
    // when it hides behind valid ones.
    reject(Measure::curve([1.0, -1.0, 2.0]), -1.0);
    reject(Measure::curve([f64::INFINITY]), f64::INFINITY);
    reject(Measure::curve([0.5, f64::NAN]), f64::NAN);
    reject(Measure::curve([f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);

    // Measure::Unavailability and Measure::Mttf carry no mission time: they
    // are unaffected by the boundary validation (and t = 0 stays valid).
    assert!((analyzer.query(Measure::Unreliability(0.0)).unwrap().value()).abs() < 1e-12);
    assert!(
        matches!(
            analyzer.query(Measure::Unavailability),
            Err(Error::Unsupported { .. })
        ),
        "the CAS is not repairable; unavailability keeps its own typed error"
    );

    let mut b = DftBuilder::new();
    let x = b
        .repairable_basic_event("imt_X", 1.0, Dormancy::Hot, 9.0)
        .unwrap();
    let top = b.or_gate("imt_Top", &[x]).unwrap();
    let repairable = Analyzer::new(&b.build(top).unwrap(), AnalysisOptions::default()).unwrap();
    let batch = repairable
        .query_all(&[Measure::Unavailability, Measure::Mttf])
        .unwrap();
    assert!((batch[0].value() - 0.1).abs() < 1e-6);
    assert!((batch[1].value() - 1.0).abs() < 1e-6);

    // The monolithic backend validates at the same boundary.
    let monolithic = Analyzer::new(
        &cas(),
        AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
    )
    .unwrap();
    assert!(matches!(
        monolithic.query(Measure::Unreliability(f64::NAN)),
        Err(Error::InvalidMissionTime { .. })
    ));
}
