//! Experiment E1 — Figure 2 of the paper: parallel composition, hiding and
//! aggregation of two small I/O-IMCs.
//!
//! I/O-IMC `A` performs an exponential delay and then outputs `a!`; I/O-IMC `B`
//! waits for `a?` and its own equal-rate delay (in either order) and then outputs
//! `b!`.  Composing the two, hiding `a` and aggregating modulo weak bisimulation
//! collapses the interleaving diamond into a four-state chain, exactly as drawn in
//! Figure 2(c).

use dftmc::ioimc::bisim::{minimize, minimize_strong};
use dftmc::ioimc::closed::{can_fire_immediately, drop_input_transitions};
use dftmc::ioimc::compose::compose;
use dftmc::ioimc::hide::hide;
use dftmc::ioimc::{Action, IoImc, IoImcBuilder, Label};
use dftmc::markov::Ctmc;

const LAMBDA: f64 = 1.3;

fn model_a() -> IoImc {
    let a = Action::new("fig2_a");
    let mut b = IoImcBuilder::new("A");
    let s = b.add_states(3);
    b.initial(s[0]);
    b.markovian(s[0], LAMBDA, s[1]);
    b.output(s[1], a, s[2]);
    b.build().expect("model A is well-formed")
}

fn model_b() -> IoImc {
    let a = Action::new("fig2_a");
    let b_sig = Action::new("fig2_b");
    let mut b = IoImcBuilder::new("B");
    let t = b.add_states(5);
    b.initial(t[0]);
    b.markovian(t[0], LAMBDA, t[1]);
    b.input(t[0], a, t[2]);
    b.input(t[1], a, t[3]);
    b.markovian(t[2], LAMBDA, t[3]);
    b.output(t[3], b_sig, t[4]);
    b.build().expect("model B is well-formed")
}

fn composed_and_hidden() -> IoImc {
    let composed = compose(&model_a(), &model_b()).expect("composable");
    hide(&composed, &[Action::new("fig2_a")]).expect("a is an output")
}

#[test]
fn composition_synchronises_on_the_shared_action() {
    let composed = compose(&model_a(), &model_b()).expect("composable");
    // The shared action remains an output of the composition, b stays an output.
    assert!(composed.signature().is_output(Action::new("fig2_a")));
    assert!(composed.signature().is_output(Action::new("fig2_b")));
    assert!(!composed.signature().is_input(Action::new("fig2_a")));
    assert!(composed.validate().is_ok());
    // The interleaved product of a 3-state and a 5-state model stays small because
    // only the reachable part is built.
    assert!(composed.num_states() <= 15);
}

#[test]
fn aggregation_collapses_the_interleaving_diamond() {
    let hidden = composed_and_hidden();
    let reduced = minimize(&hidden);
    assert!(reduced.validate().is_ok());
    // Figure 2(c): four states suffice (initial, one lumped middle state, firing,
    // fired).
    assert!(
        reduced.num_states() <= 4,
        "expected at most 4 states, got {}",
        reduced.num_states()
    );
    // The first move lumps both interleavings into a single rate-2λ transition.
    let initial_rate: f64 = reduced
        .markovian_from(reduced.initial())
        .iter()
        .map(|t| t.rate)
        .sum();
    assert!((initial_rate - 2.0 * LAMBDA).abs() < 1e-9);
    // b! stays observable.
    assert!(reduced
        .interactive()
        .iter()
        .any(|t| t.label == Label::Output(Action::new("fig2_b"))));
}

#[test]
fn weak_aggregation_is_at_least_as_strong_as_strong_bisimulation() {
    let hidden = composed_and_hidden();
    let weak = minimize(&hidden);
    let strong = minimize_strong(&hidden);
    assert!(weak.num_states() <= strong.num_states());
    assert!(strong.num_states() <= hidden.num_states());
}

#[test]
fn aggregation_preserves_the_time_to_b() {
    // The time until b! is emitted is the sum of two exp(λ) delays (they can run
    // in parallel but both must finish... in this model B's own delay only starts
    // counting concurrently, so the completion time is max of the two delays
    // *interleaved through the composition*; rather than reasoning on paper we
    // check that the aggregated and the unaggregated model give the same value).
    let hidden = composed_and_hidden();
    let reduced = minimize(&hidden);

    let probability_of_b = |model: &IoImc, t: f64| -> f64 {
        let closed = drop_input_transitions(model);
        let goal = can_fire_immediately(&closed, Action::new("fig2_b"));
        let transitions: Vec<(u32, u32, f64)> = closed
            .markovian()
            .iter()
            .map(|tr| (tr.from.index() as u32, tr.to.index() as u32, tr.rate))
            .collect();
        let ctmc =
            Ctmc::from_transitions(closed.num_states(), closed.initial().index(), &transitions)
                .expect("valid chain");
        ctmc.reachability(&goal, t, 1e-10)
            .expect("reachability computes")
    };

    for t in [0.3, 1.0, 2.5] {
        let full = probability_of_b(&hidden, t);
        let small = probability_of_b(&reduced, t);
        assert!(
            (full - small).abs() < 1e-9,
            "t={t}: unaggregated {full} vs aggregated {small}"
        );
        // Both delays have the same rate, so the completion time is Erlang-like;
        // sanity-check monotonicity and range.
        assert!(full > 0.0 && full < 1.0);
    }
}
