//! JSON interchange corpus tests: the dftlib-schema round trip over random
//! trees (JSON ⇄ Galileo ⇄ [`Dft`]), a negative corpus of malformed documents
//! that must fail with *typed* errors (matching the `xlint` panic-freedom
//! contract on `dft::json_format`), and print → parse idempotence over every
//! committed corpus tree in `tests/fixtures/corpus/`.

use dftmc::dft::galileo::{self, to_galileo};
use dftmc::dft::{json_format, Error};
use dftmc::dft_core::rng::SplitMix64;
use std::path::PathBuf;

mod common;
use common::{assert_same_tree, random_galileo};

/// Galileo → `Dft` → JSON → `Dft` → Galileo: both hops preserve the tree, and
/// both printers are idempotent after one round trip.
#[test]
fn random_trees_round_trip_between_all_three_forms() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let text = random_galileo(&mut rng);
        let dft = galileo::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: generated text invalid: {e}\n{text}"));

        let json = json_format::to_json(&dft);
        let from_json = json_format::parse(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: encoded JSON invalid: {e}\n{json}"));
        assert_same_tree(&dft, &from_json);
        assert_eq!(
            json_format::to_json(&from_json),
            json,
            "seed {seed}: JSON printing is not idempotent"
        );

        // Close the triangle: the JSON-loaded tree prints to the same Galileo
        // as the directly parsed one.
        assert_eq!(
            to_galileo(&from_json),
            to_galileo(&dft),
            "seed {seed}: JSON hop changed the Galileo rendering"
        );
        assert_eq!(dft.fingerprint(), from_json.fingerprint(), "seed {seed}");
    }
}

/// Every entry must be rejected with [`Error::Json`] — not a panic, not a
/// silently defaulted value.
#[test]
fn negative_json_corpus_fails_typed() {
    let schema_errors: &[(&str, &str)] = &[
        ("empty input", ""),
        ("truncated document", r#"{"toplevel": "1", "nodes": ["#),
        ("root is an array", "[1, 2]"),
        ("root is a string", r#""toplevel""#),
        ("missing toplevel", r#"{"nodes": []}"#),
        ("toplevel is an object", r#"{"toplevel": {}, "nodes": []}"#),
        ("missing nodes", r#"{"toplevel": "1"}"#),
        ("nodes is not an array", r#"{"toplevel": "1", "nodes": {}}"#),
        (
            "node is not an object",
            r#"{"toplevel": "1", "nodes": [42]}"#,
        ),
        (
            "node without data",
            r#"{"toplevel": "1", "nodes": [{"group": "nodes"}]}"#,
        ),
        (
            "node without id",
            r#"{"toplevel": "1", "nodes": [{"data": {"type": "be", "rate": 1}}]}"#,
        ),
        (
            "node without type",
            r#"{"toplevel": "1", "nodes": [{"data": {"id": "1", "rate": 1}}]}"#,
        ),
        (
            "unknown node type",
            r#"{"toplevel": "1",
                "nodes": [{"data": {"id": "1", "type": "quorum", "children": ["1"]}}]}"#,
        ),
        (
            "basic event without rate",
            r#"{"toplevel": "1", "nodes": [{"data": {"id": "1", "type": "be"}}]}"#,
        ),
        (
            "unparseable rate string",
            r#"{"toplevel": "1",
                "nodes": [{"data": {"id": "1", "type": "be", "rate": "fast"}}]}"#,
        ),
        (
            "gate without children",
            r#"{"toplevel": "1", "nodes": [{"data": {"id": "1", "type": "and"}}]}"#,
        ),
        (
            "gate with empty children",
            r#"{"toplevel": "1",
                "nodes": [{"data": {"id": "1", "type": "and", "children": []}}]}"#,
        ),
        (
            "voting gate without threshold",
            r#"{"toplevel": "1",
                "nodes": [{"data": {"id": "1", "type": "vot", "children": ["1"]}}]}"#,
        ),
        (
            "negative voting threshold",
            r#"{"toplevel": "2", "nodes": [
                {"data": {"id": "0", "type": "be", "rate": 1}},
                {"data": {"id": "1", "type": "be", "rate": 1}},
                {"data": {"id": "2", "type": "vot", "voting": "-1",
                          "children": ["0", "1"]}}]}"#,
        ),
        (
            "duplicate node id",
            r#"{"toplevel": "1", "nodes": [
                {"data": {"id": "1", "type": "be", "rate": 1}},
                {"data": {"id": "1", "type": "be", "rate": 2}}]}"#,
        ),
    ];
    for (what, text) in schema_errors {
        match json_format::parse(text) {
            Err(Error::Json { .. }) => {}
            other => panic!("{what}: expected Error::Json, got {other:?}"),
        }
    }

    // Semantic violations keep their own error types, exactly as on the
    // Galileo path.
    let unknown_toplevel = r#"{"toplevel": "ghost", "nodes": [
        {"data": {"id": "1", "type": "be", "rate": 1}}]}"#;
    assert!(matches!(
        json_format::parse(unknown_toplevel),
        Err(Error::UnknownElement { .. })
    ));
    let duplicate_name = r#"{"toplevel": "2", "nodes": [
        {"data": {"id": "0", "name": "X", "type": "be", "rate": 1}},
        {"data": {"id": "1", "name": "X", "type": "be", "rate": 2}},
        {"data": {"id": "2", "name": "T", "type": "and", "children": ["0", "1"]}}]}"#;
    assert!(matches!(
        json_format::parse(duplicate_name),
        Err(Error::DuplicateName { .. })
    ));
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir("tests/fixtures/corpus")
        .expect("the committed corpus directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|ext| ext == "dft")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(files.len() >= 10, "corpus holds only {} trees", files.len());
    files
}

/// Satellite acceptance for the printer fixes: `to_galileo` → `parse` is the
/// identity (up to formatting) on every committed corpus tree, and printing
/// is idempotent.
#[test]
fn corpus_files_survive_print_and_reparse() {
    for path in corpus_files() {
        let name = path.display();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let dft = galileo::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = to_galileo(&dft);
        let reparsed = galileo::parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed output invalid: {e}\n{printed}"));
        assert_same_tree(&dft, &reparsed);
        assert_eq!(
            to_galileo(&reparsed),
            printed,
            "{name}: printing is not idempotent"
        );
    }
}

/// The same corpus survives the JSON hop bit-identically.
#[test]
fn corpus_files_survive_the_json_hop() {
    for path in corpus_files() {
        let name = path.display();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let dft = galileo::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let json = json_format::to_json(&dft);
        let from_json = json_format::parse(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_tree(&dft, &from_json);
        assert_eq!(dft.fingerprint(), from_json.fingerprint(), "{name}");
        assert_eq!(json_format::to_json(&from_json), json, "{name}");
    }
}
