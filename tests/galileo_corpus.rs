//! Galileo parser corpus tests: a negative corpus of malformed descriptions
//! that must fail with *typed* errors (matching the `xlint` panic-freedom
//! contract on `dft::galileo`), and a parse → print → parse round-trip
//! property over randomly generated trees.

use dftmc::dft::galileo::{parse, to_galileo};
use dftmc::dft::{Dft, Error};
use dftmc::dft_core::rng::SplitMix64;

/// Every entry must be rejected with the expected typed error — unterminated
/// quotes and out-of-range thresholds included, which earlier parser
/// revisions silently accepted or mangled.
#[test]
fn negative_corpus_fails_typed() {
    let parse_errors: &[(&str, &str)] = &[
        (
            "unterminated toplevel quote",
            "toplevel \"T;\n\"T\" and \"A\" \"B\";",
        ),
        (
            "unterminated name quote",
            "toplevel \"T\";\n\"T and \"A\" \"B\";",
        ),
        (
            "unterminated input quote",
            "toplevel \"T\";\n\"T\" and \"A \"B\";",
        ),
        (
            "stray quote inside a token",
            "toplevel \"T\";\n\"T\"x and \"A\" \"B\";",
        ),
        (
            "empty quoted name",
            "toplevel \"T\";\n\"\" and \"A\" \"B\";",
        ),
        (
            "unknown gate keyword",
            "toplevel \"T\";\n\"T\" xor \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting threshold zero",
            "toplevel \"T\";\n\"T\" 0of2 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting threshold above m",
            "toplevel \"T\";\n\"T\" 3of2 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting arity mismatch",
            "toplevel \"T\";\n\"T\" 2of3 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "missing toplevel",
            "\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "toplevel without a name",
            "toplevel;\n\"T\" and \"A\" \"B\";",
        ),
        ("gate without inputs", "toplevel \"T\";\n\"T\" and;"),
        (
            "basic event without lambda",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" dorm=0.5;\n\"B\" lambda=1.0;",
        ),
        (
            "unparseable rate",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=abc;\n\"B\" lambda=1.0;",
        ),
        (
            "unknown attribute",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0 foo=1;\n\"B\" lambda=1.0;",
        ),
    ];
    for (what, text) in parse_errors {
        match parse(text) {
            Err(Error::Parse { .. }) => {}
            other => panic!("{what}: expected Error::Parse, got {other:?}"),
        }
    }

    let dup = "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0;\n\"A\" lambda=2.0;\n\"B\" lambda=1.0;";
    assert!(matches!(parse(dup), Err(Error::DuplicateName { .. })));
}

/// Generates a random valid Galileo description: basic events, then gates in
/// topological order drawing inputs from everything defined before them.
/// Spare gates get dedicated fresh basic events (unique primaries, no shared
/// subtrees), matching the wellformedness rules.
fn random_galileo(rng: &mut SplitMix64) -> String {
    let pick = |rng: &mut SplitMix64, n: usize| -> usize { (rng.next_u64() % n as u64) as usize };
    let mut out = String::new();
    let mut pool: Vec<String> = Vec::new();

    let num_be = 4 + pick(rng, 5);
    for i in 0..num_be {
        let name = format!("E{i}");
        let mut line = format!("\"{name}\" lambda={}", 0.1 + rng.next_f64() * 2.0);
        if pick(rng, 3) == 0 {
            line.push_str(&format!(" dorm={}", rng.next_f64()));
        }
        if pick(rng, 5) == 0 {
            line.push_str(&format!(" repair={}", 0.5 + rng.next_f64()));
        }
        out.push_str(&line);
        out.push_str(";\n");
        pool.push(name);
    }

    let num_gates = 2 + pick(rng, 5);
    let mut top = String::new();
    for g in 0..num_gates {
        let name = format!("G{g}");
        let kind = pick(rng, 8);
        if kind == 7 {
            // Spare gate over fresh basic events of its own.
            let spares = 2 + pick(rng, 2);
            let mut inputs = Vec::new();
            for j in 0..spares {
                let be = format!("S{g}_{j}");
                out.push_str(&format!("\"{be}\" lambda=1.0 dorm=0.5;\n"));
                inputs.push(format!("\"{be}\""));
            }
            out.push_str(&format!("\"{name}\" wsp {};\n", inputs.join(" ")));
        } else {
            // Sample 2-4 distinct inputs from everything defined so far.
            let want = (2 + pick(rng, 3)).min(pool.len());
            let mut candidates = pool.clone();
            let mut inputs = Vec::new();
            for _ in 0..want {
                let chosen = candidates.swap_remove(pick(rng, candidates.len()));
                inputs.push(format!("\"{chosen}\""));
            }
            let keyword = match kind {
                0 => "and".to_owned(),
                1 => "or".to_owned(),
                2 => "pand".to_owned(),
                3 => "seq".to_owned(),
                4 => "fdep".to_owned(),
                5 => "inhibit".to_owned(),
                _ => format!("{}of{}", 1 + pick(rng, inputs.len()), inputs.len()),
            };
            out.push_str(&format!("\"{name}\" {keyword} {};\n", inputs.join(" ")));
        }
        pool.push(name.clone());
        top = name;
    }
    format!("toplevel \"{top}\";\n{out}")
}

/// Structural equality for round-trip checking: same names, and per name the
/// same gate kind + input names or the same basic-event attributes.
fn assert_same_tree(a: &Dft, b: &Dft) {
    assert_eq!(a.num_elements(), b.num_elements());
    assert_eq!(a.name(a.top()), b.name(b.top()));
    for id in a.elements() {
        let name = a.name(id);
        let other = b.by_name(name).unwrap_or_else(|| panic!("{name} lost"));
        let ea = a.element(id);
        let eb = b.element(other);
        match (ea.as_gate(), eb.as_gate()) {
            (Some(ga), Some(gb)) => {
                assert_eq!(ga.kind, gb.kind, "{name} changed kind");
                let ins_a: Vec<&str> = ga.inputs.iter().map(|&i| a.name(i)).collect();
                let ins_b: Vec<&str> = gb.inputs.iter().map(|&i| b.name(i)).collect();
                assert_eq!(ins_a, ins_b, "{name} changed inputs");
            }
            (None, None) => {
                let ba = ea.as_basic_event().expect("not a gate, so a basic event");
                let bb = eb.as_basic_event().expect("not a gate, so a basic event");
                assert_eq!(ba.rate, bb.rate, "{name} changed rate");
                assert_eq!(
                    ba.dormancy.factor(),
                    bb.dormancy.factor(),
                    "{name} changed dormancy"
                );
                assert_eq!(ba.repair_rate, bb.repair_rate, "{name} changed repair");
            }
            _ => panic!("{name} changed between gate and basic event"),
        }
    }
}

/// parse ∘ to_galileo is the identity (up to formatting) on random trees, and
/// printing is idempotent after one round trip.
#[test]
fn random_trees_round_trip_through_printing() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let text = random_galileo(&mut rng);
        let dft = parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: generated text invalid: {e}\n{text}"));
        let printed = to_galileo(&dft);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: printed text invalid: {e}\n{printed}"));
        assert_same_tree(&dft, &reparsed);
        assert_eq!(
            to_galileo(&reparsed),
            printed,
            "seed {seed}: printing is not idempotent"
        );
    }
}
