//! Galileo parser corpus tests: a negative corpus of malformed descriptions
//! that must fail with *typed* errors (matching the `xlint` panic-freedom
//! contract on `dft::galileo`), and a parse → print → parse round-trip
//! property over randomly generated trees.

use dftmc::dft::galileo::{parse, to_galileo};
use dftmc::dft::Error;
use dftmc::dft_core::rng::SplitMix64;

mod common;
use common::{assert_same_tree, random_galileo};

/// Every entry must be rejected with the expected typed error — unterminated
/// quotes and out-of-range thresholds included, which earlier parser
/// revisions silently accepted or mangled.
#[test]
fn negative_corpus_fails_typed() {
    let parse_errors: &[(&str, &str)] = &[
        (
            "unterminated toplevel quote",
            "toplevel \"T;\n\"T\" and \"A\" \"B\";",
        ),
        (
            "unterminated name quote",
            "toplevel \"T\";\n\"T and \"A\" \"B\";",
        ),
        (
            "unterminated input quote",
            "toplevel \"T\";\n\"T\" and \"A \"B\";",
        ),
        (
            "stray quote inside a token",
            "toplevel \"T\";\n\"T\"x and \"A\" \"B\";",
        ),
        (
            "empty quoted name",
            "toplevel \"T\";\n\"\" and \"A\" \"B\";",
        ),
        (
            "unknown gate keyword",
            "toplevel \"T\";\n\"T\" xor \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting threshold zero",
            "toplevel \"T\";\n\"T\" 0of2 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting threshold above m",
            "toplevel \"T\";\n\"T\" 3of2 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "voting arity mismatch",
            "toplevel \"T\";\n\"T\" 2of3 \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "missing toplevel",
            "\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0;\n\"B\" lambda=1.0;",
        ),
        (
            "toplevel without a name",
            "toplevel;\n\"T\" and \"A\" \"B\";",
        ),
        ("gate without inputs", "toplevel \"T\";\n\"T\" and;"),
        (
            "basic event without lambda",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" dorm=0.5;\n\"B\" lambda=1.0;",
        ),
        (
            "unparseable rate",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=abc;\n\"B\" lambda=1.0;",
        ),
        (
            "unknown attribute",
            "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0 foo=1;\n\"B\" lambda=1.0;",
        ),
    ];
    for (what, text) in parse_errors {
        match parse(text) {
            Err(Error::Parse { .. }) => {}
            other => panic!("{what}: expected Error::Parse, got {other:?}"),
        }
    }

    let dup = "toplevel \"T\";\n\"T\" and \"A\" \"B\";\n\"A\" lambda=1.0;\n\"A\" lambda=2.0;\n\"B\" lambda=1.0;";
    assert!(matches!(parse(dup), Err(Error::DuplicateName { .. })));
}

/// parse ∘ to_galileo is the identity (up to formatting) on random trees, and
/// printing is idempotent after one round trip.
#[test]
fn random_trees_round_trip_through_printing() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let text = random_galileo(&mut rng);
        let dft = parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: generated text invalid: {e}\n{text}"));
        let printed = to_galileo(&dft);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: printed text invalid: {e}\n{printed}"));
        assert_same_tree(&dft, &reparsed);
        assert_eq!(
            to_galileo(&reparsed),
            printed,
            "seed {seed}: printing is not idempotent"
        );
    }
}
