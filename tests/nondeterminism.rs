//! Experiment E5 — simultaneity and non-determinism (Section 4.4, Figure 6).
//!
//! When an FDEP trigger forces several dependent events to fail at the same
//! instant, the order in which their failure signals are processed is genuinely
//! non-deterministic.  The framework must (a) detect this, (b) report bounds, and
//! (c) keep the bounds tight (equal) whenever the non-determinism is confluent.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]

use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unreliability, AnalysisOptions};

/// Figure 6(a): a PAND gate whose two inputs share an FDEP trigger.
fn figure_6a(trigger_rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", trigger_rate, Dormancy::Hot).unwrap();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let _fdep = b.fdep_gate("FDEP", t, &[a, bb]).unwrap();
    let top = b.pand_gate("system", &[a, bb]).unwrap();
    b.build(top).unwrap()
}

#[test]
fn fdep_under_a_pand_is_detected_as_nondeterministic() {
    let dft = figure_6a(0.5);
    let r = unreliability(&dft, 1.0, &AnalysisOptions::default()).expect("analysis succeeds");
    assert!(r.is_nondeterministic());
    let (lo, hi) = r.bounds();
    assert!(lo < hi, "expected a proper interval, got [{lo}, {hi}]");
    assert!(lo >= 0.0 && hi <= 1.0);
    // The pessimistic value reported by `probability()` is the upper bound.
    assert!((r.probability() - hi).abs() < 1e-12);
}

#[test]
fn interval_width_equals_probability_that_the_order_matters() {
    // The ordering of the simultaneous failures only matters on runs where the
    // trigger fires before both A and B have failed naturally *and* A has not yet
    // failed (if A already failed in order, the PAND outcome is already decided).
    // A cheap sanity check: the width grows with the trigger rate.
    let options = AnalysisOptions::default();
    let narrow = unreliability(&figure_6a(0.1), 1.0, &options).unwrap();
    let wide = unreliability(&figure_6a(2.0), 1.0, &options).unwrap();
    let width = |r: &dftmc::dft_core::analysis::UnreliabilityResult| {
        let (lo, hi) = r.bounds();
        hi - lo
    };
    assert!(width(&wide) > width(&narrow));
}

#[test]
fn confluent_nondeterminism_keeps_bounds_tight() {
    // The same FDEP trigger feeding two dependents below an AND gate: the order of
    // the simultaneous failures cannot influence the AND gate, so min and max must
    // agree even though immediate non-determinism exists in intermediate models.
    let mut b = DftBuilder::new();
    let t = b.basic_event("nd_T", 0.5, Dormancy::Hot).unwrap();
    let a = b.basic_event("nd_A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("nd_B", 1.0, Dormancy::Hot).unwrap();
    let _fdep = b.fdep_gate("nd_FDEP", t, &[a, bb]).unwrap();
    let top = b.and_gate("nd_system", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unreliability(&dft, 1.0, &AnalysisOptions::default()).unwrap();
    let (lo, hi) = r.bounds();
    assert!(
        (hi - lo).abs() < 1e-9,
        "bounds [{lo}, {hi}] should coincide"
    );
}

#[test]
fn bounds_bracket_the_deterministic_resolution_of_the_baseline() {
    // The monolithic baseline resolves simultaneous failures deterministically in
    // input order; its value must lie within the CTMDP bounds.
    use dftmc::dft_core::analysis::Method;
    let dft = figure_6a(0.5);
    let options = AnalysisOptions::default();
    let comp = unreliability(&dft, 1.0, &options).unwrap();
    let mono = unreliability(
        &dft,
        1.0,
        &AnalysisOptions {
            method: Method::Monolithic,
            ..options
        },
    )
    .unwrap();
    let (lo, hi) = comp.bounds();
    assert!(
        mono.probability() >= lo - 1e-9 && mono.probability() <= hi + 1e-9,
        "baseline {} outside [{lo}, {hi}]",
        mono.probability()
    );
}

#[test]
fn spare_contention_after_a_common_trigger_is_nondeterministic() {
    // Figure 6(b) made observable: the system fails only if the left spare gate
    // fails before the right one, so which gate wins the shared spare matters.
    let mut b = DftBuilder::new();
    let t = b.basic_event("sc_T", 0.5, Dormancy::Hot).unwrap();
    let a = b.basic_event("sc_A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("sc_B", 2.0, Dormancy::Hot).unwrap();
    let s = b.basic_event("sc_S", 1.5, Dormancy::Cold).unwrap();
    let _fdep = b.fdep_gate("sc_FDEP", t, &[a, bb]).unwrap();
    let left = b.spare_gate("sc_left", &[a, s]).unwrap();
    let right = b.spare_gate("sc_right", &[bb, s]).unwrap();
    let top = b.pand_gate("sc_system", &[left, right]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unreliability(&dft, 1.0, &AnalysisOptions::default()).unwrap();
    assert!(r.is_nondeterministic());
    let (lo, hi) = r.bounds();
    assert!(hi > lo);
}
