//! Regression fixtures found by the deterministic fuzz harness
//! (`cargo run -p dftmc-bench --bin fuzz_decode`).
//!
//! Each fixture in `tests/fixtures/` is an input that once made a decoder
//! panic.  The tests assert the typed-error contract the fuzz harness
//! enforces: corrupt bytes are *rejected*, never unwound on.

use dftmc::ioimc::codec::{decode_model, encode_model, Reader, Writer};
use dftmc::ioimc::rate::RateForm;

/// Found by the first fuzz campaign (seed 0xDF7): a byte flip turned a
/// Markovian transition's `from` index into 203 in a 4-state model.  The
/// out-of-range `StateId` reached the model constructor's per-state tables
/// and panicked before validation ran; `decode_model` now range-checks every
/// state index against the declared state count while reading.
#[test]
fn oob_state_index_is_rejected_not_a_panic() {
    let bytes = include_bytes!("fixtures/decode_model_oob_state.bin");
    let err = decode_model::<f64>(&mut Reader::new(bytes))
        .expect_err("an out-of-range state index must fail decoding");
    assert!(
        err.to_string().contains("out of range"),
        "unexpected error: {err}"
    );
    // The parametric decoder shares the same state table handling.
    assert!(decode_model::<RateForm>(&mut Reader::new(bytes)).is_err());
}

/// Deterministic single-byte sweep: every one-byte overwrite of a valid
/// encoding either decodes (the byte was a don't-care, e.g. inside a rate)
/// or fails typed — a much denser version of the fixture above.
#[test]
fn every_single_byte_corruption_fails_typed_or_decodes() {
    let model = {
        use dftmc::ioimc::action::Action;
        use dftmc::ioimc::builder::IoImcBuilderOf;
        let mut b = IoImcBuilderOf::<f64>::new("sweep");
        let s = [b.add_state(), b.add_state()];
        b.initial(s[0]);
        b.markovian(s[0], 2.0, s[1]);
        b.output(s[1], Action::new("sweep_done"), s[1]);
        b.build().unwrap()
    };
    let mut w = Writer::new();
    encode_model(&model, &mut w);
    let valid = w.into_bytes();
    for i in 0..valid.len() {
        for overwrite in [0x00, 0x01, 0x7f, 0xff] {
            let mut corrupt = valid.clone();
            corrupt[i] = overwrite;
            // Either outcome is fine; panicking is the only failure mode.
            let _ = decode_model::<f64>(&mut Reader::new(&corrupt));
        }
    }
}
