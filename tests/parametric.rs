//! Parametric-session tests: aggregate the structure once, instantiate many
//! rate valuations, and check every measure against a direct numeric build of
//! the equivalently re-rated tree.
//!
//! The key property: for every tree and every positive valuation,
//! `ParametricAnalyzer::new(tree).instantiate(v)` answers every [`Measure`]
//! within 1e-12 of `Analyzer::new` on the pre-scaled twin — while running
//! compositional aggregation exactly once for the whole family.  Random cases
//! come from the same seeded generator as the other suites.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::AnalysisOptions;
use dftmc::dft_core::engine::{Analyzer, ParametricAnalyzer};
use dftmc::dft_core::parametric::{ParamKind, Valuation};
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::Error;

mod common;
use common::{build_static_tree, random_recipe, Gen};

/// Both pipelines run with a tightened truncation bound so the 1e-12 agreement
/// check measures the models, not the numerics.
fn tight_options() -> AnalysisOptions {
    AnalysisOptions {
        epsilon: 1e-13,
        ..AnalysisOptions::default()
    }
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-12,
        "{what}: parametric {a} vs direct {b} (diff {})",
        (a - b).abs()
    );
}

/// The headline property: across random static trees and random uniform rate
/// scales, an instantiated session answers unreliability (point and curve) and
/// MTTF identically (≤ 1e-12) to a direct build of the pre-scaled tree — with
/// one aggregation for the whole sweep and zero for each instantiation.
#[test]
fn instantiated_sessions_match_direct_builds_on_random_trees() {
    for case in 0..12u64 {
        let mut gen = Gen::new(0x9a3a_0600 + case);
        let recipe = random_recipe(&mut gen);
        let t = gen.f64_in(0.2, 2.0);
        let dft = build_static_tree(&recipe, &format!("par{case}"));

        let parametric = ParametricAnalyzer::new(&dft, tight_options()).unwrap();
        assert_eq!(parametric.aggregation_runs(), 1);

        for point in 0..3 {
            let scale = gen.f64_in(0.3, 3.0);
            let session = parametric
                .instantiate(&parametric.params().scaled_valuation(scale))
                .unwrap();
            assert_eq!(
                session.aggregation_runs(),
                0,
                "case {case}: instantiation must not re-aggregate"
            );

            // The reference: a fresh numeric pipeline over the pre-scaled twin.
            let scaled_tree =
                build_static_tree(&recipe.scaled(scale), &format!("par{case}s{point}"));
            let direct = Analyzer::new(&scaled_tree, tight_options()).unwrap();

            let measures = [
                Measure::Unreliability(t),
                Measure::curve([t * 0.5, t, t * 1.7]),
                Measure::Mttf,
            ];
            for measure in &measures {
                let ours = session.query(measure).unwrap();
                let reference = direct.query(measure).unwrap();
                assert_eq!(ours.len(), reference.len());
                for (a, b) in ours.points().iter().zip(reference.points()) {
                    assert_close(a.bounds().0, b.bounds().0, &format!("case {case} lower"));
                    assert_close(a.bounds().1, b.bounds().1, &format!("case {case} upper"));
                }
            }
        }
    }
}

/// Varying a *single* basic event's rate through its parameter slot matches
/// rebuilding the tree with that one rate changed: slots really are per event,
/// not just a global scale.
#[test]
fn single_slot_variation_matches_a_rebuilt_tree() {
    for case in 0..8u64 {
        let mut gen = Gen::new(0x51a7_0700 + case);
        let recipe = random_recipe(&mut gen);
        let t = gen.f64_in(0.2, 2.0);
        let victim = gen.usize_in(0, recipe.rates.len());
        let new_rate = gen.f64_in(0.05, 4.0);
        let dft = build_static_tree(&recipe, &format!("slot{case}"));

        let parametric = ParametricAnalyzer::new(&dft, tight_options()).unwrap();
        let name = format!("slot{case}_e{victim}");
        let slot = parametric
            .params()
            .slot_of(&name, ParamKind::Failure)
            .unwrap_or_else(|| panic!("case {case}: no failure slot for {name}"));
        let mut valuation = parametric.base_valuation();
        valuation.set(slot, new_rate);
        let session = parametric.instantiate(&valuation).unwrap();

        let twin = build_static_tree(
            &recipe.with_rate(victim, new_rate),
            &format!("slot{case}_twin"),
        );
        let direct = Analyzer::new(&twin, tight_options()).unwrap();

        let ours = session.unreliability(t).unwrap();
        let reference = direct.unreliability(t).unwrap();
        assert_close(ours.value(), reference.value(), &format!("case {case}"));
    }
}

/// On a tree with no lumpable symmetry the two pipelines produce the *same*
/// chain, so the results are bit-identical, not merely close.
#[test]
fn distinct_rate_chain_is_bit_identical() {
    let build = |rate: f64, prefix: &str| {
        let mut b = DftBuilder::new();
        let x = b
            .basic_event(&format!("{prefix}_X"), rate, Dormancy::Hot)
            .unwrap();
        let top = b.or_gate(&format!("{prefix}_Top"), &[x]).unwrap();
        b.build(top).unwrap()
    };
    let parametric = ParametricAnalyzer::new(&build(0.7, "bit"), tight_options()).unwrap();
    for scale in [1.0, 1.5, 2.25] {
        let session = parametric
            .instantiate(&parametric.params().scaled_valuation(scale))
            .unwrap();
        let direct = Analyzer::new(&build(0.7 * scale, "bit_twin"), tight_options()).unwrap();
        for measure in [Measure::Unreliability(1.3), Measure::Mttf] {
            let ours = session.query(&measure).unwrap();
            let reference = direct.query(&measure).unwrap();
            assert_eq!(
                ours.value().to_bits(),
                reference.value().to_bits(),
                "evaluation order permits bit-identity here ({measure:?}, scale {scale})"
            );
        }
    }
}

/// Repairable models: failure *and* repair rates get slots, and unavailability
/// and MTTF track a direct build when either is varied.
#[test]
fn repairable_slots_cover_repair_rates() {
    let build = |lambda_a: f64, mu_a: f64, prefix: &str| {
        let mut b = DftBuilder::new();
        let a = b
            .repairable_basic_event(&format!("{prefix}_A"), lambda_a, Dormancy::Hot, mu_a)
            .unwrap();
        let bb = b
            .repairable_basic_event(&format!("{prefix}_B"), 2.0, Dormancy::Hot, 5.0)
            .unwrap();
        let top = b.and_gate(&format!("{prefix}_Top"), &[a, bb]).unwrap();
        b.build(top).unwrap()
    };
    let parametric = ParametricAnalyzer::new(&build(1.0, 10.0, "rep"), tight_options()).unwrap();
    // Two failure + two repair slots.
    assert_eq!(parametric.params().len(), 4);

    let mu_slot = parametric
        .params()
        .slot_of("rep_A", ParamKind::Repair)
        .unwrap();
    let mut valuation = parametric.base_valuation();
    valuation.set(mu_slot, 4.0);
    let session = parametric.instantiate(&valuation).unwrap();
    let direct = Analyzer::new(&build(1.0, 4.0, "rep_twin"), tight_options()).unwrap();

    for measure in [
        Measure::Unavailability,
        Measure::Mttf,
        Measure::Unreliability(0.8),
    ] {
        let ours = session.query(&measure).unwrap();
        let reference = direct.query(&measure).unwrap();
        assert_close(ours.value(), reference.value(), &format!("{measure:?}"));
    }
}

/// A whole sweep runs exactly one aggregation, and its points match per-point
/// direct builds.
#[test]
fn sweeps_cost_one_aggregation() {
    let mut gen = Gen::new(0x53ee_0800);
    let recipe = random_recipe(&mut gen);
    let dft = build_static_tree(&recipe, "swp");
    let parametric = ParametricAnalyzer::new(&dft, tight_options()).unwrap();

    let scales: Vec<f64> = (1..=6).map(|i| 0.5 + 0.25 * i as f64).collect();
    let valuations: Vec<Valuation> = scales
        .iter()
        .map(|&s| parametric.params().scaled_valuation(s))
        .collect();
    let sweep = parametric.sweep_unreliability(1.0, &valuations).unwrap();
    assert_eq!(sweep.len(), scales.len());
    assert_eq!(parametric.aggregation_runs(), 1);

    for (i, &scale) in scales.iter().enumerate() {
        let twin = build_static_tree(&recipe.scaled(scale), &format!("swp_t{i}"));
        let direct = Analyzer::new(&twin, tight_options()).unwrap();
        let reference = direct.unreliability(1.0).unwrap();
        assert_close(
            sweep.results()[i].value(),
            reference.value(),
            &format!("sweep point {i}"),
        );
    }
    // Unreliability grows with a uniform failure-rate scale.
    let values: Vec<f64> = sweep.values().collect();
    for pair in values.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-12);
    }
}

/// Invalid valuations and unsupported configurations are rejected with typed
/// errors instead of producing silently wrong models.
#[test]
fn invalid_valuations_and_methods_are_rejected() {
    let mut b = DftBuilder::new();
    let x = b.basic_event("pe_X", 1.0, Dormancy::Hot).unwrap();
    let y = b.basic_event("pe_Y", 2.0, Dormancy::Hot).unwrap();
    let top = b.or_gate("pe_Top", &[x, y]).unwrap();
    let dft = b.build(top).unwrap();

    let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
    // Wrong slot count.
    assert!(matches!(
        parametric.instantiate(&Valuation::new(vec![1.0])),
        Err(Error::InvalidValuation { .. })
    ));
    // Non-positive and non-finite rates.
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let mut v = parametric.base_valuation();
        v.set(1, bad);
        assert!(matches!(
            parametric.instantiate(&v),
            Err(Error::InvalidValuation { .. })
        ));
    }
    // The monolithic baseline has no parametric form.
    let monolithic = AnalysisOptions {
        method: dftmc::dft_core::analysis::Method::Monolithic,
        ..AnalysisOptions::default()
    };
    assert!(matches!(
        ParametricAnalyzer::new(&dft, monolithic),
        Err(Error::Unsupported { .. })
    ));
}

/// The base valuation reproduces the original tree exactly.
#[test]
fn base_valuation_reproduces_the_original_tree() {
    let mut gen = Gen::new(0xbace_0900);
    let recipe = random_recipe(&mut gen);
    let dft = build_static_tree(&recipe, "base");
    let parametric = ParametricAnalyzer::new(&dft, tight_options()).unwrap();
    let session = parametric
        .instantiate(&parametric.base_valuation())
        .unwrap();
    let direct = Analyzer::new(&dft, tight_options()).unwrap();
    let ours = session.unreliability(1.0).unwrap();
    let reference = direct.unreliability(1.0).unwrap();
    assert_close(ours.value(), reference.value(), "base valuation");
}
