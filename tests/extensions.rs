//! Experiment E7 — element extensions (Section 7.1): inhibition and mutually
//! exclusive events, plus the SEQ gate that the paper notes is expressible as a
//! cold spare.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unreliability, AnalysisOptions};

fn options() -> AnalysisOptions {
    AnalysisOptions::default()
}

#[test]
fn inhibition_reduces_the_failure_probability() {
    // B's failure is inhibited when A fails first; the system observes B (through
    // the inhibition gate).  Compare against the uninhibited system.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let inhibited = b.inhibit_gate("B_inhibited", bb, &[a]).unwrap();
    let top = b.or_gate("system", &[inhibited]).unwrap();
    let dft = b.build(top).unwrap();
    let t = 1.0;
    let with_inhibition = unreliability(&dft, t, &options()).unwrap().probability();

    // With equal rates, B fails before A with probability 1/2, so for long mission
    // times the inhibited failure probability tends to 1/2; at t=1 it is exactly
    // P(B < A, B <= 1) = (1 - e^-2)/2.
    let exact = (1.0 - (-2.0f64).exp()) / 2.0;
    assert!(
        (with_inhibition - exact).abs() < 1e-6,
        "{with_inhibition} vs {exact}"
    );
    let without = 1.0 - (-1.0f64).exp();
    assert!(with_inhibition < without);
}

#[test]
fn mutually_exclusive_failure_modes_never_both_occur() {
    // A switch with two mutually exclusive failure modes: fails-open and
    // fails-closed inhibit each other.  The AND of both modes can then never fail,
    // while the OR fails as soon as either mode occurs.
    let mut b = DftBuilder::new();
    let open = b.basic_event("fails_open", 0.3, Dormancy::Hot).unwrap();
    let closed = b.basic_event("fails_closed", 0.7, Dormancy::Hot).unwrap();
    let open_mode = b.inhibit_gate("open_mode", open, &[closed]).unwrap();
    let closed_mode = b.inhibit_gate("closed_mode", closed, &[open]).unwrap();
    let both = b.and_gate("both_modes", &[open_mode, closed_mode]).unwrap();
    let top = b.or_gate("observer", &[both]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unreliability(&dft, 10.0, &options()).unwrap();
    assert!(
        r.probability() < 1e-9,
        "mutually exclusive modes must never both occur, got {}",
        r.probability()
    );

    // The OR of the two modes behaves like a single component with the summed rate.
    let mut b = DftBuilder::new();
    let open = b.basic_event("fails_open", 0.3, Dormancy::Hot).unwrap();
    let closed = b.basic_event("fails_closed", 0.7, Dormancy::Hot).unwrap();
    let open_mode = b.inhibit_gate("open_mode", open, &[closed]).unwrap();
    let closed_mode = b.inhibit_gate("closed_mode", closed, &[open]).unwrap();
    let either = b.or_gate("either_mode", &[open_mode, closed_mode]).unwrap();
    let dft = b.build(either).unwrap();
    let t = 1.3;
    let r = unreliability(&dft, t, &options()).unwrap();
    let exact = 1.0 - (-t).exp();
    assert!(
        (r.probability() - exact).abs() < 1e-6,
        "{} vs {exact}",
        r.probability()
    );
}

#[test]
fn seq_gate_behaves_like_a_cold_spare_chain() {
    // SEQ(A, B) with cold B: B can only start failing after A has failed, so the
    // failure time is Erlang(2, λ) — exactly the cold-spare emulation mentioned in
    // the paper's footnote about the sequence-enforcing gate.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Cold).unwrap();
    let top = b.seq_gate("system", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let t = 1.0;
    let r = unreliability(&dft, t, &options()).unwrap();
    let erlang = 1.0 - (-t).exp() * (1.0 + t);
    assert!(
        (r.probability() - erlang).abs() < 1e-6,
        "{} vs {erlang}",
        r.probability()
    );
}

#[test]
fn inhibition_with_multiple_inhibitors() {
    // B is inhibited by whichever of A1, A2 fails first.
    let mut b = DftBuilder::new();
    let a1 = b.basic_event("A1", 1.0, Dormancy::Hot).unwrap();
    let a2 = b.basic_event("A2", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let gate = b.inhibit_gate("B_gate", bb, &[a1, a2]).unwrap();
    let top = b.or_gate("system", &[gate]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unreliability(&dft, 50.0, &options()).unwrap();
    // For a long horizon: P(B fails before both inhibitors) = 1/3.
    assert!(
        (r.probability() - 1.0 / 3.0).abs() < 1e-3,
        "{}",
        r.probability()
    );
}

#[test]
fn new_elements_do_not_disturb_existing_ones() {
    // Section 7's point: adding elements only adds elementary models.  A tree that
    // mixes an inhibition gate with ordinary gates still analyses fine and the
    // non-extended part keeps its exact value.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let c = b.basic_event("C", 2.0, Dormancy::Hot).unwrap();
    let inhibit = b.inhibit_gate("inh", bb, &[a]).unwrap();
    let plain = b.and_gate("plain", &[a, c]).unwrap();
    let top = b.or_gate("system", &[inhibit, plain]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unreliability(&dft, 1.0, &options()).unwrap();
    assert!(r.probability() > 0.0 && r.probability() < 1.0);
    let (lo, hi) = r.bounds();
    assert!((hi - lo).abs() < 1e-9);
}
