//! Integration tests for the persistent cross-process model cache.
//!
//! The store promises:
//!
//! 1. **Round-trip fidelity** — an [`Analyzer`]/`ParametricAnalyzer` restored
//!    via `from_bytes` answers every measure bit-identically to the freshly
//!    built session, on the paper's CAS and CPS case studies included;
//! 2. **Robustness** — truncated files, flipped payload bytes, stale format
//!    versions and foreign fingerprints are *rejected* (counted in
//!    [`StoreStats::rejected`]) and fall back to a clean rebuild, never a
//!    panic and never a wrong answer;
//! 3. **Warm restarts** — a second service over the same store directory
//!    loads instead of building: `store_hits > 0`, zero aggregation runs,
//!    results bit-identical;
//! 4. **Atomic publication** — concurrent services sharing one directory
//!    never observe a half-written entry;
//! 5. **Typed errors only on the explicit API** — the service path degrades
//!    silently; [`Error::Store`] is reserved for `ModelStore`/`from_bytes`
//!    calls.

use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::casestudies::{cas, cps, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::engine::{Analyzer, ParametricAnalyzer};
use dftmc::dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions, SweepJob};
use dftmc::dft_core::store::ModelStore;
use dftmc::dft_core::{AnalysisOptions, Error, Measure, MeasureResult};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning store directory per test.
struct TempStore {
    dir: PathBuf,
}

impl TempStore {
    fn new(label: &str) -> TempStore {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dftmc-store-test-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp store dir");
        TempStore { dir }
    }

    fn path(&self) -> &PathBuf {
        &self.dir
    }

    /// The store entries currently on disk (no temporary files counted).
    fn entries(&self) -> Vec<PathBuf> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .expect("list store dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "dftm"))
            .collect();
        entries.sort();
        entries
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn bits_of(result: &MeasureResult) -> Vec<(Option<u64>, u64, u64, u64)> {
    result
        .points()
        .iter()
        .map(|p| {
            (
                p.time().map(f64::to_bits),
                p.value().to_bits(),
                p.bounds().0.to_bits(),
                p.bounds().1.to_bits(),
            )
        })
        .collect()
}

fn spare_tree(prefix: &str, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let p = b
        .basic_event(&format!("{prefix}_P"), rate, Dormancy::Hot)
        .unwrap();
    let s = b
        .basic_event(&format!("{prefix}_S"), rate, Dormancy::Cold)
        .unwrap();
    let top = b.spare_gate(&format!("{prefix}_Top"), &[p, s]).unwrap();
    b.build(top).unwrap()
}

/// Acceptance criterion: restored sessions are bit-identical to freshly built
/// ones on both of the paper's case studies.
#[test]
fn cas_and_cps_round_trip_bit_identically() {
    let measures = [
        Measure::curve(DEFAULT_MISSION_TIMES),
        Measure::Unreliability(1.0),
    ];
    for dft in [cas(), cps()] {
        let built = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();
        assert_eq!(restored.aggregation_runs(), 0);
        assert_eq!(restored.model_stats(), built.model_stats());
        for measure in &measures {
            let a = built.query(measure).unwrap();
            let b = restored.query(measure).unwrap();
            assert_eq!(bits_of(&a), bits_of(&b), "restored session must match");
        }
    }
}

/// The parametric twin of the criterion: the CAS quotient restored from bytes
/// instantiates every valuation bit-identically.
#[test]
fn parametric_cas_round_trips_bit_identically() {
    let built = ParametricAnalyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    let restored = ParametricAnalyzer::from_bytes(&built.to_bytes()).unwrap();
    assert_eq!(restored.aggregation_runs(), 0);
    assert_eq!(restored.params(), built.params());
    for scale in [1.0, 1.35] {
        let valuation = built.params().scaled_valuation(scale);
        let a = built.instantiate(&valuation).unwrap();
        let b = restored.instantiate(&valuation).unwrap();
        let qa = a.query(Measure::curve(DEFAULT_MISSION_TIMES)).unwrap();
        let qb = b.query(Measure::curve(DEFAULT_MISSION_TIMES)).unwrap();
        assert_eq!(bits_of(&qa), bits_of(&qb));
    }
}

#[test]
fn warm_service_loads_instead_of_building() {
    let temp = TempStore::new("warm");
    let options = AnalysisOptions::default();
    let job = || {
        AnalysisJob::new(
            spare_tree("st_warm", 1.0),
            AnalysisOptions::default(),
            vec![Measure::curve([0.5, 1.0]), Measure::Mttf],
        )
    };

    // Cold service: builds, writes back.
    let cold = AnalysisService::new(
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(temp.path()),
    );
    let cold_report = cold.run_batch(&[job()]);
    let cold_results = cold_report.jobs[0].results.as_ref().unwrap().clone();
    assert_eq!(cold_report.stats.aggregation_runs, 1);
    let stats = cold.store_stats().expect("store configured");
    assert_eq!(stats.writes, 1);
    assert_eq!(stats.hits, 0);
    drop(cold);
    assert_eq!(
        temp.entries().len(),
        1,
        "one published entry, no temp files"
    );

    // Warm service, fresh process-level cache: loads, aggregates nothing.
    let warm = AnalysisService::new(
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(temp.path()),
    );
    let warm_report = warm.run_batch(&[job()]);
    assert_eq!(
        warm_report.stats.aggregation_runs, 0,
        "a warm store replaces the aggregation with a disk read"
    );
    let stats = warm.store_stats().unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.rejected, 0);
    assert_eq!(
        bits_of(&warm_report.jobs[0].results.as_ref().unwrap()[0]),
        bits_of(&cold_results[0]),
        "loaded model answers bit-identically"
    );
    // The session-level view agrees: still one in-memory miss (the slot was
    // cold), but zero pipeline runs.
    assert_eq!(warm.cache_stats().misses, 1);

    // Direct `analyzer()` calls share the same store-backed path.
    let direct = warm
        .analyzer(&spare_tree("st_warm_other_name", 1.0), &options)
        .unwrap();
    assert_eq!(direct.aggregation_runs(), 0, "same fingerprint, same entry");
}

#[test]
fn warm_sweeps_skip_the_parametric_aggregation() {
    let temp = TempStore::new("sweep");
    let dft = spare_tree("st_sweep", 1.0);
    let valuations: Vec<_> = {
        let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        (1..=3)
            .map(|i| parametric.params().scaled_valuation(i as f64))
            .collect()
    };
    let sweep = SweepJob::new(
        dft,
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
        valuations,
    );

    let service_options = || {
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(temp.path())
    };
    let cold = AnalysisService::new(service_options());
    let cold_report = cold.run_sweep(&sweep);
    assert_eq!(cold_report.stats.aggregation_runs, 1);
    let cold_values: Vec<Vec<_>> = cold_report
        .points
        .iter()
        .map(|p| bits_of(&p.results.as_ref().unwrap()[0]))
        .collect();
    drop(cold);

    let warm = AnalysisService::new(service_options());
    let warm_report = warm.run_sweep(&sweep);
    assert_eq!(
        warm_report.stats.aggregation_runs, 0,
        "the parametric model came off disk"
    );
    assert!(!warm_report.stats.parametric_cache_hit);
    assert!(warm.store_stats().unwrap().hits >= 1);
    let warm_values: Vec<Vec<_>> = warm_report
        .points
        .iter()
        .map(|p| bits_of(&p.results.as_ref().unwrap()[0]))
        .collect();
    assert_eq!(warm_values, cold_values);
}

/// Write-back happens inside the build slot, before the report reaches the
/// handle — so even a service dropped immediately after submission leaves a
/// complete store behind for the next process.
#[test]
fn drop_drain_persists_built_models() {
    let temp = TempStore::new("drain");
    let service = AnalysisService::new(
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(temp.path()),
    );
    let handle = service.submit(AnalysisJob::new(
        spare_tree("st_drain", 1.0),
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
    ));
    drop(service); // drains the queue, then joins the pool
    assert!(handle.wait().results.is_ok());
    assert_eq!(temp.entries().len(), 1, "the drained job was written back");

    let warm = AnalysisService::new(
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(temp.path()),
    );
    let report = warm.run_batch(&[AnalysisJob::new(
        spare_tree("st_drain", 1.0),
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
    )]);
    assert_eq!(report.stats.aggregation_runs, 0);
}

/// Every corruption mode must fall back to a clean rebuild: no panic, the
/// rejection counted, the job still answered correctly, and the rebuilt entry
/// republished over the bad one.
#[test]
fn corrupt_entries_are_rejected_and_rebuilt() {
    type Corruption = fn(Vec<u8>) -> Vec<u8>;
    let corruptions: [(&str, Corruption); 4] = [
        ("truncated", |bytes| {
            let keep = bytes.len() / 2;
            bytes[..keep].to_vec()
        }),
        ("flipped payload byte", |mut bytes| {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            bytes
        }),
        ("wrong format version", |mut bytes| {
            bytes[4] = bytes[4].wrapping_add(1);
            bytes
        }),
        ("empty file", |_| Vec::new()),
    ];

    for (label, corrupt) in corruptions {
        let temp = TempStore::new("corrupt");
        let job = || {
            AnalysisJob::new(
                spare_tree("st_corrupt", 1.0),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            )
        };
        let service_options = || {
            ServiceOptions {
                workers: 1,
                cache_capacity: 8,
                ..ServiceOptions::default()
            }
            .store(temp.path())
        };

        let reference = {
            let cold = AnalysisService::new(service_options());
            let report = cold.run_batch(&[job()]);
            bits_of(&report.jobs[0].results.as_ref().unwrap()[0])
        };
        let entries = temp.entries();
        assert_eq!(entries.len(), 1);
        let bytes = std::fs::read(&entries[0]).unwrap();
        std::fs::write(&entries[0], corrupt(bytes)).unwrap();

        let recovering = AnalysisService::new(service_options());
        let report = recovering.run_batch(&[job()]);
        let stats = recovering.store_stats().unwrap();
        assert_eq!(stats.rejected, 1, "{label}: the bad entry must be refused");
        assert_eq!(
            report.stats.aggregation_runs, 1,
            "{label}: refusal falls back to a rebuild"
        );
        assert_eq!(
            bits_of(&report.jobs[0].results.as_ref().unwrap()[0]),
            reference,
            "{label}: the rebuilt model answers identically"
        );
        assert_eq!(stats.writes, 1, "{label}: the entry was republished");
    }
}

/// A fingerprint mismatch (an entry renamed onto another key's path — e.g. a
/// mis-synced fleet directory) is detected by the frame, not trusted from the
/// file name.
#[test]
fn foreign_fingerprints_are_rejected() {
    let temp = TempStore::new("foreign");
    let store = ModelStore::open(temp.path()).unwrap();
    let options = AnalysisOptions::default();

    let original = spare_tree("st_foreign_a", 1.0);
    let analyzer = Analyzer::new(&original, options.clone()).unwrap();
    store
        .save_analyzer(original.fingerprint(), &analyzer)
        .unwrap();

    // Rename the entry onto the path of a structurally different tree.
    let other = spare_tree("st_foreign_b", 2.0);
    assert_ne!(original.fingerprint(), other.fingerprint());
    let entries = temp.entries();
    assert_eq!(entries.len(), 1);
    let hijacked = entries[0].to_str().unwrap().replace(
        &format!("{:016x}", original.fingerprint()),
        &format!("{:016x}", other.fingerprint()),
    );
    std::fs::rename(&entries[0], &hijacked).unwrap();

    assert!(
        store.load_analyzer(other.fingerprint(), &options).is_none(),
        "the frame's fingerprint must override the file name"
    );
    let stats = store.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.hits, 0);
    // The original key simply misses (its entry is gone), without a rejection.
    assert!(store
        .load_analyzer(original.fingerprint(), &options)
        .is_none());
    assert_eq!(store.stats().rejected, 1);
}

/// A method mismatch (a compositional entry renamed onto the monolithic
/// path) is one rejection, not a phantom hit: `hits + misses` must stay equal
/// to the number of load attempts.
#[test]
fn method_mismatches_count_as_one_rejection_not_a_hit() {
    let temp = TempStore::new("method");
    let store = ModelStore::open(temp.path()).unwrap();
    let dft = spare_tree("st_method", 1.0);
    let compositional = AnalysisOptions::default();
    let analyzer = Analyzer::new(&dft, compositional.clone()).unwrap();
    store.save_analyzer(dft.fingerprint(), &analyzer).unwrap();

    let entries = temp.entries();
    assert_eq!(entries.len(), 1);
    let name = entries[0].file_name().unwrap().to_str().unwrap();
    assert!(
        name.starts_with("sc-"),
        "compositional session entry: {name}"
    );
    let monolithic_path = entries[0].with_file_name(name.replacen("sc-", "sm-", 1));
    std::fs::rename(&entries[0], &monolithic_path).unwrap();

    let monolithic = AnalysisOptions {
        method: dftmc::dft_core::Method::Monolithic,
        ..AnalysisOptions::default()
    };
    assert!(store
        .load_analyzer(dft.fingerprint(), &monolithic)
        .is_none());
    let stats = store.stats();
    assert_eq!(stats.hits, 0, "a refused load is never a hit");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.misses, 1, "one attempt, one miss");
}

/// Concurrent services (standing in for a fleet of server processes) sharing
/// one directory: atomic rename publication means nobody ever reads a torn
/// entry — every rejection counter stays at zero and every result is correct.
#[test]
fn concurrent_services_never_read_half_written_entries() {
    let temp = TempStore::new("race");
    let expected = {
        let analyzer =
            Analyzer::new(&spare_tree("st_race", 1.0), AnalysisOptions::default()).unwrap();
        bits_of(&analyzer.query(Measure::Unreliability(1.0)).unwrap())
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let dir = temp.path().clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    let service = AnalysisService::new(
                        ServiceOptions {
                            workers: 2,
                            cache_capacity: 8,
                            ..ServiceOptions::default()
                        }
                        .store(dir),
                    );
                    for round in 0..3 {
                        let report = service.run_batch(&[AnalysisJob::new(
                            spare_tree("st_race", 1.0),
                            AnalysisOptions::default(),
                            vec![Measure::Unreliability(1.0)],
                        )]);
                        assert_eq!(
                            bits_of(&report.jobs[0].results.as_ref().unwrap()[0]),
                            expected,
                            "round {round}: shared-store result diverged"
                        );
                    }
                    service.store_stats().unwrap()
                })
            })
            .collect();
        for handle in handles {
            let stats = handle.join().unwrap();
            assert_eq!(
                stats.rejected, 0,
                "a torn or partial entry was observed — atomic rename failed"
            );
        }
    });
    // Concurrent writers raced on the same key; exactly one entry survives.
    assert_eq!(temp.entries().len(), 1);
}

/// The explicit API carries typed failures; the service path never does.
#[test]
fn store_errors_are_typed_and_scoped_to_the_explicit_api() {
    // A path that cannot be a directory (its parent is a regular file).
    let temp = TempStore::new("typed");
    let blocker = temp.path().join("not-a-dir");
    std::fs::write(&blocker, b"file").unwrap();
    let unusable = blocker.join("store");

    match ModelStore::open(&unusable) {
        Err(Error::Store { message }) => {
            assert!(message.contains("store"), "actionable message: {message}")
        }
        other => panic!("expected Error::Store, got {other:?}"),
    }

    // The service with the same unusable path degrades to in-memory caching:
    // jobs succeed, store_stats reports no store.
    let service = AnalysisService::new(
        ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        }
        .store(&unusable),
    );
    assert!(service.store_stats().is_none());
    let report = service.run_batch(&[AnalysisJob::new(
        spare_tree("st_typed", 1.0),
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
    )]);
    assert!(report.jobs[0].results.is_ok());

    // from_bytes on garbage: typed, never a panic.
    match Analyzer::from_bytes(b"garbage") {
        Err(Error::Store { .. }) => {}
        other => panic!("expected Error::Store, got {other:?}"),
    }
}
