//! Shared test support: a deterministic random fault-tree generator.
//!
//! The container carries no external crates, so instead of proptest the
//! integration tests draw their random cases from a seeded [`SplitMix64`]
//! stream; every run replays the exact same cases, and a failing case is
//! reproduced by its printed seed.  Both `property_based.rs` and `engine.rs`
//! build their trees through this module so the generated shapes cannot
//! silently diverge between the two suites.

// Each integration test crate compiles its own copy of this module and uses a
// different subset of it.
#![allow(dead_code)]

use dftmc::dft::{Dft, DftBuilder, Dormancy, ElementId};
use dftmc::dft_core::rng::SplitMix64;

/// Minimal generator driver over a seeded SplitMix64 stream.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// A usize drawn uniformly from `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.rng.next_u64() as usize) % (hi - lo)
    }

    /// An f64 drawn uniformly from `lo..hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }
}

/// A random static fault tree over `n` basic events described by a compact
/// recipe: every gate consumes a slice of previously created elements.
#[derive(Debug, Clone)]
pub struct StaticTreeRecipe {
    pub rates: Vec<f64>,
    /// For each gate: (kind selector, how many of the most recent roots it
    /// takes).
    pub gates: Vec<(u8, u8)>,
}

/// Mirrors the proptest strategy the suite used before going dependency-free:
/// 2–5 basic events with rates in 0.1..3.0 and 1–3 gates of random kind/arity.
pub fn random_recipe(gen: &mut Gen) -> StaticTreeRecipe {
    let rates = (0..gen.usize_in(2, 6))
        .map(|_| gen.f64_in(0.1, 3.0))
        .collect();
    let gates = (0..gen.usize_in(1, 4))
        .map(|_| (gen.usize_in(0, 3) as u8, gen.usize_in(2, 4) as u8))
        .collect();
    StaticTreeRecipe { rates, gates }
}

/// Materialises a recipe into gates under a fresh name prefix.  Gates take
/// their inputs from the front of a rolling list of "roots" (elements without a
/// parent yet) so that the result is a tree; a final OR collects any leftovers.
pub fn build_module(b: &mut DftBuilder, recipe: &StaticTreeRecipe, prefix: &str) -> ElementId {
    let mut roots: Vec<ElementId> = recipe
        .rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            b.basic_event(&format!("{prefix}_e{i}"), rate, Dormancy::Hot)
                .unwrap()
        })
        .collect();
    for (gi, &(kind, take)) in recipe.gates.iter().enumerate() {
        let take = (take as usize).min(roots.len()).max(1);
        let inputs: Vec<ElementId> = roots.drain(..take).collect();
        let name = format!("{prefix}_g{gi}");
        let gate = match kind % 3 {
            0 => b.and_gate(&name, &inputs).unwrap(),
            1 => b.or_gate(&name, &inputs).unwrap(),
            _ => {
                let k = inputs.len().div_ceil(2) as u32;
                b.voting_gate(&name, k, &inputs).unwrap()
            }
        };
        roots.push(gate);
    }
    if roots.len() == 1 {
        roots[0]
    } else {
        b.or_gate(&format!("{prefix}_collect"), &roots).unwrap()
    }
}

/// Builds a whole DFT from a recipe.
pub fn build_static_tree(recipe: &StaticTreeRecipe, prefix: &str) -> Dft {
    let mut b = DftBuilder::new();
    let top = build_module(&mut b, recipe, prefix);
    b.build(top).unwrap()
}

impl StaticTreeRecipe {
    /// The same structure with every failure rate multiplied by `scale` — the
    /// pre-scaled twin a parametric valuation sweep is checked against.
    pub fn scaled(&self, scale: f64) -> StaticTreeRecipe {
        StaticTreeRecipe {
            rates: self.rates.iter().map(|r| r * scale).collect(),
            gates: self.gates.clone(),
        }
    }

    /// The same structure with the rate of basic event `index` replaced.
    pub fn with_rate(&self, index: usize, rate: f64) -> StaticTreeRecipe {
        let mut rates = self.rates.clone();
        rates[index] = rate;
        StaticTreeRecipe {
            rates,
            gates: self.gates.clone(),
        }
    }
}

/// Convenience: a random static tree straight from a seed.
pub fn random_static_tree(seed: u64, prefix: &str) -> Dft {
    let mut gen = Gen::new(seed);
    let recipe = random_recipe(&mut gen);
    build_static_tree(&recipe, prefix)
}
