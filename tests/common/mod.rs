//! Shared test support: a deterministic random fault-tree generator.
//!
//! The container carries no external crates, so instead of proptest the
//! integration tests draw their random cases from a seeded [`SplitMix64`]
//! stream; every run replays the exact same cases, and a failing case is
//! reproduced by its printed seed.  Both `property_based.rs` and `engine.rs`
//! build their trees through this module so the generated shapes cannot
//! silently diverge between the two suites.

// Each integration test crate compiles its own copy of this module and uses a
// different subset of it.
#![allow(dead_code)]

use dftmc::dft::{Dft, DftBuilder, Dormancy, ElementId};
use dftmc::dft_core::rng::SplitMix64;

/// Minimal generator driver over a seeded SplitMix64 stream.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// A usize drawn uniformly from `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.rng.next_u64() as usize) % (hi - lo)
    }

    /// An f64 drawn uniformly from `lo..hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }
}

/// A random static fault tree over `n` basic events described by a compact
/// recipe: every gate consumes a slice of previously created elements.
#[derive(Debug, Clone)]
pub struct StaticTreeRecipe {
    pub rates: Vec<f64>,
    /// For each gate: (kind selector, how many of the most recent roots it
    /// takes).
    pub gates: Vec<(u8, u8)>,
}

/// Mirrors the proptest strategy the suite used before going dependency-free:
/// 2–5 basic events with rates in 0.1..3.0 and 1–3 gates of random kind/arity.
pub fn random_recipe(gen: &mut Gen) -> StaticTreeRecipe {
    let rates = (0..gen.usize_in(2, 6))
        .map(|_| gen.f64_in(0.1, 3.0))
        .collect();
    let gates = (0..gen.usize_in(1, 4))
        .map(|_| (gen.usize_in(0, 3) as u8, gen.usize_in(2, 4) as u8))
        .collect();
    StaticTreeRecipe { rates, gates }
}

/// Materialises a recipe into gates under a fresh name prefix.  Gates take
/// their inputs from the front of a rolling list of "roots" (elements without a
/// parent yet) so that the result is a tree; a final OR collects any leftovers.
pub fn build_module(b: &mut DftBuilder, recipe: &StaticTreeRecipe, prefix: &str) -> ElementId {
    let mut roots: Vec<ElementId> = recipe
        .rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            b.basic_event(&format!("{prefix}_e{i}"), rate, Dormancy::Hot)
                .unwrap()
        })
        .collect();
    for (gi, &(kind, take)) in recipe.gates.iter().enumerate() {
        let take = (take as usize).min(roots.len()).max(1);
        let inputs: Vec<ElementId> = roots.drain(..take).collect();
        let name = format!("{prefix}_g{gi}");
        let gate = match kind % 3 {
            0 => b.and_gate(&name, &inputs).unwrap(),
            1 => b.or_gate(&name, &inputs).unwrap(),
            _ => {
                let k = inputs.len().div_ceil(2) as u32;
                b.voting_gate(&name, k, &inputs).unwrap()
            }
        };
        roots.push(gate);
    }
    if roots.len() == 1 {
        roots[0]
    } else {
        b.or_gate(&format!("{prefix}_collect"), &roots).unwrap()
    }
}

/// Builds a whole DFT from a recipe.
pub fn build_static_tree(recipe: &StaticTreeRecipe, prefix: &str) -> Dft {
    let mut b = DftBuilder::new();
    let top = build_module(&mut b, recipe, prefix);
    b.build(top).unwrap()
}

impl StaticTreeRecipe {
    /// The same structure with every failure rate multiplied by `scale` — the
    /// pre-scaled twin a parametric valuation sweep is checked against.
    pub fn scaled(&self, scale: f64) -> StaticTreeRecipe {
        StaticTreeRecipe {
            rates: self.rates.iter().map(|r| r * scale).collect(),
            gates: self.gates.clone(),
        }
    }

    /// The same structure with the rate of basic event `index` replaced.
    pub fn with_rate(&self, index: usize, rate: f64) -> StaticTreeRecipe {
        let mut rates = self.rates.clone();
        rates[index] = rate;
        StaticTreeRecipe {
            rates,
            gates: self.gates.clone(),
        }
    }
}

/// Convenience: a random static tree straight from a seed.
pub fn random_static_tree(seed: u64, prefix: &str) -> Dft {
    let mut gen = Gen::new(seed);
    let recipe = random_recipe(&mut gen);
    build_static_tree(&recipe, prefix)
}

/// Generates a random valid Galileo description: basic events, then gates in
/// topological order drawing inputs from everything defined before them.
/// Spare gates get dedicated fresh basic events (unique primaries, no shared
/// subtrees), matching the wellformedness rules.  Used by the format
/// round-trip suites (`galileo_corpus.rs`, `json_corpus.rs`).
pub fn random_galileo(rng: &mut SplitMix64) -> String {
    let pick = |rng: &mut SplitMix64, n: usize| -> usize { (rng.next_u64() % n as u64) as usize };
    let mut out = String::new();
    let mut pool: Vec<String> = Vec::new();

    let num_be = 4 + pick(rng, 5);
    for i in 0..num_be {
        let name = format!("E{i}");
        let mut line = format!("\"{name}\" lambda={}", 0.1 + rng.next_f64() * 2.0);
        if pick(rng, 3) == 0 {
            line.push_str(&format!(" dorm={}", rng.next_f64()));
        }
        if pick(rng, 5) == 0 {
            line.push_str(&format!(" repair={}", 0.5 + rng.next_f64()));
        }
        out.push_str(&line);
        out.push_str(";\n");
        pool.push(name);
    }

    let num_gates = 2 + pick(rng, 5);
    let mut top = String::new();
    for g in 0..num_gates {
        let name = format!("G{g}");
        let kind = pick(rng, 8);
        if kind == 7 {
            // Spare gate over fresh basic events of its own.
            let spares = 2 + pick(rng, 2);
            let mut inputs = Vec::new();
            for j in 0..spares {
                let be = format!("S{g}_{j}");
                out.push_str(&format!("\"{be}\" lambda=1.0 dorm=0.5;\n"));
                inputs.push(format!("\"{be}\""));
            }
            out.push_str(&format!("\"{name}\" wsp {};\n", inputs.join(" ")));
        } else {
            // Sample 2-4 distinct inputs from everything defined so far.
            let want = (2 + pick(rng, 3)).min(pool.len());
            let mut candidates = pool.clone();
            let mut inputs = Vec::new();
            for _ in 0..want {
                let chosen = candidates.swap_remove(pick(rng, candidates.len()));
                inputs.push(format!("\"{chosen}\""));
            }
            let keyword = match kind {
                0 => "and".to_owned(),
                1 => "or".to_owned(),
                2 => "pand".to_owned(),
                3 => "seq".to_owned(),
                4 => "fdep".to_owned(),
                5 => "inhibit".to_owned(),
                _ => format!("{}of{}", 1 + pick(rng, inputs.len()), inputs.len()),
            };
            out.push_str(&format!("\"{name}\" {keyword} {};\n", inputs.join(" ")));
        }
        pool.push(name.clone());
        top = name;
    }
    format!("toplevel \"{top}\";\n{out}")
}

/// Structural equality for round-trip checking: same names, and per name the
/// same gate kind + input names or the same basic-event attributes.
pub fn assert_same_tree(a: &Dft, b: &Dft) {
    assert_eq!(a.num_elements(), b.num_elements());
    assert_eq!(a.name(a.top()), b.name(b.top()));
    for id in a.elements() {
        let name = a.name(id);
        let other = b.by_name(name).unwrap_or_else(|| panic!("{name} lost"));
        let ea = a.element(id);
        let eb = b.element(other);
        match (ea.as_gate(), eb.as_gate()) {
            (Some(ga), Some(gb)) => {
                assert_eq!(ga.kind, gb.kind, "{name} changed kind");
                let ins_a: Vec<&str> = ga.inputs.iter().map(|&i| a.name(i)).collect();
                let ins_b: Vec<&str> = gb.inputs.iter().map(|&i| b.name(i)).collect();
                assert_eq!(ins_a, ins_b, "{name} changed inputs");
            }
            (None, None) => {
                let ba = ea.as_basic_event().expect("not a gate, so a basic event");
                let bb = eb.as_basic_event().expect("not a gate, so a basic event");
                assert_eq!(ba.rate, bb.rate, "{name} changed rate");
                assert_eq!(
                    ba.dormancy.factor(),
                    bb.dormancy.factor(),
                    "{name} changed dormancy"
                );
                assert_eq!(ba.repair_rate, bb.repair_rate, "{name} changed repair");
            }
            _ => panic!("{name} changed between gate and basic event"),
        }
    }
}
