//! Experiment E6 — modular model building (Section 6, Figure 10): complex spares
//! and FDEPs triggering gates, plus the module-reuse argument of Section 5.2.

use dftmc::dft::modules::independent_modules;
use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::analysis::AnalysisOptions;
use dftmc::dft_core::casestudies::cps;
use dftmc::dft_core::Analyzer;
use dftmc::ioimc::rename::rename;
use dftmc::ioimc::Action;
use std::collections::BTreeMap;

fn unrel(dft: &Dft, t: f64) -> f64 {
    Analyzer::new(dft, AnalysisOptions::default())
        .unwrap()
        .unreliability(t)
        .unwrap()
        .value()
}

/// Figure 10(a): AND sub-systems as primary and spare of a spare gate.
fn complex_spare_system(dormancy: Dormancy) -> Dft {
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let a2 = b.basic_event("A2", 1.0, Dormancy::Hot).unwrap();
    let c = b.basic_event("C", 1.0, dormancy).unwrap();
    let d = b.basic_event("D", 1.0, dormancy).unwrap();
    let primary = b.and_gate("primary", &[a, a2]).unwrap();
    let spare = b.and_gate("spare", &[c, d]).unwrap();
    let top = b.spare_gate("system", &[primary, spare]).unwrap();
    b.build(top).unwrap()
}

#[test]
fn cold_complex_spare_cannot_fail_before_activation() {
    // With cold events in the spare module, the spare module can only start
    // failing after the primary module has failed, so the system failure time is
    // the sum of two independent "AND of two exp(1)" completions.
    let dft = complex_spare_system(Dormancy::Cold);
    let t = 1.0;
    let p = unrel(&dft, t);
    // P(two-of-two AND completes by s) = (1 - e^-s)^2; the system failure time is
    // the convolution of two such phases.  Monte-Carlo-free bound checks: it must
    // be below the probability for a single AND phase and above the value for an
    // Erlang(4,1) (the slowest possible ordering).
    let single_phase = (1.0 - (-t).exp()).powi(2);
    assert!(p < single_phase);
    assert!(p > 0.0);
}

#[test]
fn hot_complex_spare_equals_and_of_all_events() {
    // With hot events everywhere, dormancy does not matter and the spare gate
    // degenerates to "system fails when both modules have failed".
    let dft = complex_spare_system(Dormancy::Hot);
    let t = 0.8;
    let p = unrel(&dft, t);
    let p_module = (1.0 - (-t).exp()).powi(2);
    let exact = p_module * p_module;
    assert!((p - exact).abs() < 1e-6, "{p} vs {exact}");
}

#[test]
fn warm_complex_spare_lies_between_cold_and_hot() {
    let t = 1.0;
    let cold = unrel(&complex_spare_system(Dormancy::Cold), t);
    let warm = unrel(&complex_spare_system(Dormancy::Warm(0.5)), t);
    let hot = unrel(&complex_spare_system(Dormancy::Hot), t);
    assert!(cold < warm, "cold {cold} should be below warm {warm}");
    assert!(warm < hot, "warm {warm} should be below hot {hot}");
}

#[test]
fn fdep_can_trigger_a_gate() {
    // Figure 10(c): the trigger fails the sub-tree A as a whole; the events below
    // it keep running.  System = AND(A, B): once T has fired, only B must fail.
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot).unwrap();
    let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
    let e = b.basic_event("E", 1.0, Dormancy::Hot).unwrap();
    let gate_a = b.and_gate("A", &[c, e]).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let _fdep = b.fdep_gate("FDEP", t, &[gate_a]).unwrap();
    let top = b.and_gate("system", &[gate_a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let horizon = 1.0;
    let with_trigger = unrel(&dft, horizon);

    // Without the FDEP the system is strictly more reliable.
    let mut b = DftBuilder::new();
    let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
    let e = b.basic_event("E", 1.0, Dormancy::Hot).unwrap();
    let gate_a = b.and_gate("A", &[c, e]).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let top = b.and_gate("system", &[gate_a, bb]).unwrap();
    let without_trigger = unrel(&b.build(top).unwrap(), horizon);

    assert!(with_trigger > without_trigger);
    // And the trigger alone is not enough: B must also fail, so the unreliability
    // stays below P(B fails).
    assert!(with_trigger < 1.0 - (-horizon).exp());
}

#[test]
fn cps_modules_are_detected_and_reusable() {
    // The three AND modules of the CPS are independent modules even though their
    // parents are dynamic gates — the property DIFTree cannot exploit but the
    // I/O-IMC framework can (Section 5.2).
    let dft = cps();
    let modules = independent_modules(&dft);
    let module_names: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
    for name in ["A", "C", "D"] {
        assert!(
            module_names.contains(&name),
            "{name} should be an independent module"
        );
    }

    // Module reuse: aggregate module A once and rename its interface to obtain
    // module C's I/O-IMC without re-analysing it.
    let module_a = {
        let mut b = DftBuilder::new();
        let events: Vec<_> = (0..4)
            .map(|i| {
                b.basic_event(&format!("A_{i}"), 1.0, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.and_gate("A", &events).unwrap();
        b.build(top).unwrap()
    };
    let (aggregated_a, _) =
        dftmc::dft_core::analysis::aggregated_model(&module_a).expect("aggregation succeeds");
    let mut mapping = BTreeMap::new();
    mapping.insert(Action::new("f_A"), Action::new("f_C"));
    let reused_c = rename(&aggregated_a, &mapping).expect("renaming succeeds");
    assert_eq!(reused_c.num_states(), aggregated_a.num_states());
    assert!(reused_c.signature().is_output(Action::new("f_C")));
    assert!(!reused_c.signature().is_output(Action::new("f_A")));
}
