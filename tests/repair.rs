//! Experiment E8 — the repair extension (Section 7.2, Figures 13–15):
//! repairable basic events, repairable static gates and unavailability analysis.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unavailability, unreliability, AnalysisOptions};

fn options() -> AnalysisOptions {
    AnalysisOptions::default()
}

/// Steady-state unavailability of a single repairable component.
fn component_unavailability(lambda: f64, mu: f64) -> f64 {
    lambda / (lambda + mu)
}

#[test]
fn figure_15_repairable_and_gate() {
    // The paper's Figure 15: an AND gate over two repairable basic events
    // composes/aggregates into a small CTMC whose steady state gives the system
    // unavailability.  For independent components that value is the product of the
    // component unavailabilities.
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("A", 1.0, Dormancy::Hot, 10.0)
        .unwrap();
    let bb = b
        .repairable_basic_event("B", 2.0, Dormancy::Hot, 10.0)
        .unwrap();
    let top = b.and_gate("system", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unavailability(&dft, &options()).unwrap();
    let exact = component_unavailability(1.0, 10.0) * component_unavailability(2.0, 10.0);
    assert!(
        (r.unavailability - exact).abs() < 1e-6,
        "{} vs {exact}",
        r.unavailability
    );
    // The aggregated model stays tiny (the paper's Figure 15(b) has 4 states; our
    // monitor adds little).
    assert!(
        r.final_model.states <= 10,
        "final model has {} states",
        r.final_model.states
    );
}

#[test]
fn or_of_repairable_components() {
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("A", 1.0, Dormancy::Hot, 4.0)
        .unwrap();
    let bb = b
        .repairable_basic_event("B", 0.5, Dormancy::Hot, 2.0)
        .unwrap();
    let top = b.or_gate("system", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unavailability(&dft, &options()).unwrap();
    // OR is down unless both components are up: 1 - prod(availability).
    let exact = 1.0
        - (1.0 - component_unavailability(1.0, 4.0)) * (1.0 - component_unavailability(0.5, 2.0));
    assert!(
        (r.unavailability - exact).abs() < 1e-6,
        "{} vs {exact}",
        r.unavailability
    );
}

#[test]
fn voting_gate_unavailability() {
    // 2-out-of-3 with identical repairable components: closed-form from the
    // binomial over independent component unavailabilities.
    let q = component_unavailability(0.2, 1.0);
    let mut b = DftBuilder::new();
    let s: Vec<_> = (0..3)
        .map(|i| {
            b.repairable_basic_event(&format!("S{i}"), 0.2, Dormancy::Hot, 1.0)
                .unwrap()
        })
        .collect();
    let top = b.voting_gate("voter", 2, &s).unwrap();
    let dft = b.build(top).unwrap();
    let r = unavailability(&dft, &options()).unwrap();
    let exact = 3.0 * q * q * (1.0 - q) + q * q * q;
    assert!(
        (r.unavailability - exact).abs() < 1e-6,
        "{} vs {exact}",
        r.unavailability
    );
}

#[test]
fn mixed_repairable_and_unrepairable_components() {
    // One unrepairable component in an OR: in the long run the system is down with
    // probability 1, and unreliability is driven by the unrepairable part.
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("A", 1.0, Dormancy::Hot, 5.0)
        .unwrap();
    let bb = b.basic_event("B", 0.1, Dormancy::Hot).unwrap();
    let top = b.or_gate("system", &[a, bb]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unavailability(&dft, &options()).unwrap();
    assert!(
        r.unavailability > 0.99,
        "unrepairable leaf should dominate: {}",
        r.unavailability
    );
}

#[test]
fn repairable_tree_unreliability_is_lower_than_unrepairable() {
    // With repair, the probability of being continuously exposed to failure drops:
    // time-bounded reachability of the failed state for the AND gate must be lower
    // than without repair.
    let t = 2.0;
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("A", 1.0, Dormancy::Hot, 5.0)
        .unwrap();
    let bb = b
        .repairable_basic_event("B", 1.0, Dormancy::Hot, 5.0)
        .unwrap();
    let top = b.and_gate("system", &[a, bb]).unwrap();
    let repairable = b.build(top).unwrap();
    let with_repair = unreliability(&repairable, t, &options())
        .unwrap()
        .probability();

    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
    let top = b.and_gate("system", &[a, bb]).unwrap();
    let unrepairable = b.build(top).unwrap();
    let without_repair = unreliability(&unrepairable, t, &options())
        .unwrap()
        .probability();

    assert!(with_repair < without_repair);
    assert!(with_repair > 0.0);
}

#[test]
fn deeper_repairable_trees_analyse_correctly() {
    // OR over an AND and a single component, everything repairable.
    let mut b = DftBuilder::new();
    let a = b
        .repairable_basic_event("A", 1.0, Dormancy::Hot, 10.0)
        .unwrap();
    let c = b
        .repairable_basic_event("C", 1.0, Dormancy::Hot, 10.0)
        .unwrap();
    let d = b
        .repairable_basic_event("D", 0.2, Dormancy::Hot, 5.0)
        .unwrap();
    let and = b.and_gate("pair", &[a, c]).unwrap();
    let top = b.or_gate("system", &[and, d]).unwrap();
    let dft = b.build(top).unwrap();
    let r = unavailability(&dft, &options()).unwrap();
    let qa = component_unavailability(1.0, 10.0);
    let qd = component_unavailability(0.2, 5.0);
    let exact = 1.0 - (1.0 - qa * qa) * (1.0 - qd);
    assert!(
        (r.unavailability - exact).abs() < 1e-6,
        "{} vs {exact}",
        r.unavailability
    );
}

#[test]
fn unavailability_errors_are_informative() {
    // Not repairable at all.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
    let top = b.or_gate("system", &[a]).unwrap();
    let dft = b.build(top).unwrap();
    let err = unavailability(&dft, &options()).unwrap_err();
    assert!(err.to_string().contains("repairable"));
}
