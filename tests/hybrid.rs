//! Differential tests for the hybrid static/dynamic backend.
//!
//! The hybrid method ([`Method::Hybrid`]) BDD-solves the static crown of a
//! fault tree and runs the compositional I/O-IMC pipeline only inside the
//! dynamic cores.  Its oracle is the pure state-space analysis: on every tree
//! where both run, the two must agree far below the numerical tolerance of
//! the transient analysis.  Random cases are drawn from the same seeded
//! generator as `property_based.rs` so failures replay by seed.

use dftmc::dft::bdd::Bdd;
use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{AnalysisOptions, Method};
use dftmc::dft_core::engine::{Analyzer, ParametricAnalyzer};
use dftmc::dft_core::{casestudies, Measure};

mod common;
use common::{build_module, random_recipe, Gen};

/// Tight truncation bound so the uniformisation error cannot mask a real
/// disagreement with the closed-form BDD evaluation.
fn options(method: Method) -> AnalysisOptions {
    AnalysisOptions {
        epsilon: 1e-13,
        method,
    }
}

const TOLERANCE: f64 = 1e-12;
const TIMES: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

fn curve(dft: &Dft, method: Method) -> Vec<f64> {
    Analyzer::new(dft, options(method))
        .unwrap()
        .unreliability_curve(&TIMES)
        .unwrap()
        .points()
        .iter()
        .map(|p| p.value())
        .collect()
}

fn assert_curves_match(a: &[f64], b: &[f64], context: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOLERANCE,
            "{context}: t={} diverges: {x} vs {y}",
            TIMES[i]
        );
    }
}

/// A random mixed tree: a random static module OR'd with a cold-spare pair,
/// so the hybrid plan always finds both a crown and a dynamic core.
fn random_mixed_tree(seed: u64, prefix: &str) -> Dft {
    let mut gen = Gen::new(seed);
    let recipe = random_recipe(&mut gen);
    let mut b = DftBuilder::new();
    let module = build_module(&mut b, &recipe, prefix);
    let p = b
        .basic_event(&format!("{prefix}_p"), gen.f64_in(0.2, 2.0), Dormancy::Hot)
        .unwrap();
    let s = b
        .basic_event(&format!("{prefix}_s"), gen.f64_in(0.2, 2.0), Dormancy::Cold)
        .unwrap();
    let spare = b.spare_gate(&format!("{prefix}_spare"), &[p, s]).unwrap();
    let top = b
        .or_gate(&format!("{prefix}_top"), &[module, spare])
        .unwrap();
    b.build(top).unwrap()
}

/// On purely static trees the BDD closed form and the state-space transient
/// analysis are two completely independent paths to the same number.
#[test]
fn bdd_matches_state_space_on_random_static_trees() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0xb0d_d000 + case);
        let recipe = random_recipe(&mut gen);
        let mut b = DftBuilder::new();
        let top = build_module(&mut b, &recipe, &format!("hyb{case}"));
        let dft = b.build(top).unwrap();

        let bdd = Bdd::for_tree(&dft).unwrap();
        let closed: Vec<f64> = TIMES.iter().map(|&t| bdd.unreliability(&dft, t)).collect();
        let state_space = curve(&dft, Method::Compositional);
        assert_curves_match(&closed, &state_space, &format!("static seed {case}"));
    }
}

/// The hybrid backend must match the pure state-space analysis on the paper's
/// two case studies end to end.
#[test]
fn hybrid_matches_state_space_on_the_case_studies() {
    for (name, dft) in [("cas", casestudies::cas()), ("cps", casestudies::cps())] {
        let reference = curve(&dft, Method::Compositional);
        let hybrid = curve(&dft, Method::Hybrid);
        assert_curves_match(&hybrid, &reference, name);
    }
}

/// Random mixed trees: a static module plus a spare pair. The hybrid session
/// must genuinely decompose (module stats present) and still agree with the
/// pure state-space analysis.
#[test]
fn hybrid_matches_state_space_on_random_mixed_trees() {
    for case in 0..12u64 {
        let dft = random_mixed_tree(0x4b1d_0000 + case, &format!("mix{case}"));
        let reference = curve(&dft, Method::Compositional);
        let analyzer = Analyzer::new(&dft, options(Method::Hybrid)).unwrap();
        let stats = analyzer
            .module_stats()
            .expect("a spare pair plus a static module must decompose");
        assert!(stats.core_count >= 1, "seed {case}: no dynamic core found");
        let hybrid: Vec<f64> = analyzer
            .unreliability_curve(&TIMES)
            .unwrap()
            .points()
            .iter()
            .map(|p| p.value())
            .collect();
        assert_curves_match(&hybrid, &reference, &format!("mixed seed {case}"));
    }
}

/// The parametric hybrid sweep must agree with instantiating each valuation
/// and querying the resulting numeric hybrid session.
#[test]
fn parametric_hybrid_sweep_matches_instantiate_plus_query() {
    let dft = random_mixed_tree(0x9a7a_0001, "par");
    let parametric = ParametricAnalyzer::new(&dft, options(Method::Hybrid)).unwrap();
    let valuations: Vec<_> = [0.5, 1.0, 1.75]
        .iter()
        .map(|&scale| parametric.params().scaled_valuation(scale))
        .collect();
    let sweep = parametric
        .sweep_query(&Measure::UnreliabilityCurve(TIMES.to_vec()), &valuations)
        .unwrap();
    for (lane, valuation) in valuations.iter().enumerate() {
        let direct = parametric
            .instantiate(valuation)
            .unwrap()
            .unreliability_curve(&TIMES)
            .unwrap();
        let swept = &sweep.results()[lane];
        for (a, b) in swept.points().iter().zip(direct.points()) {
            assert_eq!(
                a.value().to_bits(),
                b.value().to_bits(),
                "lane {lane}: sweep and instantiate+query diverged"
            );
        }
    }
}

/// The acceptance bar of the issue: on a static-heavy tree the hybrid
/// decomposition must shrink the closed state space by at least 10x while
/// reproducing the pure state-space unreliability curve.
#[test]
fn hybrid_shrinks_the_state_space_tenfold_on_a_static_heavy_tree() {
    // One cold-spare pair carries all the dynamism; a 9-event static
    // structure of distinct rates rides above it.
    let mut b = DftBuilder::new();
    let mut statics = Vec::new();
    for i in 0..9 {
        let rate = 0.3 + 0.1 * i as f64;
        statics.push(
            b.basic_event(&format!("sh_e{i}"), rate, Dormancy::Hot)
                .unwrap(),
        );
    }
    let a1 = b.and_gate("sh_a1", &statics[0..3]).unwrap();
    let a2 = b.voting_gate("sh_v", 2, &statics[3..6]).unwrap();
    let a3 = b.or_gate("sh_o", &statics[6..9]).unwrap();
    let p = b.basic_event("sh_p", 1.0, Dormancy::Hot).unwrap();
    let s = b.basic_event("sh_s", 1.0, Dormancy::Cold).unwrap();
    let spare = b.spare_gate("sh_spare", &[p, s]).unwrap();
    let top = b.or_gate("sh_top", &[a1, a2, a3, spare]).unwrap();
    let dft = b.build(top).unwrap();

    let pure = Analyzer::new(&dft, options(Method::Compositional)).unwrap();
    let hybrid = Analyzer::new(&dft, options(Method::Hybrid)).unwrap();
    let stats = hybrid.module_stats().expect("the tree must decompose");
    assert!(stats.crown_elements > 0 && stats.core_count == 1);

    let pure_states = pure.model_stats().states;
    let hybrid_states = hybrid.model_stats().states.max(1);
    assert!(
        pure_states >= 10 * hybrid_states,
        "only {pure_states} vs {hybrid_states} states — less than the promised 10x"
    );

    let reference: Vec<f64> = pure
        .unreliability_curve(&TIMES)
        .unwrap()
        .points()
        .iter()
        .map(|p| p.value())
        .collect();
    let reduced: Vec<f64> = hybrid
        .unreliability_curve(&TIMES)
        .unwrap()
        .points()
        .iter()
        .map(|p| p.value())
        .collect();
    assert_curves_match(&reduced, &reference, "static-heavy");
}
