//! Experiment E2 — the cardiac assist system (Section 5.1 of the paper).
//!
//! The paper (and the original Galileo/DIFTree tool) reports an unreliability of
//! 0.6579 at mission time 1, with each aggregated module I/O-IMC having a handful
//! of states.  We check the probability against both analysis methods and keep an
//! eye on the model sizes.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft_core::analysis::{aggregated_model, unreliability, AnalysisOptions, Method};
use dftmc::dft_core::baseline::monolithic_ctmc;
use dftmc::dft_core::casestudies::{
    cas, cas_cpu_unit, cas_motor_unit, cas_pump_unit, CAS_PAPER_UNRELIABILITY,
};

#[test]
fn cas_unreliability_matches_the_paper() {
    let dft = cas();
    let result = unreliability(&dft, 1.0, &AnalysisOptions::default()).expect("analysis succeeds");
    assert!(
        (result.probability() - CAS_PAPER_UNRELIABILITY).abs() < 5e-4,
        "compositional unreliability {} vs paper {CAS_PAPER_UNRELIABILITY}",
        result.probability()
    );
    // The FDEP trigger fails both CPUs at the same instant; the resulting ordering
    // non-determinism is confluent, so the bounds must coincide.
    let (lo, hi) = result.bounds();
    assert!(
        (hi - lo).abs() < 1e-9,
        "bounds [{lo}, {hi}] should coincide"
    );
}

#[test]
fn cas_monolithic_baseline_agrees() {
    let dft = cas();
    let mono = unreliability(
        &dft,
        1.0,
        &AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
    )
    .expect("baseline succeeds");
    assert!((mono.probability() - CAS_PAPER_UNRELIABILITY).abs() < 5e-4);
}

#[test]
fn cas_unreliability_is_monotone_in_time() {
    let dft = cas();
    let options = AnalysisOptions::default();
    let mut previous = 0.0;
    for t in [0.25, 0.5, 1.0, 2.0] {
        let r = unreliability(&dft, t, &options).expect("analysis succeeds");
        assert!(r.probability() >= previous - 1e-12);
        previous = r.probability();
    }
    assert!(previous < 1.0);
}

#[test]
fn cas_modules_aggregate_to_small_ioimcs() {
    // The paper reports ~6 states for each aggregated module; our counting keeps
    // the firing/fired machinery and activation interface visible, so allow some
    // slack while still requiring the modules to be tiny compared to a monolithic
    // chain over the same components.
    for (name, module) in [
        ("CPU unit", cas_cpu_unit()),
        ("Motor unit", cas_motor_unit()),
        ("Pump unit", cas_pump_unit()),
    ] {
        let (model, stats) = aggregated_model(&module).expect("aggregation succeeds");
        assert!(
            model.num_states() <= 20,
            "{name}: expected a small aggregated module, got {} states",
            model.num_states()
        );
        assert!(
            stats.peak.states < 200,
            "{name}: peak {}",
            stats.peak.states
        );
    }
}

#[test]
fn cas_module_unreliabilities_compose_to_the_system_value() {
    // The three units are independent and the system is an OR over them, so the
    // system unreliability must equal 1 - prod(1 - U_i).  This is exactly the
    // modular-analysis argument of the paper.
    let options = AnalysisOptions::default();
    let t = 1.0;
    let u_cpu = unreliability(&cas_cpu_unit(), t, &options)
        .unwrap()
        .probability();
    let u_motor = unreliability(&cas_motor_unit(), t, &options)
        .unwrap()
        .probability();
    let u_pump = unreliability(&cas_pump_unit(), t, &options)
        .unwrap()
        .probability();
    let composed = 1.0 - (1.0 - u_cpu) * (1.0 - u_motor) * (1.0 - u_pump);
    let system = unreliability(&cas(), t, &options).unwrap().probability();
    assert!(
        (composed - system).abs() < 1e-6,
        "modular composition {composed} vs direct analysis {system}"
    );
    assert!((system - CAS_PAPER_UNRELIABILITY).abs() < 5e-4);
}

#[test]
fn cas_monolithic_chain_is_much_larger_than_module_chains() {
    // Galileo solves the three modules separately (largest: 8 states for the pump
    // unit); a single chain over the full CAS is far larger.  This documents the
    // state-space gap the compositional/modular analysis avoids.
    let full = monolithic_ctmc(&cas()).expect("baseline builds");
    let pump = monolithic_ctmc(&cas_pump_unit()).expect("baseline builds");
    // The paper: "the biggest generated CTMC (the pump unit) had 8 states".
    assert_eq!(
        pump.num_states(),
        8,
        "pump unit chain has {} states",
        pump.num_states()
    );
    assert!(
        full.num_states() > 10 * pump.num_states(),
        "full chain ({}) should dwarf the pump unit chain ({})",
        full.num_states(),
        pump.num_states()
    );
}
