//! Integration tests for the [`AnalysisService`] portfolio front end and the
//! concurrency contract underneath it.
//!
//! The redesign promises:
//!
//! 1. [`Analyzer`] is `Send + Sync` (statically asserted), so one session behind
//!    an `Arc` serves many threads with bit-identical results,
//! 2. a batch with duplicate fingerprints runs aggregation once per *distinct*
//!    tree — duplicates are cache hits,
//! 3. service results are bit-identical to sequential [`Analyzer`] runs,
//! 4. [`Analyzer::query_all`] answers a mixed measure batch in one pass,
//!    bit-identical to individual queries,
//! 5. empty curves are rejected with the typed [`Error::EmptyCurve`] instead of
//!    panicking in the result accessors.

use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::casestudies::{cas, cas_scaled, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
use dftmc::dft_core::{AnalysisOptions, Error, Measure, MeasureResult};
use std::sync::Arc;

/// The load-bearing auto-trait guarantees, checked at compile time: the worker
/// pool and the `Arc<Analyzer>` cache are sound only if these hold.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Analyzer>();
    assert_send_sync::<AnalysisService>();
    assert_send_sync::<AnalysisJob>();
    assert_send_sync::<Measure>()
};

fn bits_of(result: &MeasureResult) -> Vec<(Option<u64>, u64, u64, u64)> {
    result
        .points()
        .iter()
        .map(|p| {
            (
                p.time().map(f64::to_bits),
                p.value().to_bits(),
                p.bounds().0.to_bits(),
                p.bounds().1.to_bits(),
            )
        })
        .collect()
}

/// A small dynamic tree whose element names carry `prefix`: two trees built
/// with the same `rate` but different prefixes are structurally identical —
/// same fingerprint — while different rates give distinct fingerprints.
fn variant(prefix: &str, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let n = |s: &str| format!("{prefix}_{s}");
    let p = b.basic_event(&n("P"), rate, Dormancy::Hot).unwrap();
    let s = b.basic_event(&n("S"), rate, Dormancy::Cold).unwrap();
    let spare = b.spare_gate(&n("SP"), &[p, s]).unwrap();
    let x = b.basic_event(&n("X"), 0.5 * rate, Dormancy::Hot).unwrap();
    let y = b.basic_event(&n("Y"), 0.7 * rate, Dormancy::Hot).unwrap();
    let pand = b.pand_gate(&n("PD"), &[x, y]).unwrap();
    let top = b.or_gate(&n("TOP"), &[spare, pand]).unwrap();
    b.build(top).unwrap()
}

#[test]
fn two_threads_share_one_analyzer_bit_identically() {
    let analyzer = Arc::new(Analyzer::new(&cas(), AnalysisOptions::default()).unwrap());
    let reference = analyzer
        .query(Measure::curve(DEFAULT_MISSION_TIMES))
        .unwrap();

    let results: Vec<MeasureResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&analyzer);
                scope.spawn(move || shared.query(Measure::curve(DEFAULT_MISSION_TIMES)).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for result in &results {
        assert_eq!(
            bits_of(result),
            bits_of(&reference),
            "concurrent queries must be bit-identical to the single-threaded one"
        );
    }
    assert_eq!(analyzer.aggregation_runs(), 1);
}

#[test]
fn duplicate_fingerprints_aggregate_once_per_distinct_tree() {
    // Three distinct structures (rate variants), each submitted three times
    // under fresh element names: nine jobs, three fingerprints, and renamed
    // twins must be cache hits.
    let service = AnalysisService::new(ServiceOptions {
        workers: 2,
        cache_capacity: 16,
    });
    let rates = [1.0, 1.25, 1.5];
    let jobs: Vec<AnalysisJob> = (0..9)
        .map(|i| {
            AnalysisJob::new(
                variant(&format!("svc{i}"), rates[i % rates.len()]),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            )
        })
        .collect();

    let report = service.run_batch(&jobs);
    assert_eq!(report.stats.jobs, 9);
    assert_eq!(
        report.stats.aggregation_runs,
        rates.len(),
        "aggregation must run once per distinct tree, not per job"
    );
    assert_eq!(report.stats.cache_misses, rates.len());
    assert_eq!(report.stats.cache_hits, jobs.len() - rates.len());

    // Every copy of the same structure reports the same fingerprint and
    // bit-identical results, whatever its element names were.
    let base_fp = variant("fresh", 1.0).fingerprint();
    let base_jobs: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.fingerprint == base_fp)
        .collect();
    assert_eq!(base_jobs.len(), 3);
    let reference = bits_of(&base_jobs[0].results.as_ref().unwrap()[0]);
    for job in &base_jobs {
        assert_eq!(bits_of(&job.results.as_ref().unwrap()[0]), reference);
    }
}

#[test]
fn service_results_match_sequential_analyzer_runs_bitwise() {
    let measures = vec![
        Measure::curve(DEFAULT_MISSION_TIMES),
        Measure::Unreliability(1.0),
    ];
    let scales = [1.0, 2.0];
    let jobs: Vec<AnalysisJob> = (0..6)
        .map(|i| {
            AnalysisJob::new(
                cas_scaled(scales[i % scales.len()]),
                AnalysisOptions::default(),
                measures.clone(),
            )
        })
        .collect();

    let sequential: Vec<Vec<MeasureResult>> = jobs
        .iter()
        .map(|job| {
            Analyzer::new(&job.dft, job.options.clone())
                .unwrap()
                .query_all(&job.measures)
                .unwrap()
        })
        .collect();

    for workers in [1, 4] {
        let service = AnalysisService::new(ServiceOptions {
            workers,
            cache_capacity: 8,
        });
        let report = service.run_batch(&jobs);
        for (job, expected) in report.jobs.iter().zip(&sequential) {
            let results = job.results.as_ref().unwrap();
            assert_eq!(results.len(), expected.len());
            for (r, e) in results.iter().zip(expected) {
                assert_eq!(
                    bits_of(r),
                    bits_of(e),
                    "{workers}-worker service results must be bit-identical to \
                     a fresh sequential Analyzer"
                );
            }
        }
    }
}

#[test]
fn query_all_is_bit_identical_to_individual_queries() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    let measures = vec![
        Measure::Unreliability(1.0),
        Measure::curve(DEFAULT_MISSION_TIMES),
        // Duplicate times across measures: the merged pass deduplicates them
        // but must hand every measure its own full answer.
        Measure::curve([1.0, 1.0, 2.5]),
    ];
    let batch = analyzer.query_all(&measures).unwrap();
    assert_eq!(batch.len(), measures.len());
    for (measure, result) in measures.iter().zip(&batch) {
        let single = analyzer.query(measure).unwrap();
        assert_eq!(bits_of(result), bits_of(&single));
    }
    assert_eq!(batch[2].points().len(), 3);
    assert_eq!(
        batch[2].points()[0].value().to_bits(),
        batch[2].points()[1].value().to_bits()
    );

    // Mixed scalar measures ride along in the same batch on a suitable model.
    let mut b = DftBuilder::new();
    let x = b
        .repairable_basic_event("qa_X", 1.0, Dormancy::Hot, 9.0)
        .unwrap();
    let top = b.or_gate("qa_Top", &[x]).unwrap();
    let repairable = b.build(top).unwrap();
    let analyzer = Analyzer::new(&repairable, AnalysisOptions::default()).unwrap();
    let mixed = vec![
        Measure::Mttf,
        Measure::Unreliability(0.5),
        Measure::Unavailability,
    ];
    let batch = analyzer.query_all(&mixed).unwrap();
    for (measure, result) in mixed.iter().zip(&batch) {
        let single = analyzer.query(measure).unwrap();
        assert_eq!(bits_of(result), bits_of(&single));
    }
}

#[test]
fn empty_curves_are_typed_errors_everywhere() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    assert!(matches!(
        analyzer.query(Measure::UnreliabilityCurve(Vec::new())),
        Err(Error::EmptyCurve)
    ));
    assert!(matches!(
        analyzer.query_all(&[Measure::Mttf, Measure::UnreliabilityCurve(Vec::new())]),
        Err(Error::EmptyCurve)
    ));

    // Through the service the error lands in the job report, not in a panic.
    let service = AnalysisService::new(ServiceOptions::default());
    let report = service.run_batch(&[AnalysisJob::new(
        cas(),
        AnalysisOptions::default(),
        vec![Measure::UnreliabilityCurve(Vec::new())],
    )]);
    assert!(matches!(report.jobs[0].results, Err(Error::EmptyCurve)));
}
