//! Integration tests for the [`AnalysisService`] portfolio front end and the
//! concurrency contract underneath it.
//!
//! The redesign promises:
//!
//! 1. [`Analyzer`] is `Send + Sync` (statically asserted), so one session behind
//!    an `Arc` serves many threads with bit-identical results,
//! 2. a batch with duplicate fingerprints runs aggregation once per *distinct*
//!    tree — duplicates are cache hits,
//! 3. service results are bit-identical to sequential [`Analyzer`] runs,
//! 4. [`Analyzer::query_all`] answers a mixed measure batch in one pass,
//!    bit-identical to individual queries,
//! 5. empty curves are rejected with the typed [`Error::EmptyCurve`] instead of
//!    panicking in the result accessors.

use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::casestudies::{cas, cas_scaled, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::service::{
    AnalysisJob, AnalysisService, JobHandle, JobReport, ServiceOptions, SweepHandle,
};
use dftmc::dft_core::{AnalysisOptions, Error, Measure, MeasureResult};
use std::sync::Arc;

/// The load-bearing auto-trait guarantees, checked at compile time: the worker
/// pool and the `Arc<Analyzer>` cache are sound only if these hold, and the
/// handles must be shippable to whatever thread wants to await them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Analyzer>();
    assert_send_sync::<AnalysisService>();
    assert_send_sync::<AnalysisJob>();
    assert_send_sync::<Measure>();
    assert_send::<JobHandle>();
    assert_send::<SweepHandle>()
};

fn bits_of(result: &MeasureResult) -> Vec<(Option<u64>, u64, u64, u64)> {
    result
        .points()
        .iter()
        .map(|p| {
            (
                p.time().map(f64::to_bits),
                p.value().to_bits(),
                p.bounds().0.to_bits(),
                p.bounds().1.to_bits(),
            )
        })
        .collect()
}

/// A small dynamic tree whose element names carry `prefix`: two trees built
/// with the same `rate` but different prefixes are structurally identical —
/// same fingerprint — while different rates give distinct fingerprints.
fn variant(prefix: &str, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let n = |s: &str| format!("{prefix}_{s}");
    let p = b.basic_event(&n("P"), rate, Dormancy::Hot).unwrap();
    let s = b.basic_event(&n("S"), rate, Dormancy::Cold).unwrap();
    let spare = b.spare_gate(&n("SP"), &[p, s]).unwrap();
    let x = b.basic_event(&n("X"), 0.5 * rate, Dormancy::Hot).unwrap();
    let y = b.basic_event(&n("Y"), 0.7 * rate, Dormancy::Hot).unwrap();
    let pand = b.pand_gate(&n("PD"), &[x, y]).unwrap();
    let top = b.or_gate(&n("TOP"), &[spare, pand]).unwrap();
    b.build(top).unwrap()
}

#[test]
fn two_threads_share_one_analyzer_bit_identically() {
    let analyzer = Arc::new(Analyzer::new(&cas(), AnalysisOptions::default()).unwrap());
    let reference = analyzer
        .query(Measure::curve(DEFAULT_MISSION_TIMES))
        .unwrap();

    let results: Vec<MeasureResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&analyzer);
                scope.spawn(move || shared.query(Measure::curve(DEFAULT_MISSION_TIMES)).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for result in &results {
        assert_eq!(
            bits_of(result),
            bits_of(&reference),
            "concurrent queries must be bit-identical to the single-threaded one"
        );
    }
    assert_eq!(analyzer.aggregation_runs(), 1);
}

#[test]
fn duplicate_fingerprints_aggregate_once_per_distinct_tree() {
    // Three distinct structures (rate variants), each submitted three times
    // under fresh element names: nine jobs, three fingerprints, and renamed
    // twins must be cache hits.
    let service = AnalysisService::new(ServiceOptions {
        workers: 2,
        cache_capacity: 16,
        ..ServiceOptions::default()
    });
    let rates = [1.0, 1.25, 1.5];
    let jobs: Vec<AnalysisJob> = (0..9)
        .map(|i| {
            AnalysisJob::new(
                variant(&format!("svc{i}"), rates[i % rates.len()]),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            )
        })
        .collect();

    let report = service.run_batch(&jobs);
    assert_eq!(report.stats.jobs, 9);
    assert_eq!(
        report.stats.aggregation_runs,
        rates.len(),
        "aggregation must run once per distinct tree, not per job"
    );
    assert_eq!(report.stats.cache_misses, rates.len());
    assert_eq!(report.stats.cache_hits, jobs.len() - rates.len());

    // Every copy of the same structure reports the same fingerprint and
    // bit-identical results, whatever its element names were.
    let base_fp = variant("fresh", 1.0).fingerprint();
    let base_jobs: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.fingerprint == base_fp)
        .collect();
    assert_eq!(base_jobs.len(), 3);
    let reference = bits_of(&base_jobs[0].results.as_ref().unwrap()[0]);
    for job in &base_jobs {
        assert_eq!(bits_of(&job.results.as_ref().unwrap()[0]), reference);
    }
}

#[test]
fn service_results_match_sequential_analyzer_runs_bitwise() {
    let measures = vec![
        Measure::curve(DEFAULT_MISSION_TIMES),
        Measure::Unreliability(1.0),
    ];
    let scales = [1.0, 2.0];
    let jobs: Vec<AnalysisJob> = (0..6)
        .map(|i| {
            AnalysisJob::new(
                cas_scaled(scales[i % scales.len()]),
                AnalysisOptions::default(),
                measures.clone(),
            )
        })
        .collect();

    let sequential: Vec<Vec<MeasureResult>> = jobs
        .iter()
        .map(|job| {
            Analyzer::new(&job.dft, job.options.clone())
                .unwrap()
                .query_all(&job.measures)
                .unwrap()
        })
        .collect();

    for workers in [1, 4] {
        let service = AnalysisService::new(ServiceOptions {
            workers,
            cache_capacity: 8,
            ..ServiceOptions::default()
        });
        let report = service.run_batch(&jobs);
        for (job, expected) in report.jobs.iter().zip(&sequential) {
            let results = job.results.as_ref().unwrap();
            assert_eq!(results.len(), expected.len());
            for (r, e) in results.iter().zip(expected) {
                assert_eq!(
                    bits_of(r),
                    bits_of(e),
                    "{workers}-worker service results must be bit-identical to \
                     a fresh sequential Analyzer"
                );
            }
        }
    }
}

#[test]
fn query_all_is_bit_identical_to_individual_queries() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    let measures = vec![
        Measure::Unreliability(1.0),
        Measure::curve(DEFAULT_MISSION_TIMES),
        // Duplicate times across measures: the merged pass deduplicates them
        // but must hand every measure its own full answer.
        Measure::curve([1.0, 1.0, 2.5]),
    ];
    let batch = analyzer.query_all(&measures).unwrap();
    assert_eq!(batch.len(), measures.len());
    for (measure, result) in measures.iter().zip(&batch) {
        let single = analyzer.query(measure).unwrap();
        assert_eq!(bits_of(result), bits_of(&single));
    }
    assert_eq!(batch[2].points().len(), 3);
    assert_eq!(
        batch[2].points()[0].value().to_bits(),
        batch[2].points()[1].value().to_bits()
    );

    // Mixed scalar measures ride along in the same batch on a suitable model.
    let mut b = DftBuilder::new();
    let x = b
        .repairable_basic_event("qa_X", 1.0, Dormancy::Hot, 9.0)
        .unwrap();
    let top = b.or_gate("qa_Top", &[x]).unwrap();
    let repairable = b.build(top).unwrap();
    let analyzer = Analyzer::new(&repairable, AnalysisOptions::default()).unwrap();
    let mixed = vec![
        Measure::Mttf,
        Measure::Unreliability(0.5),
        Measure::Unavailability,
    ];
    let batch = analyzer.query_all(&mixed).unwrap();
    for (measure, result) in mixed.iter().zip(&batch) {
        let single = analyzer.query(measure).unwrap();
        assert_eq!(bits_of(result), bits_of(&single));
    }
}

#[test]
fn empty_curves_are_typed_errors_everywhere() {
    let analyzer = Analyzer::new(&cas(), AnalysisOptions::default()).unwrap();
    assert!(matches!(
        analyzer.query(Measure::UnreliabilityCurve(Vec::new())),
        Err(Error::EmptyCurve)
    ));
    assert!(matches!(
        analyzer.query_all(&[Measure::Mttf, Measure::UnreliabilityCurve(Vec::new())]),
        Err(Error::EmptyCurve)
    ));

    // Through the service the error lands in the job report, not in a panic.
    let service = AnalysisService::new(ServiceOptions::default());
    let report = service.run_batch(&[AnalysisJob::new(
        cas(),
        AnalysisOptions::default(),
        vec![Measure::UnreliabilityCurve(Vec::new())],
    )]);
    assert!(matches!(report.jobs[0].results, Err(Error::EmptyCurve)));
}

/// Cache-aware scheduling: jobs are grouped by fingerprint before dispatch, so
/// even with several workers racing over a batch full of duplicate trees no
/// job ever *blocks* on a concurrent builder of the same model — each distinct
/// model is claimed (built once, then queried) by exactly one worker.
#[test]
fn grouped_dispatch_eliminates_build_waits() {
    let service = AnalysisService::new(ServiceOptions {
        workers: 4,
        cache_capacity: 16,
        ..ServiceOptions::default()
    });
    // 12 jobs over 3 distinct structures, duplicates adjacent in submission
    // order — the worst case for naive in-order dispatch, where several
    // workers would claim copies of the same tree simultaneously.
    let jobs: Vec<AnalysisJob> = (0..12)
        .map(|i| {
            AnalysisJob::new(
                cas_scaled(1.0 + 0.1 * (i / 4) as f64),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            )
        })
        .collect();
    let report = service.run_batch(&jobs);
    assert_eq!(report.stats.jobs, 12);
    assert_eq!(report.stats.cache_misses, 3);
    assert_eq!(report.stats.cache_hits, 9);
    assert_eq!(report.stats.aggregation_runs, 3);
    assert_eq!(
        report.stats.build_waits, 0,
        "grouped dispatch must not leave workers blocking on concurrent builds"
    );
    assert!(report.jobs.iter().all(|j| !j.build_wait));
    // Reports stay in submission order: the i-th report carries the i-th
    // job's fingerprint.
    for (job, report) in jobs.iter().zip(&report.jobs) {
        assert_eq!(job.dft.fingerprint(), report.fingerprint);
    }
}

/// The async submission API under real concurrency: ≥ 4 submitting threads
/// fire interleaved jobs over a small set of distinct structures against one
/// shared long-lived service.  Every distinct structure aggregates exactly
/// once, no job ever blocks on a concurrent build (`build_waits == 0` — the
/// queue parks duplicates instead), and every job's results are bit-identical
/// to a fresh sequential [`Analyzer`].
#[test]
fn concurrent_submitters_share_cached_models() {
    let service = Arc::new(AnalysisService::new(ServiceOptions {
        workers: 4,
        cache_capacity: 32,
        ..ServiceOptions::default()
    }));
    let scales = [1.0, 1.15, 1.3];
    let submitters = 4;
    let jobs_each = 6;

    let reference: Vec<Vec<MeasureResult>> = scales
        .iter()
        .map(|&scale| {
            Analyzer::new(&cas_scaled(scale), AnalysisOptions::default())
                .unwrap()
                .query_all(&[Measure::Unreliability(1.0)])
                .unwrap()
        })
        .collect();

    let reports: Vec<Vec<JobReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|s| {
                let shared = Arc::clone(&service);
                scope.spawn(move || {
                    // Submit the whole personal queue first (this is the
                    // "return immediately" contract), then await it.
                    let submitted: Vec<JobHandle> = (0..jobs_each)
                        .map(|j| {
                            shared.submit(AnalysisJob::new(
                                cas_scaled(scales[(s + j) % scales.len()]),
                                AnalysisOptions::default(),
                                vec![Measure::Unreliability(1.0)],
                            ))
                        })
                        .collect();
                    submitted
                        .into_iter()
                        .map(JobHandle::wait)
                        .collect::<Vec<JobReport>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let all: Vec<&JobReport> = reports.iter().flatten().collect();
    assert_eq!(all.len(), submitters * jobs_each);
    let aggregations: usize = all.iter().map(|r| r.aggregation_runs).sum();
    assert_eq!(
        aggregations,
        scales.len(),
        "each distinct structure must aggregate exactly once across all submitters"
    );
    assert!(
        all.iter().all(|r| !r.build_wait),
        "no submitted job may block on a concurrent builder"
    );
    for (s, report) in reports.iter().enumerate() {
        for (j, job) in report.iter().enumerate() {
            let expected = &reference[(s + j) % scales.len()];
            let results = job.results.as_ref().unwrap();
            assert_eq!(bits_of(&results[0]), bits_of(&expected[0]));
        }
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, scales.len());
    assert_eq!(stats.hits, submitters * jobs_each - scales.len());
}

/// Regression test for the worker idle loop: the old per-batch pool papered
/// over a lost-wakeup race with a 1 ms `wait_timeout` busy-poll.  The
/// persistent queue parks followers of a slow leader and wakes idle workers
/// through a timeout-free condvar protocol — so a 4-worker batch dominated by
/// one slow leader with many released followers must complete with every
/// parked job released exactly once and zero blocked builds.  (Under the old
/// busy-poll a lost wakeup was invisible; under a broken condvar protocol this
/// test hangs instead of spinning.)
#[test]
fn slow_leader_batch_completes_without_timed_out_waits() {
    let service = AnalysisService::new(ServiceOptions {
        workers: 4,
        cache_capacity: 32,
        ..ServiceOptions::default()
    });
    // One expensive structure (the full CAS — a multi-millisecond aggregation)
    // duplicated many times, plus cheap distinct trees to keep the other
    // workers busy while the leader builds.
    let copies = 8;
    let mut jobs: Vec<AnalysisJob> = (0..copies)
        .map(|_| {
            AnalysisJob::new(
                cas(),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            )
        })
        .collect();
    for i in 0..4 {
        jobs.push(AnalysisJob::new(
            variant(&format!("cheap{i}"), 1.0 + i as f64),
            AnalysisOptions::default(),
            vec![Measure::Unreliability(1.0)],
        ));
    }

    let report = service.run_batch(&jobs);
    assert_eq!(report.stats.jobs, copies + 4);
    assert_eq!(report.stats.aggregation_runs, 5, "CAS once, 4 cheap trees");
    assert_eq!(report.stats.cache_misses, 5);
    assert_eq!(report.stats.cache_hits, copies - 1);
    assert_eq!(
        report.stats.build_waits, 0,
        "followers of the slow leader must park, never block on its build"
    );
    assert!(report.jobs.iter().all(|j| !j.build_wait));
    for job in &report.jobs {
        assert!(job.results.is_ok());
    }
    let queue = service.queue_stats();
    assert_eq!(
        queue.released, queue.parked,
        "every parked follower is released exactly once"
    );
    assert_eq!(queue.submitted, (copies + 4) as u64);
}

/// The service-level rate sweep: one parametric aggregation feeds a whole
/// fleet of rate variants, duplicate valuations are cache hits, and every
/// point matches a direct per-variant [`Analyzer`] build.
#[test]
fn service_sweeps_share_one_parametric_model() {
    use dftmc::dft_core::engine::ParametricAnalyzer;
    use dftmc::dft_core::service::SweepJob;

    let options = AnalysisOptions {
        epsilon: 1e-13,
        ..AnalysisOptions::default()
    };
    let service = AnalysisService::new(ServiceOptions {
        workers: 2,
        cache_capacity: 64,
        ..ServiceOptions::default()
    });

    let parametric = ParametricAnalyzer::new(&cas(), options.clone()).unwrap();
    let scales = [1.0, 1.2, 1.4, 1.2]; // one duplicate valuation
    let valuations: Vec<_> = scales
        .iter()
        .map(|&s| parametric.params().scaled_valuation(s))
        .collect();
    let measures = vec![Measure::Unreliability(1.0), Measure::curve([0.5, 1.5])];
    let job = SweepJob::new(cas(), options.clone(), measures.clone(), valuations);

    let report = service.run_sweep(&job);
    assert_eq!(report.stats.valuations, 4);
    assert_eq!(
        report.stats.aggregation_runs, 1,
        "the whole sweep pays one aggregation"
    );
    assert!(!report.stats.parametric_cache_hit);
    assert_eq!(report.stats.cache_misses, 3, "three distinct valuations");
    assert_eq!(
        report.stats.cache_hits, 1,
        "the duplicate valuation is a hit"
    );

    for (i, &scale) in scales.iter().enumerate() {
        let point = &report.points[i];
        let results = point.results.as_ref().unwrap();
        assert_eq!(results.len(), 2);
        let direct = Analyzer::new(&cas_scaled(scale), options.clone()).unwrap();
        let reference = direct.query_all(&measures).unwrap();
        for (ours, exact) in results.iter().zip(&reference) {
            for (a, b) in ours.points().iter().zip(exact.points()) {
                assert!(
                    (a.value() - b.value()).abs() <= 1e-12,
                    "scale {scale}: {} vs {}",
                    a.value(),
                    b.value()
                );
            }
        }
    }

    // A second sweep over the same structure — even with *different* rates in
    // the submitted tree — reuses the cached parametric model outright.
    let report2 = service.run_sweep(&SweepJob::new(
        cas_scaled(3.0),
        options,
        vec![Measure::Unreliability(1.0)],
        vec![parametric.params().scaled_valuation(1.4)],
    ));
    assert!(report2.stats.parametric_cache_hit);
    assert_eq!(report2.stats.aggregation_runs, 0);
    assert_eq!(report2.stats.cache_hits, 1, "valuation session reused too");
    let stats = service.cache_stats();
    assert_eq!(stats.parametric_entries, 1);
    assert_eq!(stats.parametric_misses, 1);
    assert_eq!(stats.parametric_hits, 1);
}

/// A monolithic sweep fails with a typed error per point (the baseline has no
/// parametric form) — and must cache that error under its *own* key: a later
/// compositional sweep of the same structure and epsilon still succeeds.
#[test]
fn monolithic_sweeps_do_not_poison_the_parametric_cache() {
    use dftmc::dft_core::service::SweepJob;
    use dftmc::dft_core::{Method, Valuation};

    let service = AnalysisService::new(ServiceOptions {
        workers: 1,
        cache_capacity: 8,
        ..ServiceOptions::default()
    });
    let mut b = DftBuilder::new();
    let x = b.basic_event("poison_X", 1.0, Dormancy::Hot).unwrap();
    let top = b.or_gate("poison_Top", &[x]).unwrap();
    let dft = b.build(top).unwrap();
    let valuation = Valuation::new(vec![2.0]);

    let monolithic = service.run_sweep(&SweepJob::new(
        dft.clone(),
        AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
        vec![Measure::Unreliability(1.0)],
        vec![valuation.clone()],
    ));
    assert!(matches!(
        monolithic.points[0].results,
        Err(Error::Unsupported { .. })
    ));
    assert_eq!(monolithic.stats.aggregation_runs, 0);

    // Same structure, same epsilon, compositional method: must build fine.
    let compositional = service.run_sweep(&SweepJob::new(
        dft,
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
        vec![valuation],
    ));
    let results = compositional.points[0].results.as_ref().unwrap();
    let exact = 1.0 - (-2.0f64).exp();
    assert!((results[0].value() - exact).abs() < 1e-6);
    assert!(!compositional.stats.parametric_cache_hit);
    assert_eq!(compositional.stats.aggregation_runs, 1);
}
