//! End-to-end test through the Galileo textual format: parse the cardiac assist
//! system exactly as a Galileo user would write it, analyse it, and compare with
//! the programmatically built model — mirroring the paper's tool chain, which
//! "takes as input a DFT specified in the Galileo DFT format".

use dftmc::dft::galileo::{parse, to_galileo};
use dftmc::dft::Dft;
use dftmc::dft_core::analysis::AnalysisOptions;
use dftmc::dft_core::casestudies::{cas, CAS_PAPER_UNRELIABILITY};
use dftmc::dft_core::Analyzer;

fn unrel(dft: &Dft, t: f64) -> f64 {
    Analyzer::new(dft, AnalysisOptions::default())
        .unwrap()
        .unreliability(t)
        .unwrap()
        .value()
}

const CAS_GALILEO: &str = r#"
    toplevel "System";
    "System"     or "CPU_unit" "Motor_unit" "Pump_unit";

    // CPU unit: warm spare CPU, both CPUs depend on the trigger.
    "CPU_unit"   wsp "P" "B";
    "Trigger"    or "CS" "SS";
    "CPU_FDEP"   fdep "Trigger" "P" "B";
    "CS" lambda=0.2;
    "SS" lambda=0.2;
    "P"  lambda=0.5;
    "B"  lambda=0.5 dorm=0.5;

    // Motor unit: cold spare motor, switch only matters if it fails first.
    "Motor_unit" or "MP" "Motors";
    "MP"         pand "MS" "MA";
    "Motors"     csp "MA" "MB";
    "MS" lambda=0.01;
    "MA" lambda=1.0;
    "MB" lambda=1.0 dorm=0.0;

    // Pump unit: two primary pumps sharing one cold spare.
    "Pump_unit"  and "Pump_A" "Pump_B";
    "Pump_A"     csp "PA" "PS";
    "Pump_B"     csp "PB" "PS";
    "PA" lambda=1.0;
    "PB" lambda=1.0;
    "PS" lambda=1.0 dorm=0.0;
"#;

#[test]
fn galileo_cas_matches_the_paper_value() {
    let dft = parse(CAS_GALILEO).expect("the CAS parses");
    assert_eq!(dft.num_basic_events(), 10);
    let p = unrel(&dft, 1.0);
    assert!(
        (p - CAS_PAPER_UNRELIABILITY).abs() < 5e-4,
        "parsed CAS gives {p}"
    );
}

#[test]
fn galileo_cas_matches_the_builder_cas() {
    let parsed = parse(CAS_GALILEO).expect("the CAS parses");
    let built = cas();
    for t in [0.5, 1.0, 2.0] {
        let a = unrel(&parsed, t);
        let b = unrel(&built, t);
        assert!((a - b).abs() < 1e-9, "t={t}: parsed {a} vs built {b}");
    }
}

#[test]
fn printing_and_reparsing_preserves_the_measure() {
    let original = parse(CAS_GALILEO).expect("the CAS parses");
    let printed = to_galileo(&original);
    let reparsed = parse(&printed).expect("printed output parses");
    let a = unrel(&original, 1.0);
    let b = unrel(&reparsed, 1.0);
    assert!((a - b).abs() < 1e-9);
}
