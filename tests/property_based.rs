//! Property-based tests: random fault trees and random mission times, checked for
//! internal consistency.
//!
//! The key oracle is the agreement between the two completely independent
//! analysis paths — the compositional I/O-IMC pipeline and the DIFTree-style
//! monolithic chain — plus closed-form values for structures where one exists.
//!
//! The random cases are drawn from a seeded [`SplitMix64`] stream (the container
//! carries no external crates, so instead of proptest this file rolls its own
//! minimal generator); every run therefore replays the exact same cases, and a
//! failing case is reproduced by its printed seed.

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft::{DftBuilder, Dormancy, ElementId};
use dftmc::dft_core::analysis::{unreliability, AnalysisOptions, Method};

mod common;
use common::{build_module, build_static_tree, random_recipe, Gen};

/// The compositional and monolithic analyses must agree on arbitrary static
/// fault trees.
#[test]
fn compositional_matches_monolithic_on_static_trees() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0x5747_1c00 + case);
        let recipe = random_recipe(&mut gen);
        let t = gen.f64_in(0.1, 2.0);
        let dft = build_static_tree(&recipe, &format!("pba{case}"));
        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(!comp.is_nondeterministic(), "case {case}");
        assert!(
            (comp.probability() - mono.probability()).abs() < 1e-6,
            "case {case}: compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
        assert!(
            comp.probability() >= -1e-12 && comp.probability() <= 1.0 + 1e-12,
            "case {case}"
        );
    }
}

/// Unreliability is monotone in the mission time.
#[test]
fn unreliability_is_monotone_in_time() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0x0a0b_0100 + case);
        let recipe = random_recipe(&mut gen);
        let t1 = gen.f64_in(0.1, 1.0);
        let delta = gen.f64_in(0.1, 1.0);
        let dft = build_static_tree(&recipe, &format!("pbm{case}"));
        let options = AnalysisOptions::default();
        let early = unreliability(&dft, t1, &options).unwrap().probability();
        let late = unreliability(&dft, t1 + delta, &options)
            .unwrap()
            .probability();
        assert!(
            late >= early - 1e-9,
            "case {case}: unreliability decreased: {early} -> {late}"
        );
    }
}

/// An OR of hot exponential events is itself exponential with the summed rate.
#[test]
fn or_of_exponentials_is_exponential() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0x0e0f_0200 + case);
        let rates: Vec<f64> = (0..gen.usize_in(1, 5))
            .map(|_| gen.f64_in(0.05, 2.0))
            .collect();
        let t = gen.f64_in(0.1, 3.0);
        let mut b = DftBuilder::new();
        let events: Vec<ElementId> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                b.basic_event(&format!("or{case}_e{i}"), r, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.or_gate(&format!("or{case}_top"), &events).unwrap();
        let dft = b.build(top).unwrap();
        let total: f64 = rates.iter().sum();
        let exact = 1.0 - (-total * t).exp();
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        assert!(
            (computed - exact).abs() < 1e-6,
            "case {case}: {computed} vs {exact}"
        );
    }
}

/// An AND of hot exponential events has the product of the component
/// unreliabilities.
#[test]
fn and_of_exponentials_is_a_product() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0x0c0d_0300 + case);
        let rates: Vec<f64> = (0..gen.usize_in(1, 5))
            .map(|_| gen.f64_in(0.05, 2.0))
            .collect();
        let t = gen.f64_in(0.1, 3.0);
        let mut b = DftBuilder::new();
        let events: Vec<ElementId> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                b.basic_event(&format!("and{case}_e{i}"), r, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.and_gate(&format!("and{case}_top"), &events).unwrap();
        let dft = b.build(top).unwrap();
        let exact: f64 = rates.iter().map(|&r| 1.0 - (-r * t).exp()).product();
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        assert!(
            (computed - exact).abs() < 1e-6,
            "case {case}: {computed} vs {exact}"
        );
    }
}

/// A chain of cold spares over identical rates has an Erlang failure time.
#[test]
fn cold_spare_chain_is_erlang() {
    for case in 0..24u64 {
        let mut gen = Gen::new(0xe71a_0400 + case);
        let stages = gen.usize_in(2, 5);
        let rate = gen.f64_in(0.2, 2.0);
        let t = gen.f64_in(0.1, 2.0);
        let mut b = DftBuilder::new();
        let mut inputs = vec![b
            .basic_event(&format!("erl{case}_primary"), rate, Dormancy::Hot)
            .unwrap()];
        for i in 1..stages {
            inputs.push(
                b.basic_event(&format!("erl{case}_s{i}"), rate, Dormancy::Cold)
                    .unwrap(),
            );
        }
        let top = b.spare_gate(&format!("erl{case}_top"), &inputs).unwrap();
        let dft = b.build(top).unwrap();
        // Erlang(stages, rate) CDF.
        let mut term = 1.0;
        let mut sum = 0.0;
        for k in 0..stages {
            if k > 0 {
                term *= rate * t / k as f64;
            }
            sum += term;
        }
        let exact = 1.0 - (-rate * t).exp() * sum;
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        assert!(
            (computed - exact).abs() < 1e-6,
            "case {case}: {computed} vs {exact}"
        );
    }
}

/// Random *dynamic* trees: a PAND over two random static sub-trees.  The two
/// analysis paths must still agree (no closed form exists here).
#[test]
fn compositional_matches_monolithic_on_pand_over_modules() {
    for case in 0..12u64 {
        let mut gen = Gen::new(0x9a7d_0500 + case);
        let left = random_recipe(&mut gen);
        let right = random_recipe(&mut gen);
        let t = gen.f64_in(0.2, 1.5);
        let mut b = DftBuilder::new();
        let l = build_module(&mut b, &left, &format!("pl{case}"));
        let r = build_module(&mut b, &right, &format!("pr{case}"));
        let top = b.pand_gate(&format!("pb{case}_pand_top"), &[l, r]).unwrap();
        let dft = b.build(top).unwrap();

        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(
            (comp.probability() - mono.probability()).abs() < 1e-6,
            "case {case}: compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
    }
}
