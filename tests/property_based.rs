//! Property-based tests: random fault trees and random mission times, checked for
//! internal consistency.
//!
//! The key oracle is the agreement between the two completely independent
//! analysis paths — the compositional I/O-IMC pipeline and the DIFTree-style
//! monolithic chain — plus closed-form values for structures where one exists.

use dftmc::dft::{DftBuilder, Dormancy, ElementId};
use dftmc::dft_core::analysis::{unreliability, AnalysisOptions, Method};
use proptest::prelude::*;

/// A random static fault tree over `n` basic events described by a compact recipe:
/// every gate consumes a slice of previously created elements.
#[derive(Debug, Clone)]
struct StaticTreeRecipe {
    rates: Vec<f64>,
    /// For each gate: (kind selector, how many of the most recent roots it takes).
    gates: Vec<(u8, u8)>,
}

fn static_tree_strategy() -> impl Strategy<Value = StaticTreeRecipe> {
    let rates = prop::collection::vec(0.1f64..3.0, 2..6);
    let gates = prop::collection::vec((0u8..3, 2u8..4), 1..4);
    (rates, gates).prop_map(|(rates, gates)| StaticTreeRecipe { rates, gates })
}

/// Materialises a recipe into a DFT.  Gates take their inputs from the front of a
/// rolling list of "roots" (elements without a parent yet) so that the result is a
/// tree; a final OR collects any leftovers.
fn build_static_tree(recipe: &StaticTreeRecipe) -> dftmc::dft::Dft {
    let mut b = DftBuilder::new();
    let mut roots: Vec<ElementId> = recipe
        .rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| b.basic_event(&format!("pb_e{i}"), rate, Dormancy::Hot).unwrap())
        .collect();
    for (gi, &(kind, take)) in recipe.gates.iter().enumerate() {
        let take = (take as usize).min(roots.len()).max(1);
        let inputs: Vec<ElementId> = roots.drain(..take).collect();
        let name = format!("pb_g{gi}");
        let gate = match kind % 3 {
            0 => b.and_gate(&name, &inputs).unwrap(),
            1 => b.or_gate(&name, &inputs).unwrap(),
            _ => {
                let k = ((inputs.len() + 1) / 2) as u32;
                b.voting_gate(&name, k, &inputs).unwrap()
            }
        };
        roots.push(gate);
    }
    let top = if roots.len() == 1 {
        roots[0]
    } else {
        b.or_gate("pb_top", &roots).unwrap()
    };
    b.build(top).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The compositional and monolithic analyses must agree on arbitrary static
    /// fault trees.
    #[test]
    fn compositional_matches_monolithic_on_static_trees(
        recipe in static_tree_strategy(),
        t in 0.1f64..2.0,
    ) {
        let dft = build_static_tree(&recipe);
        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() },
        )
        .unwrap();
        prop_assert!(!comp.is_nondeterministic());
        prop_assert!(
            (comp.probability() - mono.probability()).abs() < 1e-6,
            "compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
        prop_assert!(comp.probability() >= -1e-12 && comp.probability() <= 1.0 + 1e-12);
    }

    /// Unreliability is monotone in the mission time.
    #[test]
    fn unreliability_is_monotone_in_time(
        recipe in static_tree_strategy(),
        t1 in 0.1f64..1.0,
        delta in 0.1f64..1.0,
    ) {
        let dft = build_static_tree(&recipe);
        let options = AnalysisOptions::default();
        let early = unreliability(&dft, t1, &options).unwrap().probability();
        let late = unreliability(&dft, t1 + delta, &options).unwrap().probability();
        prop_assert!(late >= early - 1e-9, "unreliability decreased: {early} -> {late}");
    }

    /// An OR of hot exponential events is itself exponential with the summed rate.
    #[test]
    fn or_of_exponentials_is_exponential(
        rates in prop::collection::vec(0.05f64..2.0, 1..5),
        t in 0.1f64..3.0,
    ) {
        let mut b = DftBuilder::new();
        let events: Vec<ElementId> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| b.basic_event(&format!("or_e{i}"), r, Dormancy::Hot).unwrap())
            .collect();
        let top = b.or_gate("or_top", &events).unwrap();
        let dft = b.build(top).unwrap();
        let total: f64 = rates.iter().sum();
        let exact = 1.0 - (-total * t).exp();
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        prop_assert!((computed - exact).abs() < 1e-6, "{computed} vs {exact}");
    }

    /// An AND of hot exponential events has the product of the component
    /// unreliabilities.
    #[test]
    fn and_of_exponentials_is_a_product(
        rates in prop::collection::vec(0.05f64..2.0, 1..5),
        t in 0.1f64..3.0,
    ) {
        let mut b = DftBuilder::new();
        let events: Vec<ElementId> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| b.basic_event(&format!("and_e{i}"), r, Dormancy::Hot).unwrap())
            .collect();
        let top = b.and_gate("and_top", &events).unwrap();
        let dft = b.build(top).unwrap();
        let exact: f64 = rates.iter().map(|&r| 1.0 - (-r * t).exp()).product();
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        prop_assert!((computed - exact).abs() < 1e-6, "{computed} vs {exact}");
    }

    /// A chain of cold spares over identical rates has an Erlang failure time.
    #[test]
    fn cold_spare_chain_is_erlang(
        stages in 2usize..5,
        rate in 0.2f64..2.0,
        t in 0.1f64..2.0,
    ) {
        let mut b = DftBuilder::new();
        let mut inputs = vec![b.basic_event("erl_primary", rate, Dormancy::Hot).unwrap()];
        for i in 1..stages {
            inputs.push(b.basic_event(&format!("erl_s{i}"), rate, Dormancy::Cold).unwrap());
        }
        let top = b.spare_gate("erl_top", &inputs).unwrap();
        let dft = b.build(top).unwrap();
        // Erlang(stages, rate) CDF.
        let mut term = 1.0;
        let mut sum = 0.0;
        for k in 0..stages {
            if k > 0 {
                term *= rate * t / k as f64;
            }
            sum += term;
        }
        let exact = 1.0 - (-rate * t).exp() * sum;
        let computed = unreliability(&dft, t, &AnalysisOptions::default())
            .unwrap()
            .probability();
        prop_assert!((computed - exact).abs() < 1e-6, "{computed} vs {exact}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random *dynamic* trees: a PAND over two random static sub-trees.  The two
    /// analysis paths must still agree (no closed form exists here).
    #[test]
    fn compositional_matches_monolithic_on_pand_over_modules(
        left in static_tree_strategy(),
        right in static_tree_strategy(),
        t in 0.2f64..1.5,
    ) {
        let mut b = DftBuilder::new();
        let build_module = |b: &mut DftBuilder, recipe: &StaticTreeRecipe, prefix: &str| {
            let mut roots: Vec<ElementId> = recipe
                .rates
                .iter()
                .enumerate()
                .map(|(i, &rate)| {
                    b.basic_event(&format!("{prefix}_e{i}"), rate, Dormancy::Hot).unwrap()
                })
                .collect();
            for (gi, &(kind, take)) in recipe.gates.iter().enumerate() {
                let take = (take as usize).min(roots.len()).max(1);
                let inputs: Vec<ElementId> = roots.drain(..take).collect();
                let name = format!("{prefix}_g{gi}");
                let gate = match kind % 3 {
                    0 => b.and_gate(&name, &inputs).unwrap(),
                    1 => b.or_gate(&name, &inputs).unwrap(),
                    _ => {
                        let k = ((inputs.len() + 1) / 2) as u32;
                        b.voting_gate(&name, k, &inputs).unwrap()
                    }
                };
                roots.push(gate);
            }
            if roots.len() == 1 {
                roots[0]
            } else {
                b.or_gate(&format!("{prefix}_collect"), &roots).unwrap()
            }
        };
        let l = build_module(&mut b, &left, "pl");
        let r = build_module(&mut b, &right, "pr");
        let top = b.pand_gate("pb_pand_top", &[l, r]).unwrap();
        let dft = b.build(top).unwrap();

        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() },
        )
        .unwrap();
        prop_assert!(
            (comp.probability() - mono.probability()).abs() < 1e-6,
            "compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
    }
}
