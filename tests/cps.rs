//! Experiments E3 and E4 — the cascaded PAND system (Section 5.2, Figures 8/9).
//!
//! The paper reports: unreliability 0.00135 at mission time 1; peak intermediate
//! model of 156 states / 490 transitions for compositional aggregation; 4113
//! states / 24608 transitions for the monolithic DIFTree chain; and a tiny
//! aggregated I/O-IMC for a single AND module (Figure 9).

// These tests deliberately pin the deprecated one-shot wrappers' behaviour
// against the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{aggregated_model, unreliability, AnalysisOptions, Method};
use dftmc::dft_core::baseline::monolithic_ctmc;
use dftmc::dft_core::casestudies::{
    cascaded_pand, cps, CPS_PAPER_MONOLITHIC, CPS_PAPER_PEAK, CPS_PAPER_UNRELIABILITY,
};

#[test]
fn cps_unreliability_matches_the_paper() {
    let dft = cps();
    let comp = unreliability(&dft, 1.0, &AnalysisOptions::default()).expect("analysis succeeds");
    assert!(
        (comp.probability() - CPS_PAPER_UNRELIABILITY).abs() < 5e-5,
        "compositional {} vs paper {CPS_PAPER_UNRELIABILITY}",
        comp.probability()
    );
    assert!(!comp.is_nondeterministic());

    let mono = unreliability(
        &dft,
        1.0,
        &AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
    )
    .expect("baseline succeeds");
    assert!((mono.probability() - comp.probability()).abs() < 1e-7);
}

#[test]
fn cps_monolithic_chain_matches_the_papers_size_exactly() {
    let mono = monolithic_ctmc(&cps()).expect("baseline builds");
    assert_eq!(mono.num_states(), CPS_PAPER_MONOLITHIC.0);
    assert_eq!(mono.num_transitions(), CPS_PAPER_MONOLITHIC.1);
}

#[test]
fn cps_compositional_peak_is_two_orders_of_magnitude_smaller() {
    let comp = unreliability(&cps(), 1.0, &AnalysisOptions::default()).expect("analysis succeeds");
    let stats = comp.aggregation_stats().expect("compositional run");
    // The paper's peak is 156 states / 490 transitions; composition order details
    // shift the exact numbers, but the peak must stay in the same ballpark and far
    // below the monolithic 4113 / 24608.
    assert!(
        stats.peak.states <= 2 * CPS_PAPER_PEAK.0,
        "peak {} states, paper reports {}",
        stats.peak.states,
        CPS_PAPER_PEAK.0
    );
    assert!(stats.peak.transitions() <= 2 * CPS_PAPER_PEAK.1);
    assert!(stats.peak.states * 10 < CPS_PAPER_MONOLITHIC.0);
}

#[test]
fn module_a_aggregates_small() {
    // Figure 9: a single AND module of four identical basic events, viewed as an
    // independent module, aggregates to a minimal I/O-IMC: the order in which the
    // four events fail is irrelevant, so only the count survives aggregation.
    let mut b = DftBuilder::new();
    let events: Vec<_> = (0..4)
        .map(|i| {
            b.basic_event(&format!("modA_{i}"), 1.0, Dormancy::Hot)
                .unwrap()
        })
        .collect();
    let top = b.and_gate("modA", &events).unwrap();
    let module = b.build(top).unwrap();
    let (aggregated, _) = aggregated_model(&module).expect("aggregation succeeds");
    // Four Markovian steps (4λ, 3λ, 2λ, λ), a firing state and the fired state —
    // at most 6 states.
    assert!(
        aggregated.num_states() <= 6,
        "module A should aggregate to at most 6 states, got {}",
        aggregated.num_states()
    );
    let initial_rate: f64 = aggregated
        .markovian_from(aggregated.initial())
        .iter()
        .map(|t| t.rate)
        .sum();
    assert!(
        (initial_rate - 4.0).abs() < 1e-9,
        "lumped first step should have rate 4"
    );
}

#[test]
fn smaller_cascaded_pand_instances_agree_across_methods() {
    for width in [1, 2, 3] {
        let dft = cascaded_pand(width, 1.0);
        let t = 1.0;
        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(
            (comp.probability() - mono.probability()).abs() < 1e-7,
            "width {width}: compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
    }
}

#[test]
fn cps_unreliability_grows_with_mission_time_and_with_failure_rate() {
    let options = AnalysisOptions::default();
    let base = unreliability(&cps(), 1.0, &options).unwrap().probability();
    let longer = unreliability(&cps(), 2.0, &options).unwrap().probability();
    assert!(longer > base);
    let faster = unreliability(&cascaded_pand(4, 2.0), 1.0, &options)
        .unwrap()
        .probability();
    assert!(faster > base);
}
