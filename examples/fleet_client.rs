//! Fleet mode over the wire: an in-process [`Server`] plus the crate's own
//! blocking [`client`], exercising the whole HTTP surface — submit, poll,
//! sweep, metrics — and asserting the values that come back over the socket
//! are bit-identical to an in-process [`Analyzer`].
//!
//! In production you run the standalone binary instead —
//! `dftmc-serve --addr 127.0.0.1:7171 --store /var/cache/dftmc` — and point
//! every process of the fleet at the same store directory; the protocol below
//! is exactly the same.
//!
//! Run with `cargo run --release --example fleet_client`.

use dftmc::dft_core::casestudies::cas;
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::AnalysisOptions;
use dftmc_serve::client;
use dftmc_serve::json::Json;
use dftmc_serve::server::{Server, ServerOptions};
use std::net::SocketAddr;
use std::time::Duration;

fn field(doc: &Json, key: &str) -> Json {
    match doc {
        Json::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or(Json::Null),
        _ => Json::Null,
    }
}

fn num(doc: &Json, key: &str) -> f64 {
    match field(doc, key) {
        Json::Num(n) => n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// Polls `GET /result/{id}` until the job leaves the queue.
fn wait_result(addr: SocketAddr, id: u64) -> Json {
    loop {
        let (status, doc) = client::request(addr, "GET", &format!("/result/{id}"), "").unwrap();
        match status {
            200 => return doc,
            202 => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("result fetch failed ({other}): {}", doc.render()),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral in-process server; add `.service.store(dir)` to the
    // options (or `--store` on the binary) and N of these share one warm
    // model store.
    let server = Server::start(ServerOptions::default())?;
    let addr = server.local_addr();
    println!("fleet node listening on {addr}");

    // ── POST /submit: a Galileo tree + measures, answered asynchronously. ──
    let tree = dftmc::dft::galileo::to_galileo(&cas());
    let body = Json::obj([
        ("galileo", Json::Str(tree.clone())),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
    ])
    .render();
    let (status, doc) = client::request(addr, "POST", "/submit", &body)?;
    assert_eq!(status, 202);
    let id = num(&doc, "id") as u64;
    println!("submitted job {id}");

    let report = wait_result(addr, id);
    let results = field(&report, "results");
    let Json::Arr(results) = results else {
        panic!("no results")
    };
    let Json::Arr(points) = field(&results[0], "points") else {
        panic!("no points")
    };
    let over_http = num(&points[0], "value");

    // The wire costs zero bits: shortest-round-trip f64 formatting on the
    // way out, exact parsing on the way back in.
    let in_process = Analyzer::new(&cas(), AnalysisOptions::default())?
        .unreliability(1.0)?
        .value();
    assert_eq!(over_http.to_bits(), in_process.to_bits());
    println!("unreliability(1.0) = {over_http} — bit-identical to the in-process Analyzer");

    // ── POST /sweep: a symbolic spec, resolved inside the service. ─────────
    let body = Json::obj([
        ("galileo", Json::Str(tree)),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
        (
            "sweep",
            Json::obj([(
                "scales",
                Json::Arr([0.5, 1.0, 2.0].iter().map(|&s| s.into()).collect()),
            )]),
        ),
    ])
    .render();
    let (status, doc) = client::request(addr, "POST", "/sweep", &body)?;
    assert_eq!(status, 202);
    let sweep = wait_result(addr, num(&doc, "id") as u64);
    let Json::Arr(sweep_points) = field(&sweep, "points") else {
        panic!("no sweep points")
    };
    println!(
        "sweep over 3 failure-rate scales: {} points",
        sweep_points.len()
    );

    // ── GET /metrics: the operational picture of the node. ─────────────────
    let (status, metrics) = client::request(addr, "GET", "/metrics", "")?;
    assert_eq!(status, 200);
    let jobs = field(&metrics, "jobs");
    println!(
        "metrics: {} jobs completed, {} aggregation run(s), {} HTTP requests",
        num(&jobs, "completed"),
        num(&jobs, "aggregation_runs"),
        num(&field(&metrics, "http"), "requests"),
    );

    // ── POST /shutdown: graceful drain, then join. ─────────────────────────
    let (status, _) = client::request(addr, "POST", "/shutdown", "")?;
    assert_eq!(status, 200);
    let drained = server.join();
    println!("graceful shutdown, drained {drained} in-flight job(s)");
    Ok(())
}
