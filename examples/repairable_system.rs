//! The repair extension of Section 7.2 / Figure 15 of the paper: a repairable AND
//! gate over two repairable basic events, analysed for steady-state
//! unavailability — plus the mean time to first failure, answered by the *same*
//! [`Analyzer`] session without re-running aggregation.
//!
//! Run with `cargo run --release --example repairable_system`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::AnalysisOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 15: AND over two repairable basic events.
    let mut b = DftBuilder::new();
    let a = b.repairable_basic_event("A", 1.0, Dormancy::Hot, 10.0)?;
    let bb = b.repairable_basic_event("B", 2.0, Dormancy::Hot, 10.0)?;
    let system = b.and_gate("system", &[a, bb])?;
    let dft = b.build(system)?;

    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    let unavailability = analyzer.query(Measure::Unavailability)?;
    // For independent repairable components the unavailability of the AND is the
    // product of the component unavailabilities: (1/11)·(2/12).
    let exact = (1.0 / 11.0) * (2.0 / 12.0);
    println!("repairable AND gate (Figure 15)");
    println!("  computed unavailability : {:.6}", unavailability.value());
    println!("  analytic product        : {:.6}", exact);
    println!(
        "  final aggregated model  : {} states, {} transitions",
        analyzer.model_stats().states,
        analyzer.model_stats().transitions()
    );
    // Same session, different measure: no second aggregation run.
    println!(
        "  mean time to failure    : {:.4}",
        analyzer.query(Measure::Mttf)?.value()
    );
    println!(
        "  aggregation runs        : {}",
        analyzer.aggregation_runs()
    );

    // A slightly larger repairable system: 2-out-of-3 voting over repairable
    // sensors with different repair rates.
    let mut b = DftBuilder::new();
    let s1 = b.repairable_basic_event("S1", 0.1, Dormancy::Hot, 1.0)?;
    let s2 = b.repairable_basic_event("S2", 0.1, Dormancy::Hot, 2.0)?;
    let s3 = b.repairable_basic_event("S3", 0.1, Dormancy::Hot, 4.0)?;
    let system = b.voting_gate("voter", 2, &[s1, s2, s3])?;
    let dft = b.build(system)?;
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    println!("\n2-out-of-3 voting over repairable sensors");
    println!(
        "  computed unavailability : {:.8}",
        analyzer.query(Measure::Unavailability)?.value()
    );
    println!(
        "  mean time to failure    : {:.4}",
        analyzer.query(Measure::Mttf)?.value()
    );
    Ok(())
}
