//! The repair extension of Section 7.2 / Figure 15 of the paper: a repairable AND
//! gate over two repairable basic events, analysed for steady-state
//! unavailability.
//!
//! Run with `cargo run --release --example repairable_system`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unavailability, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 15: AND over two repairable basic events.
    let mut b = DftBuilder::new();
    let a = b.repairable_basic_event("A", 1.0, Dormancy::Hot, 10.0)?;
    let bb = b.repairable_basic_event("B", 2.0, Dormancy::Hot, 10.0)?;
    let system = b.and_gate("system", &[a, bb])?;
    let dft = b.build(system)?;

    let result = unavailability(&dft, &AnalysisOptions::default())?;
    // For independent repairable components the unavailability of the AND is the
    // product of the component unavailabilities: (1/11)·(2/12).
    let exact = (1.0 / 11.0) * (2.0 / 12.0);
    println!("repairable AND gate (Figure 15)");
    println!("  computed unavailability : {:.6}", result.unavailability);
    println!("  analytic product        : {:.6}", exact);
    println!(
        "  final aggregated model  : {} states, {} transitions",
        result.final_model.states,
        result.final_model.transitions()
    );

    // A slightly larger repairable system: 2-out-of-3 voting over repairable
    // sensors with different repair rates.
    let mut b = DftBuilder::new();
    let s1 = b.repairable_basic_event("S1", 0.1, Dormancy::Hot, 1.0)?;
    let s2 = b.repairable_basic_event("S2", 0.1, Dormancy::Hot, 2.0)?;
    let s3 = b.repairable_basic_event("S3", 0.1, Dormancy::Hot, 4.0)?;
    let system = b.voting_gate("voter", 2, &[s1, s2, s3])?;
    let dft = b.build(system)?;
    let result = unavailability(&dft, &AnalysisOptions::default())?;
    println!("\n2-out-of-3 voting over repairable sensors");
    println!("  computed unavailability : {:.8}", result.unavailability);
    Ok(())
}
