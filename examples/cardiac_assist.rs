//! The cardiac assist system (CAS) of Section 5.1 of the paper.
//!
//! Reproduces the experiment of the paper: system unreliability at mission time 1
//! (the paper and the original Galileo tool both report 0.6579), and the sizes of
//! the aggregated per-module I/O-IMCs (the paper reports 6 states per module).
//! One [`Analyzer`] session serves the point query and the time sweep.
//!
//! Run with `cargo run --release --example cardiac_assist`.

use dftmc::dft_core::analysis::aggregated_model;
use dftmc::dft_core::casestudies::{cas, cas_analyzer, CAS_PAPER_UNRELIABILITY};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::{AnalysisOptions, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dft = cas();
    println!(
        "cardiac assist system: {} basic events, {} gates",
        dft.num_basic_events(),
        dft.num_gates()
    );

    // One session answers everything below; aggregation runs once, here.
    let analyzer = cas_analyzer(AnalysisOptions::default())?;
    let result = analyzer.unreliability(1.0)?;
    println!("\nunreliability at t = 1");
    println!("  compositional aggregation : {:.4}", result.value());
    let monolithic = Analyzer::new(
        &dft,
        AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
    )?
    .unreliability(1.0)?;
    println!("  monolithic baseline       : {:.4}", monolithic.value());
    println!(
        "  paper / Galileo DIFTree   : {:.4}",
        CAS_PAPER_UNRELIABILITY
    );

    let stats = analyzer.aggregation_stats().expect("compositional run");
    println!("\ncompositional aggregation statistics");
    println!("  composition steps  : {}", stats.steps.len());
    println!(
        "  peak intermediate  : {} states, {} transitions",
        stats.peak.states,
        stats.peak.transitions()
    );
    println!(
        "  final model        : {} states, {} transitions",
        stats.final_model.states,
        stats.final_model.transitions()
    );

    // The paper analyses each of the three units as an independent module and
    // reports ~6 states per aggregated module; reproduce that per-module view.
    println!("\nper-module aggregated I/O-IMC sizes");
    for (name, module) in [
        ("CPU unit", dftmc::dft_core::casestudies::cas_cpu_unit()),
        ("Motor unit", dftmc::dft_core::casestudies::cas_motor_unit()),
        ("Pump unit", dftmc::dft_core::casestudies::cas_pump_unit()),
    ] {
        let (model, _) = aggregated_model(&module)?;
        println!(
            "  {name:<11}: {} states, {} transitions",
            model.num_states(),
            model.num_transitions()
        );
    }

    // The sweep reuses the session: one curve query, no re-aggregation.
    let curve = analyzer.unreliability_curve(&[0.25, 0.5, 1.0, 2.0, 4.0])?;
    println!("\nunreliability over time");
    println!("    t   |  compositional");
    for point in curve.points() {
        println!("  {:5.2} |  {:.6}", point.time().unwrap(), point.value());
    }
    println!(
        "\naggregation ran {} time(s) for this whole example session",
        analyzer.aggregation_runs()
    );
    Ok(())
}
