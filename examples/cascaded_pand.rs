//! The cascaded PAND system (CPS) of Section 5.2 of the paper — the modularity
//! showcase.
//!
//! The CPS consists of two PAND gates over three identical AND modules of four
//! basic events each.  DIFTree cannot modularise it (the top gate is dynamic), so
//! its Markov chain covers all twelve basic events at once: the paper reports 4113
//! states and 24608 transitions.  The compositional approach analyses the modules
//! separately and peaks at 156 states / 490 transitions.  Both report the same
//! unreliability, 0.00135 at mission time 1.
//!
//! Run with `cargo run --release --example cascaded_pand`.

use dftmc::dft_core::analysis::aggregated_model;
use dftmc::dft_core::baseline::monolithic_ctmc;
use dftmc::dft_core::casestudies::{
    cps, cps_analyzer, CPS_PAPER_MONOLITHIC, CPS_PAPER_PEAK, CPS_PAPER_UNRELIABILITY,
};
use dftmc::dft_core::AnalysisOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dft = cps();
    println!(
        "cascaded PAND system: {} basic events, {} gates",
        dft.num_basic_events(),
        dft.num_gates()
    );

    // One compositional session; the monolithic chain is generated directly so
    // the example can also report its exact transition count.
    let analyzer = cps_analyzer(AnalysisOptions::default())?;
    let compositional = analyzer.unreliability(1.0)?;
    let mono = monolithic_ctmc(&dft)?;
    let monolithic = mono.unreliability(1.0, 1e-9)?;

    println!("\nunreliability at t = 1");
    println!("  compositional : {:.5}", compositional.value());
    println!("  monolithic    : {:.5}", monolithic);
    println!("  paper         : {:.5}", CPS_PAPER_UNRELIABILITY);

    let stats = analyzer.aggregation_stats().expect("compositional run");
    println!("\nstate-space comparison (this run vs the paper)");
    println!("                         states   transitions");
    println!(
        "  compositional peak    {:7}   {:11}   (paper: {} / {})",
        stats.peak.states,
        stats.peak.transitions(),
        CPS_PAPER_PEAK.0,
        CPS_PAPER_PEAK.1
    );
    println!(
        "  monolithic chain      {:7}   {:11}   (paper: {} / {})",
        mono.num_states(),
        mono.num_transitions(),
        CPS_PAPER_MONOLITHIC.0,
        CPS_PAPER_MONOLITHIC.1
    );

    // Figure 9: one AND module, analysed on its own, aggregates to a tiny I/O-IMC
    // because the order in which its identical basic events fail is irrelevant.
    let module_a = {
        use dftmc::dft::{DftBuilder, Dormancy};
        let mut b = DftBuilder::new();
        let events: Vec<_> = (0..4)
            .map(|i| {
                b.basic_event(&format!("A_{i}"), 1.0, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.and_gate("A", &events).unwrap();
        b.build(top).unwrap()
    };
    let (aggregated, _) = aggregated_model(&module_a)?;
    println!(
        "\nmodule A alone aggregates to {} states / {} transitions (Figure 9 of the paper)",
        aggregated.num_states(),
        aggregated.num_transitions()
    );
    Ok(())
}
