//! The hybrid static/dynamic backend: BDD-solve the static crown, pay state
//! space only where the dynamism lives.
//!
//! The tree below is typical of industrial DFTs: one cold-spare pair carries
//! all the dynamic behaviour, while the bulk of the model is a static
//! AND/OR/voting structure.  `Method::Hybrid` detects that split, runs the
//! compositional I/O-IMC pipeline only on the spare pair (4 states) and
//! evaluates everything else exactly on a BDD — against ~1800 states for the
//! pure state-space session, at identical unreliability.
//!
//! Run with `cargo run --release --example hybrid`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::{AnalysisOptions, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Nine static basic events in three groups, plus one cold-spare pair.
    let mut b = DftBuilder::new();
    let mut groups = Vec::new();
    for (g, kind) in ["and", "vote", "or"].iter().enumerate() {
        let events: Vec<_> = (0..3)
            .map(|i| {
                b.basic_event(
                    &format!("e{g}{i}"),
                    0.3 + 0.1 * (3 * g + i) as f64,
                    Dormancy::Hot,
                )
            })
            .collect::<Result<_, _>>()?;
        groups.push(match *kind {
            "and" => b.and_gate(&format!("g{g}"), &events)?,
            "vote" => b.voting_gate(&format!("g{g}"), 2, &events)?,
            _ => b.or_gate(&format!("g{g}"), &events)?,
        });
    }
    let p = b.basic_event("P", 1.0, Dormancy::Hot)?;
    let s = b.basic_event("S", 1.0, Dormancy::Cold)?;
    groups.push(b.spare_gate("Spare", &[p, s])?);
    let top = b.or_gate("Top", &groups)?;
    let dft = b.build(top)?;

    let times = [0.25, 0.5, 1.0, 2.0];

    // The pure state-space reference …
    let pure = Analyzer::new(&dft, AnalysisOptions::default())?;
    // … and the hybrid session on the same tree.
    let options = AnalysisOptions {
        method: Method::Hybrid,
        ..AnalysisOptions::default()
    };
    let hybrid = Analyzer::new(&dft, options)?;

    let stats = hybrid
        .module_stats()
        .expect("the spare pair under a static crown decomposes");
    println!(
        "decomposition: {} dynamic core(s) holding {} element(s), {} elements in the BDD crown",
        stats.core_count, stats.core_elements, stats.crown_elements
    );
    println!(
        "closed-model states: {} (pure state space) vs {} (hybrid cores)",
        pure.model_stats().states,
        hybrid.model_stats().states
    );

    println!("\n  t      pure           hybrid         |diff|");
    let reference = pure.unreliability_curve(&times)?;
    let reduced = hybrid.unreliability_curve(&times)?;
    for ((t, a), b) in times.iter().zip(reference.points()).zip(reduced.points()) {
        println!(
            "  {t:<5} {:.12} {:.12} {:.1e}",
            a.value(),
            b.value(),
            (a.value() - b.value()).abs()
        );
    }
    Ok(())
}
