//! Parsing the Galileo textual DFT format, the input language of the original
//! DIFTree/Galileo tool that the paper's own converter consumes.  The parsed tree
//! is analysed through one [`Analyzer`] session: ten years of unreliability and
//! the MTTF, for one aggregation run.
//!
//! Run with `cargo run --release --example galileo_file`.

use dftmc::dft::galileo::{parse, to_galileo};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::AnalysisOptions;

const RAILWAY_CROSSING: &str = r#"
    // A small railway level-crossing controller.
    toplevel "Crossing";
    "Crossing"   or "Barrier" "Lights" "Controller";
    "Barrier"    wsp "Motor" "BackupMotor";
    "Lights"     2of3 "L1" "L2" "L3";
    "Sensors"    or "S1" "S2";
    "CtrlFDEP"   fdep "Sensors" "Cpu";
    "Controller" or "Cpu";
    "Motor"       lambda=0.1;
    "BackupMotor" lambda=0.1 dorm=0.2;
    "L1" lambda=0.05;
    "L2" lambda=0.05;
    "L3" lambda=0.05;
    "S1" lambda=0.02;
    "S2" lambda=0.02;
    "Cpu" lambda=0.01;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dft = parse(RAILWAY_CROSSING)?;
    println!(
        "parsed '{}': {} basic events, {} gates",
        dft.name(dft.top()),
        dft.num_basic_events(),
        dft.num_gates()
    );

    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    println!("\nunreliability over the first ten years (one curve query)");
    let curve = analyzer.query(Measure::curve([1.0, 2.0, 5.0, 10.0]))?;
    for point in curve.points() {
        println!("  t = {:5.1}: {:.6}", point.time().unwrap(), point.value());
    }
    println!(
        "\nmean time to failure: {:.2} years",
        analyzer.query(Measure::Mttf)?.value()
    );

    println!("\nround-tripped Galileo output:\n{}", to_galileo(&dft));
    Ok(())
}
