//! The persistent model cache: keep the warm cache warm across restarts and
//! share it between a fleet of analysis servers.
//!
//! The example simulates a server restart — two [`AnalysisService`] instances
//! pointed at the same store directory, one after the other.  The first
//! "server generation" aggregates every model and writes the closed models
//! back; the second loads them from disk, runs **zero** aggregations, and
//! still answers bit-identically.  It then shows the raw round-trip API
//! ([`Analyzer::to_bytes`]/`from_bytes`) the store is built on.
//!
//! Run with `cargo run --release --example persistent_cache`.

use dftmc::dft_core::casestudies::{cas, cas_scaled, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
use dftmc::dft_core::{AnalysisOptions, Measure};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In production this is a shared directory — a persistent volume, an NFS
    // mount the fleet shares, a CI cache. Here: a scratch dir.
    let store_dir =
        std::env::temp_dir().join(format!("dftmc-example-store-{}", std::process::id()));

    let jobs = || -> Vec<AnalysisJob> {
        (0..4)
            .map(|i| {
                AnalysisJob::new(
                    cas_scaled(1.0 + 0.1 * i as f64),
                    AnalysisOptions::default(),
                    vec![Measure::curve(DEFAULT_MISSION_TIMES)],
                )
            })
            .collect()
    };

    // ── Generation 1: cold store — aggregate, answer, write back. ─────────
    let first = AnalysisService::new(ServiceOptions::default().store(&store_dir));
    let started = Instant::now();
    let cold = first.run_batch(&jobs());
    let cold_wall = started.elapsed();
    let stats = first.store_stats().expect("store configured");
    println!("generation 1 (cold store):");
    println!("  aggregation runs : {}", cold.stats.aggregation_runs);
    println!(
        "  models persisted : {} ({} bytes)",
        stats.writes, stats.write_bytes
    );
    println!("  wall             : {cold_wall:?}");
    drop(first); // the "server" shuts down; the store directory survives

    // ── Generation 2: warm store — every model is a disk read. ────────────
    let second = AnalysisService::new(ServiceOptions::default().store(&store_dir));
    let started = Instant::now();
    let warm = second.run_batch(&jobs());
    let warm_wall = started.elapsed();
    let stats = second.store_stats().expect("store configured");
    println!("\ngeneration 2 (warm store):");
    println!("  aggregation runs : {}", warm.stats.aggregation_runs);
    println!("  store hits       : {}", stats.hits);
    println!("  wall             : {warm_wall:?}");
    assert_eq!(warm.stats.aggregation_runs, 0, "everything came off disk");

    // Same fleet, same answers — down to the bits.
    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        let (a, b) = (a.results.as_ref().unwrap(), b.results.as_ref().unwrap());
        for (ra, rb) in a.iter().zip(b) {
            for (pa, pb) in ra.points().iter().zip(rb.points()) {
                assert_eq!(pa.value().to_bits(), pb.value().to_bits());
            }
        }
    }
    println!("  results          : bit-identical to generation 1");

    // ── The raw round trip the store is built on. ─────────────────────────
    let built = Analyzer::new(&cas(), AnalysisOptions::default())?;
    let bytes = built.to_bytes();
    let restored = Analyzer::from_bytes(&bytes)?;
    println!(
        "\nraw round trip: {} bytes, restored session reports",
        bytes.len()
    );
    println!(
        "  aggregation_runs = {} (the stats still describe the original build: peak {} states)",
        restored.aggregation_runs(),
        restored
            .aggregation_stats()
            .expect("compositional")
            .peak
            .states,
    );
    let a = built.unreliability(1.0)?.value();
    let b = restored.unreliability(1.0)?.value();
    assert_eq!(a.to_bits(), b.to_bits());
    println!("  unreliability(1.0) = {b} — bit-identical to the built session");

    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
