//! Simultaneity and non-determinism (Section 4.4 / Figure 6 of the paper).
//!
//! An FDEP gate whose trigger forces two dependent events to fail "simultaneously"
//! leaves the order of those failures undefined.  Underneath a PAND gate the order
//! decides whether the gate fires, so the final model is a continuous-time Markov
//! decision process and the analysis reports an interval of unreliabilities
//! instead of a single value.  Each configuration is analysed through one
//! [`Analyzer`] session; the whole horizon sweep is a single curve query.
//!
//! Run with `cargo run --release --example nondeterminism`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::AnalysisOptions;

const HORIZONS: [f64; 3] = [0.5, 1.0, 2.0];

fn report(analyzer: &Analyzer) -> Result<(), dftmc::dft_core::Error> {
    let curve = analyzer.query(Measure::curve(HORIZONS))?;
    for point in curve.points() {
        let (lo, hi) = point.bounds();
        println!(
            "  t = {:3.1}: non-deterministic = {} -> unreliability in [{lo:.6}, {hi:.6}]",
            point.time().unwrap(),
            point.is_nondeterministic()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = AnalysisOptions::default();

    // Figure 6(a): PAND over two events that share an FDEP trigger.
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot)?;
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let bb = b.basic_event("B", 1.0, Dormancy::Hot)?;
    let _fdep = b.fdep_gate("FDEP", t, &[a, bb])?;
    let system = b.pand_gate("system", &[a, bb])?;
    let dft = b.build(system)?;

    println!("Figure 6(a): FDEP trigger feeding both inputs of a PAND gate");
    report(&Analyzer::new(&dft, options.clone())?)?;
    println!("  (the width of the interval is exactly the probability that the trigger fails");
    println!("   before A and B do — only then does the unresolved ordering matter)");

    // Figure 6(b): two spare gates whose primaries share an FDEP trigger and which
    // contend for a single shared spare: which gate gets the spare is unresolved.
    // To make the unresolved choice observable, the system fails only when the
    // left unit fails *before* the right one (a PAND at the top): if the left gate
    // wins the spare the order is reversed and the system survives.
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot)?;
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let bb = b.basic_event("B", 2.0, Dormancy::Hot)?;
    let s = b.basic_event("S", 1.5, Dormancy::Cold)?;
    let _fdep = b.fdep_gate("FDEP", t, &[a, bb])?;
    let left = b.spare_gate("left", &[a, s])?;
    let right = b.spare_gate("right", &[bb, s])?;
    let system = b.pand_gate("system", &[left, right])?;
    let dft = b.build(system)?;

    println!("\nFigure 6(b): two spare gates contending for one spare after a common trigger");
    report(&Analyzer::new(&dft, options)?)?;
    Ok(())
}
