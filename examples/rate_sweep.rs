//! Rate sweep: aggregate the cardiac assist system's *structure* once, then
//! instantiate a whole failure-rate sensitivity sweep at query time.
//!
//! The classical workflow rebuilds the full compositional pipeline for every
//! rate variant ([`cas_scaled`] per scale).  The [`ParametricAnalyzer`] instead
//! threads symbolic linear rate forms through composition and bisimulation
//! minimisation, so the expensive aggregation runs once and each sweep point
//! only evaluates linear forms into a fresh CTMC/CTMDP.
//!
//! Run with `cargo run --release --example rate_sweep`.

use dftmc::dft_core::casestudies::cas;
use dftmc::dft_core::engine::ParametricAnalyzer;
use dftmc::dft_core::parametric::ParamKind;
use dftmc::dft_core::AnalysisOptions;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the parametric session: conversion + compositional aggregation,
    // once for the whole sweep.
    let started = Instant::now();
    let parametric = ParametricAnalyzer::new(&cas(), AnalysisOptions::default())?;
    println!(
        "parametric model built in {:.1?}: {} states, {} parameter slots",
        started.elapsed(),
        parametric.model_stats().states,
        parametric.params().len()
    );

    // Sweep the global failure-rate scale: 25 valuations, zero re-aggregations.
    let valuations: Vec<_> = (0..25)
        .map(|i| parametric.params().scaled_valuation(1.0 + 0.05 * i as f64))
        .collect();
    let started = Instant::now();
    let sweep = parametric.sweep_unreliability(1.0, &valuations)?;
    println!(
        "25-point sweep answered in {:.1?} (instantiate {:.1?}, query {:.1?})",
        started.elapsed(),
        sweep.instantiate_time(),
        sweep.query_time()
    );
    println!("\n{:>8} {:>16}", "scale", "unreliability");
    for (i, value) in sweep.values().enumerate() {
        println!("{:>8.2} {:>16.8}", 1.0 + 0.05 * i as f64, value);
    }
    assert_eq!(parametric.aggregation_runs(), 1);

    // Slots are per basic event, so single-component sensitivity is the same
    // one-liner: double only the pump PA's failure rate.
    let slot = parametric
        .params()
        .slot_of("PA", ParamKind::Failure)
        .expect("the CAS has a PA pump");
    let mut valuation = parametric.base_valuation();
    valuation.set(slot, 2.0);
    let session = parametric.instantiate(&valuation)?;
    println!(
        "\nwith PA's rate doubled: unreliability(1) = {:.6} (no re-aggregation, runs = {})",
        session.unreliability(1.0)?.value(),
        session.aggregation_runs()
    );
    Ok(())
}
