//! The asynchronous service front end: many client threads submit jobs and
//! sweeps against one long-lived [`AnalysisService`] and collect their results
//! through handles, while the persistent worker pool drains continuously.
//!
//! Three clients each submit a personal queue of rate-scaled CAS jobs (the
//! structures overlap across clients, so most jobs are cache hits on models a
//! *different* client paid for), a fourth client submits a rate sweep, and
//! the main thread polls one handle with `try_result` to show non-blocking
//! collection.  Aggregation runs exactly once per distinct structure, however
//! the submissions interleave.
//!
//! Run with `cargo run --release --example async_service`.

use dftmc::dft_core::casestudies::{cas, cas_scaled};
use dftmc::dft_core::engine::ParametricAnalyzer;
use dftmc::dft_core::service::{
    AnalysisJob, AnalysisService, JobHandle, JobReport, ServiceOptions, SweepJob,
};
use dftmc::dft_core::{AnalysisOptions, Measure};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CLIENTS: usize = 3;
    const JOBS_EACH: usize = 6;
    const DESIGNS: usize = 4;

    let service = Arc::new(AnalysisService::new(ServiceOptions::default()));

    // Three clients, each submitting its whole queue before waiting — the
    // submissions return immediately, the pool works in the background.
    let client_reports: Vec<Vec<JobReport>> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let handles: Vec<JobHandle> = (0..JOBS_EACH)
                        .map(|j| {
                            service.submit(AnalysisJob::new(
                                // Offset per client: the same designs, hit in
                                // a different order by everyone.
                                cas_scaled(1.0 + 0.1 * ((c + j) % DESIGNS) as f64),
                                AnalysisOptions::default(),
                                vec![Measure::Unreliability(1.0)],
                            ))
                        })
                        .collect();
                    handles.into_iter().map(JobHandle::wait).collect::<Vec<_>>()
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });

    for (c, reports) in client_reports.iter().enumerate() {
        let hits = reports.iter().filter(|r| r.cache_hit).count();
        let built: usize = reports.iter().map(|r| r.aggregation_runs).sum();
        println!(
            "client {c}: {} jobs, {hits} cache hits, {built} models built here",
            reports.len()
        );
    }
    let total_aggregations: usize = client_reports
        .iter()
        .flatten()
        .map(|r| r.aggregation_runs)
        .sum();
    assert_eq!(
        total_aggregations, DESIGNS,
        "every design aggregates exactly once, whoever submitted it first"
    );
    assert!(
        client_reports.iter().flatten().all(|r| !r.build_wait),
        "duplicates park behind the in-flight build instead of blocking"
    );

    // A sweep rides the same queue: the head task builds (or fetches) the
    // shared parametric model, the valuations fan out across the pool.
    let parametric = ParametricAnalyzer::new(&cas(), AnalysisOptions::default())?;
    let valuations: Vec<_> = (0..8)
        .map(|i| parametric.params().scaled_valuation(1.0 + 0.05 * i as f64))
        .collect();
    let sweep = service
        .submit_sweep(SweepJob::new(
            cas(),
            AnalysisOptions::default(),
            vec![Measure::Unreliability(1.0)],
            valuations,
        ))
        .wait();
    println!(
        "sweep: {} valuations, {} aggregation run(s), parametric cache hit: {}",
        sweep.stats.valuations, sweep.stats.aggregation_runs, sweep.stats.parametric_cache_hit
    );
    for (i, point) in sweep.points.iter().enumerate() {
        let value = point.results.as_ref().unwrap()[0].value();
        println!(
            "  scale {:.2} -> unreliability(1) = {value:.6}",
            1.0 + 0.05 * i as f64
        );
    }

    // Non-blocking collection: poll with try_result, then do other work.
    let mut handle = service.submit(AnalysisJob::new(
        cas_scaled(2.0),
        AnalysisOptions::default(),
        vec![Measure::Unreliability(1.0)],
    ));
    let mut polls = 0usize;
    let report = loop {
        if handle.try_result().is_some() {
            break handle.wait();
        }
        polls += 1;
        std::thread::yield_now();
    };
    println!(
        "polled handle: ready after {polls} poll(s), unreliability(1) = {:.6}",
        report.results.as_ref().unwrap()[0].value()
    );

    let stats = service.cache_stats();
    let queue = service.queue_stats();
    println!(
        "service totals: {} hits / {} misses, {} parked / {} released, pool of {}",
        stats.hits,
        stats.misses,
        queue.parked,
        queue.released,
        service.pool_workers()
    );
    Ok(())
}
