//! Quickstart: model a tiny redundant system as a dynamic fault tree and compute
//! its unreliability, both with the paper's compositional I/O-IMC pipeline and
//! with the DIFTree-style monolithic baseline.
//!
//! Run with `cargo run --example quickstart`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::analysis::{unreliability, AnalysisOptions, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power supply backed by a cold-standby generator; both feed a controller
    // that also depends on its cooling fan (the fan failure triggers a controller
    // failure through a functional dependency).
    let mut b = DftBuilder::new();
    let grid = b.basic_event("grid", 0.5, Dormancy::Hot)?;
    let generator = b.basic_event("generator", 0.2, Dormancy::Cold)?;
    let power = b.spare_gate("power", &[grid, generator])?;

    let fan = b.basic_event("fan", 0.1, Dormancy::Hot)?;
    let controller = b.basic_event("controller", 0.05, Dormancy::Hot)?;
    let _cooling = b.fdep_gate("cooling", fan, &[controller])?;

    let system = b.or_gate("system", &[power, controller])?;
    let dft = b.build(system)?;

    println!("system: {} elements ({} basic events, {} gates)",
        dft.num_elements(), dft.num_basic_events(), dft.num_gates());

    let options = AnalysisOptions::default();
    println!("\n mission time |  unreliability");
    println!(" -------------+---------------");
    for t in [0.5, 1.0, 2.0, 5.0] {
        let result = unreliability(&dft, t, &options)?;
        println!("        {t:5.1} |  {:.6}", result.probability());
    }

    // Cross-check a single point against the monolithic baseline.
    let t = 1.0;
    let compositional = unreliability(&dft, t, &options)?;
    let monolithic = unreliability(
        &dft,
        t,
        &AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() },
    )?;
    println!(
        "\nat t = {t}: compositional {:.6} vs monolithic {:.6}",
        compositional.probability(),
        monolithic.probability()
    );

    let stats = compositional.aggregation_stats().expect("compositional run");
    println!(
        "compositional aggregation peaked at {} states / {} transitions over {} steps",
        stats.peak.states,
        stats.peak.transitions(),
        stats.steps.len()
    );
    Ok(())
}
