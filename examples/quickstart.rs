//! Quickstart: model a tiny redundant system as a dynamic fault tree, submit it
//! to an [`AnalysisService`], and answer a whole mission-time sweep plus the MTTF
//! from one cached model — the aggregation pipeline runs exactly once, and
//! resubmitting the same structure is a cache hit that skips it entirely.
//!
//! Run with `cargo run --example quickstart`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
use dftmc::dft_core::{AnalysisOptions, Measure, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power supply backed by a cold-standby generator; both feed a controller
    // that also depends on its cooling fan (the fan failure triggers a controller
    // failure through a functional dependency).
    let mut b = DftBuilder::new();
    let grid = b.basic_event("grid", 0.5, Dormancy::Hot)?;
    let generator = b.basic_event("generator", 0.2, Dormancy::Cold)?;
    let power = b.spare_gate("power", &[grid, generator])?;

    let fan = b.basic_event("fan", 0.1, Dormancy::Hot)?;
    let controller = b.basic_event("controller", 0.05, Dormancy::Hot)?;
    let _cooling = b.fdep_gate("cooling", fan, &[controller])?;

    let system = b.or_gate("system", &[power, controller])?;
    let dft = b.build(system)?;

    println!(
        "system: {} elements ({} basic events, {} gates), fingerprint {:016x}",
        dft.num_elements(),
        dft.num_basic_events(),
        dft.num_gates(),
        dft.fingerprint()
    );

    // One service fronts every analysis; sessions are cached by structure.
    let service = AnalysisService::new(ServiceOptions::default());

    // One job answers the whole sweep, the point query and the MTTF in a single
    // batch — all measures share one cached model and one uniformisation pass.
    let t = 1.0;
    let report = service.run_batch(&[AnalysisJob::new(
        dft.clone(),
        AnalysisOptions::default(),
        vec![
            Measure::curve([0.5, 1.0, 2.0, 5.0]),
            Measure::Unreliability(t),
            Measure::Mttf,
        ],
    )]);
    let job = &report.jobs[0];
    let results = job.results.as_ref().map_err(Clone::clone)?;

    println!("\n mission time |  unreliability");
    println!(" -------------+---------------");
    for point in results[0].points() {
        println!(
            "        {:5.1} |  {:.6}",
            point.time().unwrap(),
            point.value()
        );
    }
    println!("\nmean time to failure: {:.4}", results[2].value());

    // Cross-check the point query against the monolithic baseline — a second
    // job in the same service, under a different cache key.
    let monolithic = service.run_batch(&[AnalysisJob::new(
        dft.clone(),
        AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
        vec![Measure::Unreliability(t)],
    )]);
    println!(
        "\nat t = {t}: compositional {:.6} vs monolithic {:.6}",
        results[1].value(),
        monolithic.jobs[0].results.as_ref().map_err(Clone::clone)?[0].value()
    );

    // Resubmitting the same structure is a cache hit: no aggregation runs.
    let resubmitted = service.run_batch(&[AnalysisJob::new(
        dft,
        AnalysisOptions::default(),
        vec![Measure::Unreliability(2.0)],
    )]);
    println!(
        "\nresubmission: cache hit = {}, aggregation runs = {}",
        resubmitted.jobs[0].cache_hit, resubmitted.stats.aggregation_runs
    );
    let stats = service.cache_stats();
    println!(
        "service totals: {} hits / {} misses over {} cached model(s)",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
