//! Quickstart: model a tiny redundant system as a dynamic fault tree, build one
//! [`Analyzer`] session, and answer a whole mission-time sweep plus the MTTF from
//! the same cached model — the aggregation pipeline runs exactly once.
//!
//! Run with `cargo run --example quickstart`.

use dftmc::dft::{DftBuilder, Dormancy};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::{AnalysisOptions, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power supply backed by a cold-standby generator; both feed a controller
    // that also depends on its cooling fan (the fan failure triggers a controller
    // failure through a functional dependency).
    let mut b = DftBuilder::new();
    let grid = b.basic_event("grid", 0.5, Dormancy::Hot)?;
    let generator = b.basic_event("generator", 0.2, Dormancy::Cold)?;
    let power = b.spare_gate("power", &[grid, generator])?;

    let fan = b.basic_event("fan", 0.1, Dormancy::Hot)?;
    let controller = b.basic_event("controller", 0.05, Dormancy::Hot)?;
    let _cooling = b.fdep_gate("cooling", fan, &[controller])?;

    let system = b.or_gate("system", &[power, controller])?;
    let dft = b.build(system)?;

    println!(
        "system: {} elements ({} basic events, {} gates)",
        dft.num_elements(),
        dft.num_basic_events(),
        dft.num_gates()
    );

    // Build the aggregation pipeline once …
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;

    // … then sweep the whole mission-time grid in one curve query.
    let curve = analyzer.query(Measure::UnreliabilityCurve(&[0.5, 1.0, 2.0, 5.0]))?;
    println!("\n mission time |  unreliability");
    println!(" -------------+---------------");
    for point in curve.points() {
        println!(
            "        {:5.1} |  {:.6}",
            point.time().unwrap(),
            point.value()
        );
    }

    // The same session also answers the mean time to failure.
    println!(
        "\nmean time to failure: {:.4}",
        analyzer.query(Measure::Mttf)?.value()
    );

    // Cross-check a single point against the monolithic baseline session.
    let t = 1.0;
    let compositional = analyzer.query(Measure::Unreliability(t))?;
    let monolithic = Analyzer::new(
        &dft,
        AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        },
    )?
    .query(Measure::Unreliability(t))?;
    println!(
        "\nat t = {t}: compositional {:.6} vs monolithic {:.6}",
        compositional.value(),
        monolithic.value()
    );

    let stats = analyzer.aggregation_stats().expect("compositional run");
    println!(
        "compositional aggregation peaked at {} states / {} transitions over {} steps",
        stats.peak.states,
        stats.peak.transitions(),
        stats.steps.len()
    );
    println!(
        "the session answered every query above with {} aggregation re-run(s)",
        analyzer.aggregation_runs() - 1
    );
    Ok(())
}
