//! Portfolio analysis: a 50-variant fleet of cardiac assist systems, analysed
//! as one [`AnalysisService`] batch.
//!
//! The fleet contains only 5 structurally distinct designs (rate-scaled CAS
//! variants); each appears 10 times, as fleets do — same design, many
//! submissions.  The service fingerprints every tree, builds each distinct
//! model exactly once on the worker pool, and answers the other 45 jobs from
//! the cache: after the first build of a design, re-analysing it is ~free.
//!
//! Run with `cargo run --release --example portfolio`.

use dftmc::dft_core::casestudies::{cas_scaled, DEFAULT_MISSION_TIMES};
use dftmc::dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
use dftmc::dft_core::{AnalysisOptions, Measure};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DESIGNS: usize = 5;
    const COPIES: usize = 10;

    // The fleet: 10 submissions of each of 5 designs, interleaved as a real
    // submission stream would be.
    let jobs: Vec<AnalysisJob> = (0..DESIGNS * COPIES)
        .map(|i| {
            AnalysisJob::new(
                cas_scaled(1.0 + 0.1 * (i % DESIGNS) as f64),
                AnalysisOptions::default(),
                vec![
                    Measure::curve(DEFAULT_MISSION_TIMES),
                    Measure::Unreliability(1.0),
                ],
            )
        })
        .collect();

    let service = AnalysisService::new(ServiceOptions::default());
    let report = service.run_batch(&jobs);

    println!(
        "portfolio: {} jobs, {} distinct designs, {} worker(s)",
        report.stats.jobs, DESIGNS, report.stats.workers
    );
    println!(
        "cache: {} misses (models built), {} hits (builds skipped), {} aggregation run(s)",
        report.stats.cache_misses, report.stats.cache_hits, report.stats.aggregation_runs
    );

    // Cache hits make re-analysis ~free: compare the build phase paid by the
    // first submission of each design with what the duplicates paid.
    let phase = |hit: bool| -> (usize, Duration, Duration) {
        report
            .jobs
            .iter()
            .filter(|j| j.cache_hit == hit)
            .fold((0, Duration::ZERO, Duration::ZERO), |(n, b, q), j| {
                (n + 1, b + j.build, q + j.query)
            })
    };
    let (misses, miss_build, miss_query) = phase(false);
    let (hits, hit_build, hit_query) = phase(true);
    println!("\n              jobs   total build   total query");
    println!(
        "first builds  {:>4}   {:>11} {:>13}",
        misses,
        format!("{:.2?}", miss_build),
        format!("{:.2?}", miss_query)
    );
    println!(
        "cache hits    {:>4}   {:>11} {:>13}",
        hits,
        format!("{:.2?}", hit_build),
        format!("{:.2?}", hit_query)
    );

    // Per-design: every submission of a design reports the same fingerprint
    // and the same unreliability, down to the last bit.
    println!("\ndesign  fingerprint       unreliability(t=1)  submissions");
    for design in 0..DESIGNS {
        let submissions: Vec<_> = report
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % DESIGNS == design)
            .map(|(_, j)| j)
            .collect();
        let first = submissions[0].results.as_ref().map_err(Clone::clone)?[1].value();
        assert!(submissions.iter().all(|j| {
            j.results
                .as_ref()
                .is_ok_and(|r| r[1].value().to_bits() == first.to_bits())
        }));
        println!(
            "#{design}      {:016x}  {:>18.6}  {:>11}",
            submissions[0].fingerprint,
            first,
            submissions.len()
        );
    }

    println!(
        "\nbatch wall time {:.2?}: {} model builds amortized over {} jobs",
        report.stats.wall_time, report.stats.cache_misses, report.stats.jobs
    );
    Ok(())
}
