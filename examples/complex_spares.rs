//! Modular model building (Section 6 / Figure 10 of the paper): spare gates whose
//! primary and spare are complete sub-systems, and an FDEP gate triggering a gate
//! instead of a basic event.  Each configuration builds one [`Analyzer`] session
//! and sweeps its horizon with a single curve query.
//!
//! Run with `cargo run --release --example complex_spares`.

use dftmc::dft::{Dft, DftBuilder, Dormancy};
use dftmc::dft_core::engine::Analyzer;
use dftmc::dft_core::query::Measure;
use dftmc::dft_core::AnalysisOptions;

fn sweep(dft: &Dft) -> Result<(), dftmc::dft_core::Error> {
    let analyzer = Analyzer::new(dft, AnalysisOptions::default())?;
    let curve = analyzer.query(Measure::curve([0.5, 1.0, 2.0]))?;
    for point in curve.points() {
        println!(
            "  unreliability({}) = {:.6}",
            point.time().unwrap(),
            point.value()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 10(a): the primary and the spare are AND sub-systems of two basic
    // events each; activating the spare module activates its (warm) events.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let a2 = b.basic_event("A2", 1.0, Dormancy::Hot)?;
    let c = b.basic_event("C", 1.0, Dormancy::Warm(0.2))?;
    let d = b.basic_event("D", 1.0, Dormancy::Warm(0.2))?;
    let primary = b.and_gate("primary", &[a, a2])?;
    let spare = b.and_gate("spare", &[c, d])?;
    let system = b.spare_gate("system", &[primary, spare])?;
    let dft_a = b.build(system)?;
    println!("Figure 10(a): AND sub-systems as primary and spare");
    sweep(&dft_a)?;

    // Figure 10(b): nested spare gates — the primary and the spare are themselves
    // spare gates over basic events.
    let mut b = DftBuilder::new();
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let bb = b.basic_event("B", 1.0, Dormancy::Warm(0.5))?;
    let c = b.basic_event("C", 1.0, Dormancy::Warm(0.5))?;
    let d = b.basic_event("D", 1.0, Dormancy::Warm(0.5))?;
    let primary = b.spare_gate("primary", &[a, bb])?;
    let spare = b.spare_gate("spare", &[c, d])?;
    let system = b.spare_gate("system", &[primary, spare])?;
    let dft_b = b.build(system)?;
    println!("\nFigure 10(b): nested spare gates as primary and spare");
    sweep(&dft_b)?;

    // Figure 10(c): the FDEP trigger T forces the failure of the *gate* A (not of
    // its components): when T fails, A is considered failed even though C and the
    // other basic event keep running.
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot)?;
    let c = b.basic_event("C", 1.0, Dormancy::Hot)?;
    let e = b.basic_event("E", 1.0, Dormancy::Hot)?;
    let gate_a = b.and_gate("A", &[c, e])?;
    let bb = b.basic_event("B", 1.0, Dormancy::Hot)?;
    let _fdep = b.fdep_gate("FDEP", t, &[gate_a])?;
    let system = b.and_gate("system", &[gate_a, bb])?;
    let dft_c = b.build(system)?;
    println!("\nFigure 10(c): an FDEP gate triggering a sub-tree");
    sweep(&dft_c)?;
    Ok(())
}
