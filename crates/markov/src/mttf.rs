//! Mean time to failure (expected time to absorption).
//!
//! Besides the time-bounded unreliability the paper reports, reliability engineers
//! routinely quote the *mean time to failure* (MTTF): the expected time until a
//! goal ("failed") state is reached.  For a CTMC with goal states made absorbing
//! this is the expected absorption time, obtained from the linear system
//! `E[s] = 1/E_s + Σ_t P(s→t)·E[t]` over the transient states, which we solve with
//! Gauss–Seidel sweeps (the chains produced from DFTs are small and acyclic-ish,
//! so this converges quickly).

use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// Expected time until a state in `goal` is reached, starting from the initial
/// state of `ctmc`.
///
/// Returns `f64::INFINITY` if the goal is not reached with probability one from
/// the initial state (e.g. an operational absorbing state exists, as for a PAND
/// gate whose inputs failed in the wrong order).
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `goal` has the wrong length, or
/// [`Error::NoConvergence`] if the iterative solver fails to converge.
///
/// # Examples
///
/// ```
/// use markov::ctmc::Ctmc;
/// use markov::mttf::mean_time_to_absorption;
/// // Two stages with rate 2: MTTF = 1/2 + 1/2 = 1.
/// let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 2.0), (1, 2, 2.0)]).unwrap();
/// let mttf = mean_time_to_absorption(&ctmc, &[false, false, true], 1e-12).unwrap();
/// assert!((mttf - 1.0).abs() < 1e-9);
/// ```
pub fn mean_time_to_absorption(ctmc: &Ctmc, goal: &[bool], tolerance: f64) -> Result<f64> {
    let n = ctmc.num_states();
    if goal.len() != n {
        return Err(Error::DimensionMismatch {
            expected: n,
            actual: goal.len(),
        });
    }
    if goal[ctmc.initial()] {
        return Ok(0.0);
    }
    // First check that the goal is reached almost surely; otherwise the
    // expectation is infinite.  In a finite chain the goal is hit with
    // probability one exactly when every state reachable from the initial state
    // can still reach the goal, so the check is a pair of graph traversals — no
    // numerical tolerance involved (value iteration can under-approximate the
    // probability on highly recurrent repairable chains and misreport infinity).
    if !goal_reached_almost_surely(ctmc, goal) {
        return Ok(f64::INFINITY);
    }

    // Gauss–Seidel on E[s] = (1 + Σ_t r(s,t)·E[t]) / exit(s) for transient states.
    let mut expectation = vec![0.0f64; n];
    let max_iter = 1_000_000;
    for _ in 0..max_iter {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            if goal[s] {
                continue;
            }
            let exit = ctmc.exit_rate(s);
            if exit == 0.0 {
                // Absorbing non-goal state: unreachable here because reachability
                // is 1, but guard against numerical corner cases.
                continue;
            }
            let (cols, vals) = ctmc.rates().row(s);
            let mut acc = 1.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if !goal[c as usize] {
                    acc += v * expectation[c as usize];
                }
            }
            let new = acc / exit;
            delta = delta.max((new - expectation[s]).abs());
            expectation[s] = new;
        }
        if delta < tolerance {
            return Ok(expectation[ctmc.initial()]);
        }
    }
    Err(Error::NoConvergence {
        iterations: max_iter,
    })
}

/// Returns `true` when every state reachable from the initial state *before the
/// first goal visit* can reach a goal state, which for a finite CTMC is
/// equivalent to reaching the goal with probability one.
fn goal_reached_almost_surely(ctmc: &Ctmc, goal: &[bool]) -> bool {
    let n = ctmc.num_states();

    // Forward closure from the initial state, stopping at goal states: the first
    // passage ends there, so whatever the chain can do afterwards is irrelevant
    // to the expectation.
    let mut forward = vec![false; n];
    let mut stack = vec![ctmc.initial()];
    forward[ctmc.initial()] = true;
    while let Some(s) = stack.pop() {
        if goal[s] {
            continue;
        }
        let (cols, _) = ctmc.rates().row(s);
        for &c in cols {
            if !forward[c as usize] {
                forward[c as usize] = true;
                stack.push(c as usize);
            }
        }
    }

    // Backward closure from the goal states over the reversed transition graph.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        let (cols, _) = ctmc.rates().row(s);
        for &c in cols {
            reverse[c as usize].push(s);
        }
    }
    let mut reaches_goal = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&s| goal[s]).collect();
    for &s in &stack {
        reaches_goal[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &reverse[s] {
            if !reaches_goal[p] {
                reaches_goal[p] = true;
                stack.push(p);
            }
        }
    }

    (0..n).all(|s| !forward[s] || reaches_goal[s])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_exponential() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 0.25)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, true], 1e-12).unwrap();
        assert!((mttf - 4.0).abs() < 1e-9);
    }

    #[test]
    fn erlang_chain() {
        let ctmc = Ctmc::from_transitions(4, 0, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, false, false, true], 1e-12).unwrap();
        assert!((mttf - (1.0 + 0.5 + 0.25)).abs() < 1e-9);
    }

    #[test]
    fn branching_chain() {
        // From 0: rate 1 to goal, rate 1 to a detour that then reaches the goal at
        // rate 1.  MTTF = 1/2 + (1/2)·1 = 1.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 2, 1.0), (0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, false, true], 1e-10).unwrap();
        assert!((mttf - 1.0).abs() < 1e-7, "{mttf}");
    }

    #[test]
    fn unreachable_goal_is_infinite() {
        // The chain can get stuck in an operational absorbing state.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, false, true], 1e-10).unwrap();
        assert!(mttf.is_infinite());
    }

    #[test]
    fn post_goal_dead_ends_do_not_make_the_first_passage_infinite() {
        // 0 --1--> 1 (goal) --1--> 2 (absorbing, cannot re-reach the goal).  The
        // first passage to the goal happens with probability one after an
        // exponential(1) delay; what the chain does *after* the goal must not
        // flip the answer to infinity.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, true, false], 1e-12).unwrap();
        assert!((mttf - 1.0).abs() < 1e-9, "{mttf}");
    }

    #[test]
    fn recurrent_repairable_chain_has_finite_first_passage() {
        // Failure rate 1, repair rate 50: the chain keeps cycling 0 <-> 1 and
        // only rarely pushes on to the goal 2.  Truncated value iteration used to
        // misreport infinity here; the graph check must say "almost sure".
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 1.0), (1, 0, 50.0), (1, 2, 1.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[false, false, true], 1e-12).unwrap();
        assert!(mttf.is_finite());
        // E[T] solves E0 = 1 + E1, E1 = 1/51 + (50/51)·E0 -> E0 = 52.
        assert!((mttf - 52.0).abs() < 1e-6, "{mttf}");
    }

    #[test]
    fn goal_at_start_is_zero() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0)]).unwrap();
        let mttf = mean_time_to_absorption(&ctmc, &[true, false], 1e-10).unwrap();
        assert_eq!(mttf, 0.0);
    }

    #[test]
    fn wrong_goal_length_is_rejected() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0)]).unwrap();
        assert!(mean_time_to_absorption(&ctmc, &[true], 1e-10).is_err());
    }
}
