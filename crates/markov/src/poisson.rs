//! Poisson probabilities for uniformisation.
//!
//! Uniformisation expresses the transient distribution of a CTMC at time `t` as a
//! Poisson-weighted sum of powers of the uniformised transition matrix.  This
//! module computes the weights `P[N_{Λt} = k]` together with a truncation point
//! after which the remaining tail mass is below a requested tolerance, in the
//! spirit of the Fox–Glynn algorithm (computed from the mode outwards to avoid
//! underflow for large `Λt`).

use crate::{Error, Result};

/// Poisson weights `w[k] = P[N = k]` for a Poisson distribution with the given
/// `mean`, truncated on the right so that the neglected tail mass is below
/// `epsilon`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// `weights[k]` is `P[N = k]` for `k = 0 ..= right`.
    pub weights: Vec<f64>,
    /// Right truncation point (inclusive).
    pub right: usize,
    /// Total probability mass actually captured by the truncated window —
    /// `Σ_{k=0}^{right} P[N = k]` before the weights were normalised to sum to
    /// exactly 1.  At least `1 - epsilon` by construction of the truncation
    /// for every `epsilon ≥ 1e-12` (the estimate carries ~1e-13 of deliberate
    /// conservative rounding; tighter epsilons truncate even less tail but the
    /// reported mass bottoms out around `1 - 2e-13`).
    ///
    /// Computed from the true Poisson density in log space (compensated
    /// summation, Stirling for the anchor factorial) and rounded
    /// *conservatively* — never above the captured mass — so
    /// `1 - total_mass` is a trustworthy bound on the neglected tail.
    pub total_mass: f64,
}

/// Computes truncated Poisson weights.
///
/// # Errors
///
/// Returns [`Error::InvalidValue`] if `mean` is negative/NaN/infinite or `epsilon`
/// is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use markov::poisson::poisson_weights;
/// let w = poisson_weights(2.0, 1e-12).unwrap();
/// // P[N = 0] = exp(-2)
/// assert!((w.weights[0] - (-2.0f64).exp()).abs() < 1e-12);
/// assert!(w.total_mass > 1.0 - 1e-12);
/// ```
pub fn poisson_weights(mean: f64, epsilon: f64) -> Result<PoissonWeights> {
    if !mean.is_finite() || mean < 0.0 {
        return Err(Error::InvalidValue { value: mean });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(Error::InvalidValue { value: epsilon });
    }
    if mean == 0.0 {
        return Ok(PoissonWeights {
            weights: vec![1.0],
            right: 0,
            total_mass: 1.0,
        });
    }

    // Work with unnormalised weights anchored at the mode to avoid underflow, then
    // normalise by the accumulated sum (which approximates e^{mean}·1 scaled).
    let mode = mean.floor() as usize;

    // A generous upper bound for the right truncation point: mean + k·sqrt(mean)
    // grows like the Chernoff bound; extend dynamically below if needed.
    let mut unnormalised: Vec<f64> = Vec::with_capacity(mode * 2 + 16);

    // Build weights from 0 to mode using ratios relative to the mode to keep the
    // numbers representable: u[k] relative with u[mode] = 1.
    let mut down: Vec<f64> = Vec::with_capacity(mode + 1);
    down.push(1.0);
    let mut value = 1.0;
    for k in (1..=mode).rev() {
        value *= k as f64 / mean;
        down.push(value);
        if value < f64::MIN_POSITIVE * 1e3 {
            // Further terms underflow to zero anyway.
            break;
        }
    }
    // down currently holds u[mode], u[mode-1], ... ; reverse into ascending order.
    let skipped = mode + 1 - down.len();
    unnormalised.extend(std::iter::repeat_n(0.0, skipped));
    unnormalised.extend(down.into_iter().rev());

    // Extend to the right until the (relative) tail is negligible.  Once k is a
    // few standard deviations past the mode the terms decay geometrically with
    // ratio mean/k, so a term below epsilon·mass/(10 + sqrt(mean)) bounds the whole
    // neglected tail by roughly epsilon·mass.
    let mut mass_so_far: f64 = unnormalised.iter().sum();
    let mut k = mode;
    let mut term: f64 = 1.0;
    let far_enough = mean + 4.0 * mean.sqrt() + 5.0;
    let threshold_divisor = 10.0 + mean.sqrt();
    loop {
        k += 1;
        term *= mean / k as f64;
        unnormalised.push(term);
        mass_so_far += term;
        if (k as f64) > far_enough && term <= epsilon * mass_so_far / threshold_divisor {
            break;
        }
        if k > mode + 10_000_000 {
            return Err(Error::NoConvergence { iterations: k });
        }
    }

    // Compensated summation keeps the norm's error at a few ulps however long
    // the window is, so the conservative slack below can stay small and
    // length-independent.
    let norm = kahan_sum(&unnormalised);
    let weights: Vec<f64> = unnormalised.iter().map(|u| u / norm).collect();

    // The normalisation maps the captured mass to exactly 1.  The *true*
    // captured mass is the unnormalised sum times the density at the anchor:
    // every u[k] is P[N = k] / P[N = mode], so
    //   Σ_{k=0}^{right} P[N = k]  =  norm · P[N = mode],
    // with ln P[N = mode] = -mean + mode·ln(mean) - ln(mode!) evaluated in log
    // space so neither e^{-mean} nor mode! can under/overflow.  The estimate's
    // own error (compensated sum, Stirling tail of ln(mode!), one exp) is well
    // below 1e-13 relative; subtracting that as a fixed slack makes the
    // reported mass conservative — never above what the window really holds —
    // while staying above `1 - epsilon` for every epsilon the truncation
    // supports down to 1e-12.
    let ln_mode_density = -mean + (mode as f64) * mean.ln() - ln_factorial(mode);
    let captured = (norm.ln() + ln_mode_density).exp();
    let total_mass = (captured * (1.0 - 1e-13)).clamp(0.0, 1.0);

    Ok(PoissonWeights {
        weights,
        right: k,
        total_mass,
    })
}

/// Truncated Poisson weights for a whole batch of means, computing each
/// *distinct* mean exactly once.
///
/// Batched transient analyses (many mission times × many sweep valuations)
/// produce one Poisson mean per (uniformisation rate, time) pair, and those
/// pairs repeat whenever valuations share a uniformisation rate or a time
/// bound occurs twice.  Deduplicating by the exact bit pattern of the mean
/// keeps the result indistinguishable from calling [`poisson_weights`] in a
/// loop — duplicates are clones of the first computation — while paying for
/// each distinct window only once.
///
/// Results are returned in the same order as `means`.
///
/// # Errors
///
/// Same as [`poisson_weights`], failing on the first offending mean.
pub fn poisson_weights_multi(means: &[f64], epsilon: f64) -> Result<Vec<PoissonWeights>> {
    let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut out: Vec<PoissonWeights> = Vec::with_capacity(means.len());
    for &mean in means {
        match seen.entry(mean.to_bits()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let w = out[*e.get()].clone();
                out.push(w);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(out.len());
                out.push(poisson_weights(mean, epsilon)?);
            }
        }
    }
    Ok(out)
}

/// Kahan–Babuška compensated sum: error stays a few ulps of the result
/// independent of the term count, where a naive sum drifts by O(n) ulps.
fn kahan_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut compensation = 0.0f64;
    for &value in values {
        let y = value - compensation;
        let t = sum + y;
        compensation = (t - sum) - y;
        sum = t;
    }
    sum
}

/// `ln(n!)`, dependency-free: an exact log-sum for small `n`, the Stirling
/// series (through the `1/n⁵` term, relative error well below `1e-13` at the
/// switchover) for large `n`.
fn ln_factorial(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|k| (k as f64).ln()).sum();
    }
    let x = n as f64;
    let x2 = x * x;
    0.5 * (2.0 * std::f64::consts::PI * x).ln() + x * x.ln() - x + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x2)
        + 1.0 / (1260.0 * x * x2 * x2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_poisson(mean: f64, k: usize) -> f64 {
        // Direct computation, fine for small means.
        let mut p = (-mean).exp();
        for i in 1..=k {
            p *= mean / i as f64;
        }
        p
    }

    #[test]
    fn small_mean_matches_direct_computation() {
        let w = poisson_weights(1.5, 1e-13).unwrap();
        for k in 0..=10 {
            assert!(
                (w.weights[k] - exact_poisson(1.5, k)).abs() < 1e-10,
                "k={k}: {} vs {}",
                w.weights[k],
                exact_poisson(1.5, k)
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for mean in [0.1, 1.0, 7.3, 50.0, 400.0] {
            let w = poisson_weights(mean, 1e-10).unwrap();
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "mean {mean}: total {total}");
            assert!(w.right >= mean as usize);
        }
    }

    #[test]
    fn zero_mean_is_degenerate() {
        let w = poisson_weights(0.0, 1e-10).unwrap();
        assert_eq!(w.weights, vec![1.0]);
        assert_eq!(w.right, 0);
    }

    #[test]
    fn large_mean_does_not_underflow() {
        let w = poisson_weights(2000.0, 1e-9).unwrap();
        let total: f64 = w.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
        // The mode weight of Poisson(2000) is about 1/sqrt(2*pi*2000).
        let mode_weight = w.weights[2000];
        assert!(
            mode_weight > 0.005 && mode_weight < 0.02,
            "mode weight {mode_weight}"
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(poisson_weights(-1.0, 1e-9).is_err());
        assert!(poisson_weights(f64::NAN, 1e-9).is_err());
        assert!(poisson_weights(1.0, 0.0).is_err());
        assert!(poisson_weights(1.0, 1.5).is_err());
    }

    #[test]
    fn truncation_point_grows_with_mean() {
        let small = poisson_weights(1.0, 1e-9).unwrap();
        let large = poisson_weights(100.0, 1e-9).unwrap();
        assert!(large.right > small.right);
        assert!(small.total_mass > 0.999_999_99);
    }

    #[test]
    fn total_mass_matches_direct_summation_for_small_means() {
        // The reported mass must be the *actually captured* mass — the direct
        // sum of true Poisson probabilities over the truncated window — not a
        // constant fabricated from epsilon.
        for mean in [0.3, 1.5, 4.2, 9.7, 23.0] {
            for epsilon in [1e-4, 1e-8, 1e-12] {
                let w = poisson_weights(mean, epsilon).unwrap();
                let direct: f64 = (0..=w.right).map(|k| exact_poisson(mean, k)).sum();
                assert!(
                    (w.total_mass - direct).abs() < 1e-10,
                    "mean {mean}, eps {epsilon}: reported {} vs direct {direct}",
                    w.total_mass
                );
                assert!(
                    w.total_mass <= direct + 1e-13,
                    "mean {mean}, eps {epsilon}: reported mass {} overstates \
                     the captured {direct}",
                    w.total_mass
                );
                assert!(
                    w.total_mass >= 1.0 - epsilon,
                    "mean {mean}, eps {epsilon}: captured only {}",
                    w.total_mass
                );
                // Different epsilons capture *different* true masses — the old
                // fabricated constant could not distinguish them.
                assert!(w.total_mass < 1.0);
            }
        }
    }

    #[test]
    fn total_mass_stays_sane_for_large_means() {
        // The log-space evaluation must survive means where e^{-mean} and
        // mode! individually under/overflow, and the Stirling branch of
        // ln(n!) must agree with the captured window.
        for mean in [400.0, 2000.0] {
            let w = poisson_weights(mean, 1e-9).unwrap();
            assert!(w.total_mass <= 1.0);
            assert!(
                w.total_mass > 1.0 - 1e-8,
                "mean {mean}: captured only {}",
                w.total_mass
            );
        }
        // Tight epsilon on a long window: the compensated sum keeps the
        // estimate accurate enough that the documented `1 - epsilon` floor
        // survives the conservative slack even at epsilon = 1e-12.
        let w = poisson_weights(2000.0, 1e-12).unwrap();
        assert!(w.total_mass <= 1.0);
        assert!(
            w.total_mass >= 1.0 - 1e-12,
            "mean 2000, eps 1e-12: captured only {}",
            w.total_mass
        );
    }

    #[test]
    fn multi_matches_individual_calls_bit_for_bit() {
        let means = [0.0, 1.5, 7.3, 1.5, 0.0, 42.0, 7.3];
        let batch = poisson_weights_multi(&means, 1e-11).unwrap();
        assert_eq!(batch.len(), means.len());
        for (&mean, w) in means.iter().zip(&batch) {
            let reference = poisson_weights(mean, 1e-11).unwrap();
            assert_eq!(w, &reference, "mean {mean}");
        }
    }

    #[test]
    fn multi_rejects_bad_means_like_the_scalar_call() {
        assert!(poisson_weights_multi(&[1.0, -2.0], 1e-9).is_err());
        assert!(poisson_weights_multi(&[1.0], 0.0).is_err());
        assert_eq!(poisson_weights_multi(&[], 1e-9).unwrap().len(), 0);
    }

    #[test]
    fn ln_factorial_is_accurate_across_the_switchover() {
        // Compare both branches against an exact log-sum reference.
        for n in [0, 1, 2, 10, 255, 256, 300, 1000, 5000] {
            let reference: f64 = (2..=n).map(|k| (k as f64).ln()).sum();
            let relative = if reference > 0.0 {
                (ln_factorial(n) - reference).abs() / reference
            } else {
                ln_factorial(n).abs()
            };
            assert!(relative < 1e-13, "n = {n}: relative error {relative}");
        }
    }
}
