//! Flat CSR value-iteration kernel for CTMDP transient analysis.
//!
//! Every query the engine answers bottoms out in the uniformisation /
//! value-iteration passes of [`crate::ctmdp`].  The naive relax loop there
//! chases per-state `Vec<(target, rate)>` allocations; this module lowers the
//! Markovian choices into a flat CSR-style layout once per model so the inner
//! relax runs over contiguous arrays, and adds two levers on top:
//!
//! * **Lane batching** — K independent rate assignments of one shared
//!   structure (a parametric rate sweep) iterate as K *lanes* of a
//!   structure-of-arrays value block: values are stored state-major
//!   (`value[s·K + k]`), edge rates lane-major per edge (`rates[e·K + k]`),
//!   and one traversal of the structure relaxes every lane at once.  Each
//!   lane keeps its *own* uniformisation rate, so its floating-point op
//!   sequence is exactly the scalar sequence — batched results are
//!   bit-identical per lane — while the Poisson windows are deduplicated
//!   across the batch ([`crate::poisson::poisson_weights_multi`]).
//! * **Multi-threaded relax** — for large models the per-step relax is split
//!   across disjoint state ranges.  Each state's next value is computed
//!   independently in a fixed operation order, workers write only their own
//!   chunk, and the chunks are reassembled in index order on the coordinating
//!   thread — so results are bit-identical to the sequential pass and
//!   invariant under the worker count.  The immediate-state fixpoint and the
//!   Poisson accumulation stay sequential (they are a negligible fraction of
//!   the work and their order is part of the determinism contract).
//!
//! The kernel is the production path of [`crate::Ctmdp`]'s reachability
//! methods; the original nested-loop implementation is kept as
//! [`crate::Ctmdp::reachability_extremal_multi_legacy`] and serves as the
//! reference in differential tests.

use crate::ctmdp::CtmdpState;
use crate::poisson::{poisson_weights_multi, PoissonWeights};
use crate::{Error, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Process-wide cap on relax workers; 0 means "derive from the host".
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Total relax passes executed (one per uniformised step per reachability
/// call, threaded or not).
static RELAX_PASSES: AtomicU64 = AtomicU64::new(0);
/// Relax passes that ran on more than one worker.
static THREADED_PASSES: AtomicU64 = AtomicU64::new(0);
/// Reachability calls that batched more than one lane.
static BATCHED_CALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative counters of kernel activity, for service accounting.
///
/// The counters are process-global and monotonically increasing; a service
/// exposes deltas between snapshots.  They never influence results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Relax passes executed (one per uniformised step of every call).
    pub relax_passes: u64,
    /// Relax passes that were split across more than one worker.
    pub threaded_passes: u64,
    /// Reachability calls that batched more than one lane.
    pub batched_calls: u64,
}

/// Snapshot of the process-wide kernel counters.
pub fn stats() -> KernelStats {
    KernelStats {
        relax_passes: RELAX_PASSES.load(Ordering::Relaxed),
        threaded_passes: THREADED_PASSES.load(Ordering::Relaxed),
        batched_calls: BATCHED_CALLS.load(Ordering::Relaxed),
    }
}

/// Caps the number of worker threads [`RelaxKernel::auto_workers`] may choose,
/// process-wide.  `0` restores the default (host parallelism, capped at 8).
///
/// A service whose own pool already saturates the host sets this to
/// `cores / pool_size` so nested parallelism cannot oversubscribe.  The cap
/// only changes *how fast* a pass runs — results are worker-count-invariant.
pub fn set_max_workers(cap: usize) {
    MAX_WORKERS.store(cap, Ordering::Relaxed);
}

/// The effective worker cap: the value of [`set_max_workers`], or host
/// parallelism capped at 8 when unset.
pub fn max_workers() -> usize {
    match MAX_WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8),
        cap => cap,
    }
}

/// A CTMDP lowered into flat CSR arrays, ready for (optionally batched and
/// multi-threaded) value iteration.
///
/// `row_ptr[s]..row_ptr[s+1]` indexes the Markovian edges of state `s` into
/// `cols`/`rates`; `choice_ptr[s]..choice_ptr[s+1]` indexes the immediate
/// successors into `choice_cols`.  A state with `immediate[s]` resolves by the
/// scheduler fixpoint; all other states relax their Markovian row (an empty
/// row means the state is absorbing and keeps its value).  With `lanes > 1`
/// the structure is shared and `rates` carries one rate per edge *per lane*,
/// lane-major per edge.
#[derive(Debug, Clone)]
pub struct RelaxKernel {
    num_states: usize,
    lanes: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    /// Edge rates, `rates[e * lanes + k]` for edge `e`, lane `k`.
    rates: Vec<f64>,
    /// Exit rates, `exit[s * lanes + k]`, summed in row order (the exact
    /// summation order of the legacy relax, so precomputing changes no bits).
    exit: Vec<f64>,
    choice_ptr: Vec<usize>,
    choice_cols: Vec<u32>,
    immediate: Vec<bool>,
}

impl RelaxKernel {
    /// Lowers a validated CTMDP state vector into the flat layout
    /// (single-lane).
    ///
    /// The states must satisfy the invariants of [`crate::Ctmdp::new`]
    /// (in-range targets, finite positive rates); this is the cached builder
    /// [`crate::Ctmdp`] invokes once per model.
    pub fn from_states(states: &[CtmdpState]) -> RelaxKernel {
        let n = states.len();
        let mut kernel = RelaxKernel {
            num_states: n,
            lanes: 1,
            row_ptr: Vec::with_capacity(n + 1),
            cols: Vec::new(),
            rates: Vec::new(),
            exit: Vec::with_capacity(n),
            choice_ptr: Vec::with_capacity(n + 1),
            choice_cols: Vec::new(),
            immediate: Vec::with_capacity(n),
        };
        kernel.row_ptr.push(0);
        kernel.choice_ptr.push(0);
        for st in states {
            match st {
                CtmdpState::Markovian(row) => {
                    let mut exit = 0.0f64;
                    for &(target, rate) in row {
                        kernel.cols.push(target);
                        kernel.rates.push(rate);
                        exit += rate;
                    }
                    kernel.exit.push(exit);
                    kernel.immediate.push(false);
                }
                CtmdpState::Immediate(succs) => {
                    kernel.choice_cols.extend_from_slice(succs);
                    kernel.exit.push(0.0);
                    kernel.immediate.push(true);
                }
            }
            kernel.row_ptr.push(kernel.cols.len());
            kernel.choice_ptr.push(kernel.choice_cols.len());
        }
        kernel
    }

    /// Lowers a shared structure plus `lanes` independent rate assignments
    /// into one batched kernel.
    ///
    /// `template` provides the structure (its own Markovian rates are
    /// ignored); `lane_rates[e * lanes + k]` is the rate of the `e`-th
    /// Markovian edge — counted in state order, row order within a state —
    /// under lane `k`.  This is how a parametric sweep batches K valuations
    /// of one closed model into a single traversal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] for an out-of-range target,
    /// [`Error::DimensionMismatch`] if `lane_rates` does not hold exactly
    /// `edges × lanes` entries (or `lanes` is zero), and
    /// [`Error::InvalidValue`] for a rate that is not finite and strictly
    /// positive.
    pub fn from_template(
        template: &[CtmdpState],
        lane_rates: &[f64],
        lanes: usize,
    ) -> Result<RelaxKernel> {
        let n = template.len();
        if lanes == 0 {
            return Err(Error::DimensionMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let edges: usize = template
            .iter()
            .map(|st| match st {
                CtmdpState::Markovian(row) => row.len(),
                CtmdpState::Immediate(_) => 0,
            })
            .sum();
        if lane_rates.len() != edges * lanes {
            return Err(Error::DimensionMismatch {
                expected: edges * lanes,
                actual: lane_rates.len(),
            });
        }
        for &rate in lane_rates {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(Error::InvalidValue { value: rate });
            }
        }
        let mut kernel = RelaxKernel {
            num_states: n,
            lanes,
            row_ptr: Vec::with_capacity(n + 1),
            cols: Vec::with_capacity(edges),
            rates: Vec::with_capacity(edges * lanes),
            exit: vec![0.0; n * lanes],
            choice_ptr: Vec::with_capacity(n + 1),
            choice_cols: Vec::new(),
            immediate: Vec::with_capacity(n),
        };
        kernel.row_ptr.push(0);
        kernel.choice_ptr.push(0);
        let mut edge = 0usize;
        for (s, st) in template.iter().enumerate() {
            match st {
                CtmdpState::Markovian(row) => {
                    for &(target, _) in row {
                        if target as usize >= n {
                            return Err(Error::InvalidState {
                                state: target,
                                num_states: n as u32,
                            });
                        }
                        kernel.cols.push(target);
                        let lane_row = &lane_rates[edge * lanes..(edge + 1) * lanes];
                        kernel.rates.extend_from_slice(lane_row);
                        for (k, &rate) in lane_row.iter().enumerate() {
                            kernel.exit[s * lanes + k] += rate;
                        }
                        edge += 1;
                    }
                    kernel.immediate.push(false);
                }
                CtmdpState::Immediate(succs) => {
                    for &target in succs {
                        if target as usize >= n {
                            return Err(Error::InvalidState {
                                state: target,
                                num_states: n as u32,
                            });
                        }
                        kernel.choice_cols.push(target);
                    }
                    kernel.immediate.push(true);
                }
            }
            kernel.row_ptr.push(kernel.cols.len());
            kernel.choice_ptr.push(kernel.choice_cols.len());
        }
        Ok(kernel)
    }

    /// Number of states of the lowered model.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of value lanes iterated per traversal.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of Markovian edges of the shared structure.
    pub fn num_edges(&self) -> usize {
        self.cols.len()
    }

    /// Per-lane uniformisation rates: the maximal exit rate of each lane,
    /// folded in state order exactly like the legacy scalar path.
    pub fn uniformisation_rates(&self) -> Vec<f64> {
        let mut lambdas = vec![0.0f64; self.lanes];
        for (k, lambda) in lambdas.iter_mut().enumerate() {
            *lambda = (0..self.num_states)
                .map(|s| self.exit[s * self.lanes + k])
                .fold(0.0, f64::max);
        }
        lambdas
    }

    /// Chooses a worker count for [`reachability`](Self::reachability): 1 for
    /// models too small to amortize thread hand-off, otherwise proportional
    /// to the per-pass work, capped by [`max_workers`] and the state count.
    ///
    /// The choice never affects results — only wall-clock.
    pub fn auto_workers(&self) -> usize {
        // One relax pass touches every edge-lane once and every state-lane a
        // couple of times; 32k units is roughly the point where a pass stops
        // being memory-latency-bound enough for a second thread to pay off.
        const WORK_PER_WORKER: usize = 1 << 15;
        let work = self.rates.len() + self.num_states * self.lanes;
        if work < 2 * WORK_PER_WORKER {
            return 1;
        }
        (work / WORK_PER_WORKER)
            .min(max_workers())
            .min(self.num_states)
            .max(1)
    }

    /// Extremal time-bounded reachability for every lane and every time
    /// bound, in one value-iteration pass over the batch.
    ///
    /// Returns values in time-major order: `out[t * lanes + k]` is the
    /// probability for `times[t]` under lane `k`, clamped to `[0, 1]`.  Every
    /// lane is computed with its own uniformisation rate, so each lane's
    /// result is bit-identical to running that lane alone — and, with
    /// `workers == 1`, bit-identical to the legacy nested-loop relax.  For
    /// `workers > 1` the relax is split across disjoint state ranges and
    /// reassembled in index order, which is also bit-identical; the worker
    /// count never changes the bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] for an out-of-range `initial`,
    /// [`Error::DimensionMismatch`] for a wrong `goal` length, and
    /// [`Error::InvalidValue`] for a negative/NaN time bound or an `epsilon`
    /// outside `(0, 1)`.
    pub fn reachability(
        &self,
        initial: usize,
        goal: &[bool],
        times: &[f64],
        epsilon: f64,
        maximise: bool,
        workers: usize,
    ) -> Result<Vec<f64>> {
        let n = self.num_states;
        let l = self.lanes;
        if initial >= n {
            return Err(Error::InvalidState {
                state: initial as u32,
                num_states: n as u32,
            });
        }
        if goal.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: goal.len(),
            });
        }
        for &t in times {
            if !t.is_finite() || t < 0.0 {
                return Err(Error::InvalidValue { value: t });
            }
        }
        if l > 1 {
            BATCHED_CALLS.fetch_add(1, Ordering::Relaxed);
        }

        // Value at "zero remaining steps": goal states count, immediate
        // states resolve instantaneously.
        let mut terminal = vec![0.0f64; n * l];
        for (s, &g) in goal.iter().enumerate() {
            if g {
                terminal[s * l..(s + 1) * l].fill(1.0);
            }
        }
        self.settle_immediate(goal, &mut terminal, maximise);

        let lambdas = self.uniformisation_rates();
        if self.cols.is_empty() {
            // No Markovian edge anywhere: every lane's uniformisation rate is
            // zero (rates are strictly positive, so one edge lifts them all)
            // and the terminal value never moves.
            let mut out = Vec::with_capacity(times.len() * l);
            for _ in times {
                out.extend_from_slice(&terminal[initial * l..(initial + 1) * l]);
            }
            return Ok(out);
        }

        // One Poisson window per (time, lane) mean, deduplicated across the
        // batch: lanes sharing a uniformisation rate (or repeated time
        // bounds) compute their window once.
        let means: Vec<f64> = times
            .iter()
            .flat_map(|&t| lambdas.iter().map(move |&lambda| lambda * t))
            .collect();
        let weights = poisson_weights_multi(&means, epsilon)?;
        let k_max = weights
            .iter()
            .map(|w| w.weights.len() - 1)
            .max()
            .unwrap_or(0);

        // Loop-invariant uniformised coefficients, hoisted out of the relax:
        // identical operations to the legacy per-step divisions, evaluated
        // once.  stay[s·l + k] = 1 - exit/λ_k, jump[e·l + k] = rate/λ_k.
        let mut stay = vec![0.0f64; n * l];
        for s in 0..n {
            for (k, &lambda) in lambdas.iter().enumerate() {
                stay[s * l + k] = 1.0 - self.exit[s * l + k] / lambda;
            }
        }
        let mut jump = vec![0.0f64; self.rates.len()];
        for e in 0..self.cols.len() {
            for (k, &lambda) in lambdas.iter().enumerate() {
                jump[e * l + k] = self.rates[e * l + k] / lambda;
            }
        }

        let ctx = PassCtx {
            stay,
            jump,
            goal,
            weights,
            k_max,
            initial,
            maximise,
        };
        let mut results = vec![0.0f64; times.len() * l];
        if workers <= 1 || n == 0 || k_max == 0 {
            self.iterate_sequential(&ctx, terminal, &mut results);
        } else {
            self.iterate_threaded(&ctx, terminal, &mut results, workers);
        }
        Ok(results.into_iter().map(|r| r.clamp(0.0, 1.0)).collect())
    }

    /// Sequential value iteration: the single-worker driver of
    /// [`reachability`](Self::reachability).
    fn iterate_sequential(&self, ctx: &PassCtx<'_>, terminal: Vec<f64>, results: &mut [f64]) {
        let mut value = terminal;
        let mut next = vec![0.0f64; value.len()];
        accumulate(results, &ctx.weights, 0, &value, ctx.initial, self.lanes);
        for step in 1..=ctx.k_max {
            self.relax_chunk(ctx, &value, 0..self.num_states, &mut next);
            RELAX_PASSES.fetch_add(1, Ordering::Relaxed);
            self.settle_immediate(ctx.goal, &mut next, ctx.maximise);
            std::mem::swap(&mut value, &mut next);
            accumulate(results, &ctx.weights, step, &value, ctx.initial, self.lanes);
        }
    }

    /// Multi-threaded value iteration: `workers` persistent scoped threads
    /// each own a fixed disjoint state range for the whole call.  Per step,
    /// the coordinating thread ships the (shared, read-only) value vector to
    /// every worker, collects their chunk buffers, reassembles `next` in
    /// index order, and runs the immediate fixpoint and Poisson accumulation
    /// itself — so the operation order, and therefore every bit of the
    /// result, matches the sequential driver regardless of the worker count.
    fn iterate_threaded(
        &self,
        ctx: &PassCtx<'_>,
        terminal: Vec<f64>,
        results: &mut [f64],
        workers: usize,
    ) {
        // One relax job: the shared read-only value vector plus the worker's
        // reusable chunk buffer.
        type RelaxJob = (Arc<Vec<f64>>, Vec<f64>);
        let l = self.lanes;
        let chunks = chunk_ranges(self.num_states, workers);
        let workers = chunks.len();
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, Vec<f64>)>();
            let mut job_txs: Vec<mpsc::Sender<RelaxJob>> = Vec::with_capacity(workers);
            for (index, range) in chunks.iter().enumerate() {
                let (job_tx, job_rx) = mpsc::channel::<RelaxJob>();
                job_txs.push(job_tx);
                let res_tx = res_tx.clone();
                let range = range.clone();
                let ctx: &PassCtx<'_> = ctx;
                scope.spawn(move || {
                    while let Ok((value, mut chunk)) = job_rx.recv() {
                        self.relax_chunk(ctx, &value, range.clone(), &mut chunk);
                        // Release the shared value before reporting, so the
                        // coordinator can reclaim the buffer allocation-free
                        // once every chunk has arrived.
                        drop(value);
                        if res_tx.send((index, chunk)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(res_tx);

            let mut value = Arc::new(terminal);
            let mut next = vec![0.0f64; self.num_states * l];
            let mut chunk_bufs: Vec<Option<Vec<f64>>> = chunks
                .iter()
                .map(|r| Some(vec![0.0f64; r.len() * l]))
                .collect();
            accumulate(results, &ctx.weights, 0, &value, ctx.initial, l);
            for step in 1..=ctx.k_max {
                for (tx, buf) in job_txs.iter().zip(chunk_bufs.iter_mut()) {
                    let job = (
                        Arc::clone(&value),
                        buf.take().expect("chunk buffer returned last step"),
                    );
                    tx.send(job).expect("relax worker alive");
                }
                for _ in 0..workers {
                    let (index, chunk) = res_rx.recv().expect("relax worker alive");
                    next[chunks[index].start * l..chunks[index].end * l].copy_from_slice(&chunk);
                    chunk_bufs[index] = Some(chunk);
                }
                RELAX_PASSES.fetch_add(1, Ordering::Relaxed);
                THREADED_PASSES.fetch_add(1, Ordering::Relaxed);
                self.settle_immediate(ctx.goal, &mut next, ctx.maximise);
                // Every worker dropped its Arc clone before reporting, so
                // make_mut reclaims the buffer without cloning.
                std::mem::swap(Arc::make_mut(&mut value), &mut next);
                accumulate(results, &ctx.weights, step, &value, ctx.initial, l);
            }
            drop(job_txs);
        });
    }

    /// One relax step over `range`, writing into `out` (of length
    /// `range.len() × lanes`): goal states pin at 1, immediate states reset
    /// to 0 for the subsequent fixpoint, Markovian states accumulate
    /// `stay·v[s] + Σ jump·v[target]` in row order — the exact operation
    /// sequence of the legacy nested loop, for every lane at once.
    fn relax_chunk(&self, ctx: &PassCtx<'_>, value: &[f64], range: Range<usize>, out: &mut [f64]) {
        let l = self.lanes;
        let base = range.start;
        for s in range {
            let dst = &mut out[(s - base) * l..(s - base + 1) * l];
            if ctx.goal[s] {
                dst.fill(1.0);
                continue;
            }
            if self.immediate[s] {
                dst.fill(0.0);
                continue;
            }
            let src = &value[s * l..(s + 1) * l];
            let stay = &ctx.stay[s * l..(s + 1) * l];
            for k in 0..l {
                dst[k] = stay[k] * src[k];
            }
            for e in self.row_ptr[s]..self.row_ptr[s + 1] {
                let target = self.cols[e] as usize * l;
                let tv = &value[target..target + l];
                let jump = &ctx.jump[e * l..(e + 1) * l];
                for k in 0..l {
                    dst[k] += jump[k] * tv[k];
                }
            }
        }
    }

    /// Resolves immediate states by iterating the scheduler optimisation to a
    /// fixpoint, per lane, in state order — the batched form of the legacy
    /// `settle_immediate`.  Lanes are independent: a lane that has settled is
    /// left untouched by the extra rounds another lane may need, so each
    /// lane's bits match a solo run.
    fn settle_immediate(&self, goal: &[bool], value: &mut [f64], maximise: bool) {
        let n = self.num_states;
        let l = self.lanes;
        for _ in 0..n {
            let mut changed = false;
            for s in 0..n {
                if goal[s] || !self.immediate[s] {
                    continue;
                }
                let (lo, hi) = (self.choice_ptr[s], self.choice_ptr[s + 1]);
                if lo == hi {
                    continue;
                }
                for k in 0..l {
                    let candidate = self.choice_cols[lo..hi]
                        .iter()
                        .map(|&t| value[t as usize * l + k])
                        .fold(
                            if maximise {
                                f64::NEG_INFINITY
                            } else {
                                f64::INFINITY
                            },
                            |a, b| if maximise { a.max(b) } else { a.min(b) },
                        );
                    if (candidate - value[s * l + k]).abs() > 1e-15 {
                        value[s * l + k] = candidate;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// The loop-invariant context of one reachability call.
struct PassCtx<'a> {
    stay: Vec<f64>,
    jump: Vec<f64>,
    goal: &'a [bool],
    /// Time-major Poisson windows: `weights[t * lanes + k]`.
    weights: Vec<PoissonWeights>,
    k_max: usize,
    initial: usize,
    maximise: bool,
}

/// Adds step `step`'s Poisson-weighted contribution of the initial state to
/// every (time, lane) accumulator.
fn accumulate(
    results: &mut [f64],
    weights: &[PoissonWeights],
    step: usize,
    value: &[f64],
    initial: usize,
    lanes: usize,
) {
    let at_initial = &value[initial * lanes..(initial + 1) * lanes];
    for (result, w) in results.chunks_exact_mut(lanes).zip(weights.chunks(lanes)) {
        for k in 0..lanes {
            if let Some(&weight) = w[k].weights.get(step) {
                result[k] += weight * at_initial[k];
            }
        }
    }
}

/// Splits `0..n` into at most `workers` contiguous, near-equal ranges.
fn chunk_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.min(n).max(1);
    let base = n / workers;
    let remainder = n % workers;
    let mut start = 0usize;
    (0..workers)
        .map(|i| {
            let len = base + usize::from(i < remainder);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ctmdp;

    /// Deterministic xorshift64*; good enough to generate varied models.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
    }

    /// A random small CTMDP: mixed Markovian/immediate states, some goals.
    /// Kept tiny (n ≤ 32) so the whole module stays Miri-friendly.
    fn random_ctmdp(seed: u64, n: usize) -> Ctmdp {
        let mut rng = Rng(seed | 1);
        let states = (0..n)
            .map(|_| {
                if rng.unit() < 0.7 {
                    let edges = rng.below(5);
                    CtmdpState::Markovian(
                        (0..edges)
                            .map(|_| (rng.below(n) as u32, 0.1 + 2.9 * rng.unit()))
                            .collect(),
                    )
                } else {
                    let succs = rng.below(4);
                    CtmdpState::Immediate((0..succs).map(|_| rng.below(n) as u32).collect())
                }
            })
            .collect();
        let goal = (0..n).map(|_| rng.unit() < 0.2).collect();
        Ctmdp::new(states, rng.below(n), goal).unwrap()
    }

    const TIMES: [f64; 3] = [0.0, 0.3, 1.1];

    #[test]
    fn builder_lowers_the_layout_faithfully() {
        let states = vec![
            CtmdpState::Markovian(vec![(1, 0.5), (2, 1.5)]),
            CtmdpState::Immediate(vec![0, 2]),
            CtmdpState::Markovian(vec![]),
        ];
        let k = RelaxKernel::from_states(&states);
        assert_eq!(k.num_states(), 3);
        assert_eq!(k.lanes(), 1);
        assert_eq!(k.num_edges(), 2);
        assert_eq!(k.row_ptr, vec![0, 2, 2, 2]);
        assert_eq!(k.cols, vec![1, 2]);
        assert_eq!(k.rates, vec![0.5, 1.5]);
        assert_eq!(k.exit, vec![2.0, 0.0, 0.0]);
        assert_eq!(k.choice_ptr, vec![0, 0, 2, 2]);
        assert_eq!(k.choice_cols, vec![0, 2]);
        assert_eq!(k.immediate, vec![false, true, false]);
        assert_eq!(k.uniformisation_rates(), vec![2.0]);
    }

    #[test]
    fn template_builder_validates_its_inputs() {
        let template = vec![
            CtmdpState::Markovian(vec![(1, 1.0)]),
            CtmdpState::Markovian(vec![]),
        ];
        assert!(RelaxKernel::from_template(&template, &[1.0, 2.0], 2).is_ok());
        // Zero lanes, wrong rate count, non-positive and non-finite rates.
        assert!(RelaxKernel::from_template(&template, &[], 0).is_err());
        assert!(RelaxKernel::from_template(&template, &[1.0], 2).is_err());
        assert!(RelaxKernel::from_template(&template, &[1.0, 0.0], 2).is_err());
        assert!(RelaxKernel::from_template(&template, &[1.0, f64::NAN], 2).is_err());
        // Out-of-range Markovian and immediate targets.
        let bad = vec![CtmdpState::Markovian(vec![(7, 1.0)])];
        assert!(RelaxKernel::from_template(&bad, &[1.0], 1).is_err());
        let bad = vec![CtmdpState::Immediate(vec![7])];
        assert!(RelaxKernel::from_template(&bad, &[], 1).is_err());
    }

    #[test]
    fn reachability_validates_its_inputs() {
        let k = RelaxKernel::from_states(&[CtmdpState::Markovian(vec![(0, 1.0)])]);
        assert!(k.reachability(1, &[false], &TIMES, 1e-9, true, 1).is_err());
        assert!(k
            .reachability(0, &[false, true], &TIMES, 1e-9, true, 1)
            .is_err());
        assert!(k.reachability(0, &[false], &[-1.0], 1e-9, true, 1).is_err());
        assert!(k
            .reachability(0, &[false], &[f64::NAN], 1e-9, true, 1)
            .is_err());
        assert!(k.reachability(0, &[false], &TIMES, 0.0, true, 1).is_err());
    }

    #[test]
    fn kernel_matches_legacy_bit_for_bit_on_random_models() {
        for seed in [3u64, 17, 2026, 0xBEEF] {
            let mdp = random_ctmdp(seed, 24);
            for maximise in [false, true] {
                let legacy = mdp
                    .reachability_extremal_multi_legacy(&TIMES, 1e-10, maximise)
                    .unwrap();
                let fast = if maximise {
                    mdp.reachability_max_multi(&TIMES, 1e-10).unwrap()
                } else {
                    mdp.reachability_min_multi(&TIMES, 1e-10).unwrap()
                };
                for (a, b) in legacy.iter().zip(&fast) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} max {maximise}");
                }
            }
        }
    }

    #[test]
    fn batched_lanes_match_scalar_models_bit_for_bit() {
        // One shared structure, three rate scalings: lane k must reproduce a
        // standalone Ctmdp with the same rates exactly.
        let mdp = random_ctmdp(42, 20);
        let scales = [1.0, 1.35, 0.8];
        let lanes = scales.len();
        let edges: Vec<(usize, u32, f64)> = mdp
            .states()
            .iter()
            .enumerate()
            .flat_map(|(s, st)| match st {
                CtmdpState::Markovian(row) => row.iter().map(move |&(t, r)| (s, t, r)).collect(),
                CtmdpState::Immediate(_) => Vec::new(),
            })
            .collect();
        let mut lane_rates = Vec::with_capacity(edges.len() * lanes);
        for &(_, _, r) in &edges {
            for &scale in &scales {
                lane_rates.push(r * scale);
            }
        }
        let kernel = RelaxKernel::from_template(mdp.states(), &lane_rates, lanes).unwrap();
        for workers in [1usize, 3] {
            let batched = kernel
                .reachability(mdp.initial(), mdp.goal(), &TIMES, 1e-10, true, workers)
                .unwrap();
            for (k, &scale) in scales.iter().enumerate() {
                let scaled = Ctmdp::new(
                    mdp.states()
                        .iter()
                        .map(|st| match st {
                            CtmdpState::Markovian(row) => CtmdpState::Markovian(
                                row.iter().map(|&(t, r)| (t, r * scale)).collect(),
                            ),
                            CtmdpState::Immediate(s) => CtmdpState::Immediate(s.clone()),
                        })
                        .collect(),
                    mdp.initial(),
                    mdp.goal().to_vec(),
                )
                .unwrap();
                let solo = scaled.reachability_max_multi(&TIMES, 1e-10).unwrap();
                for (t, s) in solo.iter().enumerate() {
                    assert_eq!(
                        batched[t * lanes + k].to_bits(),
                        s.to_bits(),
                        "lane {k} time {t} workers {workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn worker_count_never_changes_the_bits() {
        for seed in [5u64, 99] {
            let mdp = random_ctmdp(seed, 32);
            let kernel = RelaxKernel::from_states(mdp.states());
            for maximise in [false, true] {
                let reference = kernel
                    .reachability(mdp.initial(), mdp.goal(), &TIMES, 1e-9, maximise, 1)
                    .unwrap();
                for workers in [2usize, 4] {
                    let threaded = kernel
                        .reachability(mdp.initial(), mdp.goal(), &TIMES, 1e-9, maximise, workers)
                        .unwrap();
                    for (a, b) in reference.iter().zip(&threaded) {
                        assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} workers {workers}");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_kernel_agrees_with_the_ctmc_solver() {
        // A strictly Markovian random model is a CTMC in disguise; the CTMDP
        // kernel and the dedicated CTMC solver must agree to solver tolerance.
        let mut rng = Rng(7);
        let n = 12usize;
        let mut transitions = Vec::new();
        for s in 0..n {
            for _ in 0..1 + rng.below(3) {
                let t = rng.below(n);
                if t != s {
                    transitions.push((s as u32, t as u32, 0.2 + 2.0 * rng.unit()));
                }
            }
        }
        let goal_states: Vec<bool> = (0..n).map(|s| s >= n - 3).collect();
        let mut states: Vec<CtmdpState> = (0..n).map(|_| CtmdpState::Markovian(vec![])).collect();
        for &(s, t, r) in &transitions {
            // Goal states are absorbing in the reachability formulation.
            if !goal_states[s as usize] {
                if let CtmdpState::Markovian(row) = &mut states[s as usize] {
                    row.push((t, r));
                }
            }
        }
        let mdp = Ctmdp::new(states, 0, goal_states.clone()).unwrap();
        assert!(mdp.is_deterministic());
        let absorbed: Vec<(u32, u32, f64)> = transitions
            .iter()
            .copied()
            .filter(|&(s, _, _)| !goal_states[s as usize])
            .collect();
        let ctmc = crate::Ctmc::from_transitions(n, 0, &absorbed).unwrap();
        let via_ctmc = ctmc
            .reachability_multi(&goal_states, &TIMES, 1e-10)
            .unwrap();
        let via_kernel = mdp.reachability_max_multi(&TIMES, 1e-10).unwrap();
        for (a, b) in via_ctmc.iter().zip(&via_kernel) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn no_markovian_edges_short_circuits_like_legacy() {
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Immediate(vec![1]),
                CtmdpState::Immediate(vec![]),
            ],
            0,
            vec![false, false],
        )
        .unwrap();
        // Epsilon is not validated on this path, matching the legacy shortcut.
        let r = mdp.reachability_max_multi(&TIMES, 0.0).unwrap();
        assert_eq!(r, vec![0.0; TIMES.len()]);
        let legacy = mdp
            .reachability_extremal_multi_legacy(&TIMES, 0.0, true)
            .unwrap();
        assert_eq!(r, legacy);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 32] {
            for workers in [1usize, 2, 3, 8, 40] {
                let ranges = chunk_ranges(n, workers);
                assert!(!ranges.is_empty() || n == 0 || workers == 0);
                let mut expected = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expected);
                    expected = r.end;
                }
                assert_eq!(expected, n);
                assert!(ranges.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn auto_workers_stays_sequential_for_small_models() {
        let k = RelaxKernel::from_states(&[CtmdpState::Markovian(vec![(0, 1.0)])]);
        assert_eq!(k.auto_workers(), 1);
    }

    #[test]
    fn stats_and_worker_cap_round_trip() {
        let before = stats();
        let mdp = random_ctmdp(11, 16);
        let kernel = RelaxKernel::from_states(mdp.states());
        kernel
            .reachability(mdp.initial(), mdp.goal(), &[0.5], 1e-9, true, 2)
            .unwrap();
        let after = stats();
        assert!(after.relax_passes > before.relax_passes);
        assert!(after.threaded_passes > before.threaded_passes);
        // The cap setter round-trips and 0 restores the host default.
        set_max_workers(3);
        assert_eq!(max_workers(), 3);
        set_max_workers(0);
        assert!(max_workers() >= 1);
    }
}
