//! # markov — numerical analysis of CTMCs and CTMDPs
//!
//! The final model produced by compositional aggregation of a dynamic fault tree is
//! a continuous-time Markov chain (CTMC) or, when immediate non-determinism
//! remains, a continuous-time Markov decision process (CTMDP).  This crate solves
//! the two measures the paper reports:
//!
//! * **Unreliability** — the probability that a set of goal ("failed") states is
//!   reached within the mission time, computed by uniformisation
//!   ([`Ctmc::reachability`]).  For CTMDPs, [`Ctmdp::reachability_bounds`] computes
//!   minimum and maximum probabilities over time-abstract schedulers with the
//!   value-iteration scheme of Baier, Hermanns, Katoen & Haverkort (2005), which
//!   the paper cites as its CTMDP back-end.
//! * **Unavailability** — the long-run fraction of time spent in "down" states of a
//!   repairable system, computed from the steady-state distribution
//!   ([`steady::steady_state`]).
//!
//! The crate is self-contained (sparse matrices, Poisson weights) so that the rest
//! of the workspace has no numerical dependencies.
//!
//! # Example
//!
//! A two-state repairable component with failure rate 1 and repair rate 10:
//!
//! ```
//! use markov::ctmc::Ctmc;
//! use markov::steady::steady_state;
//!
//! let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0), (1, 0, 10.0)]).unwrap();
//! // Unreliability at t = 0.5 (failure treated as absorbing).
//! let unrel = ctmc.reachability(&[false, true], 0.5, 1e-9).unwrap();
//! assert!(unrel > 0.0 && unrel < 1.0);
//! // Long-run unavailability is 1/11.
//! let pi = steady_state(&ctmc, 1e-12).unwrap();
//! assert!((pi[1] - 1.0 / 11.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctmc;
pub mod ctmdp;
pub mod kernel;
pub mod mttf;
pub mod poisson;
pub mod sparse;
pub mod steady;

pub use ctmc::Ctmc;
pub use ctmdp::{Ctmdp, CtmdpState};
pub use kernel::RelaxKernel;
pub use sparse::CsrMatrix;

use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A state index was out of range.
    InvalidState {
        /// The offending index.
        state: u32,
        /// Number of states in the model.
        num_states: u32,
    },
    /// A rate or probability was negative, NaN or infinite.
    InvalidValue {
        /// The offending value.
        value: f64,
    },
    /// The goal/label vector has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The model has no transitions at all, so the requested measure is undefined.
    EmptyModel,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidState { state, num_states } => {
                write!(
                    f,
                    "state {state} out of range (model has {num_states} states)"
                )
            }
            Error::InvalidValue { value } => write!(f, "invalid rate or probability {value}"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::NoConvergence { iterations } => {
                write!(
                    f,
                    "iterative method did not converge after {iterations} iterations"
                )
            }
            Error::EmptyModel => write!(f, "model has no transitions"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
