//! Continuous-time Markov chains and transient (uniformisation) analysis.

use crate::poisson::{poisson_weights, poisson_weights_multi};
use crate::sparse::CsrMatrix;
use crate::{Error, Result};

/// A continuous-time Markov chain with a single initial state.
///
/// The chain is stored as a rate matrix of off-diagonal entries; absorbing states
/// simply have no outgoing transitions.
#[derive(Debug, Clone)]
pub struct Ctmc {
    num_states: usize,
    initial: usize,
    rates: CsrMatrix,
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Builds a CTMC from `(from, to, rate)` transitions.
    ///
    /// Self-loop transitions are ignored (they have no observable effect on a
    /// CTMC); duplicate transitions are summed.
    ///
    /// # Errors
    ///
    /// Returns an error if a state index is out of range, a rate is not finite and
    /// strictly positive, or the initial state is out of range.
    pub fn from_transitions(
        num_states: usize,
        initial: usize,
        transitions: &[(u32, u32, f64)],
    ) -> Result<Ctmc> {
        if initial >= num_states {
            return Err(Error::InvalidState {
                state: initial as u32,
                num_states: num_states as u32,
            });
        }
        for &(_, _, rate) in transitions {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(Error::InvalidValue { value: rate });
            }
        }
        let filtered: Vec<(u32, u32, f64)> = transitions
            .iter()
            .copied()
            .filter(|&(f, t, _)| f != t)
            .collect();
        let rates = CsrMatrix::from_triplets(num_states, num_states, &filtered)?;
        let exit_rates = (0..num_states).map(|s| rates.row_sum(s)).collect();
        Ok(Ctmc {
            num_states,
            initial,
            rates,
            exit_rates,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of (off-diagonal) transitions.
    pub fn num_transitions(&self) -> usize {
        self.rates.num_entries()
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The rate matrix (off-diagonal entries only).
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// The transitions as `(from, to, rate)` triplets, in row-major (CSR)
    /// order.
    ///
    /// This is the externalizable form of the chain: feeding the triplets
    /// back into [`from_transitions`](Self::from_transitions) with the same
    /// state count and initial state reconstructs a chain that answers every
    /// transient/steady-state query bit-identically (the triplets are already
    /// deduplicated and self-loop-free, so re-assembly changes nothing) —
    /// which is how the persistent model cache serializes monolithic models.
    pub fn transitions(&self) -> Vec<(u32, u32, f64)> {
        let mut triplets = Vec::with_capacity(self.num_transitions());
        for s in 0..self.num_states {
            let (cols, vals) = self.rates.row(s);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((s as u32, c, v));
            }
        }
        triplets
    }

    /// Total exit rate of `state`.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit_rates[state]
    }

    /// The largest exit rate, used as the uniformisation constant.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Builds the uniformised DTMC `P = I + Q / lambda` as a sparse matrix.
    ///
    /// `lambda` must be at least the maximal exit rate.
    fn uniformised(&self, lambda: f64) -> Result<CsrMatrix> {
        let mut triplets: Vec<(u32, u32, f64)> =
            Vec::with_capacity(self.num_transitions() + self.num_states);
        for s in 0..self.num_states {
            let (cols, vals) = self.rates.row(s);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((s as u32, c, v / lambda));
            }
            let stay = 1.0 - self.exit_rates[s] / lambda;
            if stay > 0.0 {
                triplets.push((s as u32, s as u32, stay));
            }
        }
        CsrMatrix::from_triplets(self.num_states, self.num_states, &triplets)
    }

    /// Computes the transient state distribution at time `t` starting from the
    /// initial state, with truncation error bounded by `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for negative/NaN `t` or an `epsilon` outside
    /// `(0, 1)`.
    pub fn transient(&self, t: f64, epsilon: f64) -> Result<Vec<f64>> {
        if !t.is_finite() || t < 0.0 {
            return Err(Error::InvalidValue { value: t });
        }
        let mut pi = vec![0.0; self.num_states];
        pi[self.initial] = 1.0;
        if t == 0.0 {
            return Ok(pi);
        }
        let lambda = self.max_exit_rate();
        if lambda == 0.0 {
            // No transitions anywhere: distribution never changes.
            return Ok(pi);
        }
        let p = self.uniformised(lambda)?;
        let weights = poisson_weights(lambda * t, epsilon)?;
        let mut result = vec![0.0; self.num_states];
        let mut current = pi;
        // Ping-pong buffer for the power sequence: no per-step allocation.
        let mut scratch = vec![0.0; self.num_states];
        for (k, &w) in weights.weights.iter().enumerate() {
            if k > 0 {
                p.vec_mul_into(&current, &mut scratch)?;
                std::mem::swap(&mut current, &mut scratch);
            }
            if w > 0.0 {
                for (r, &c) in result.iter_mut().zip(current.iter()) {
                    *r += w * c;
                }
            }
        }
        Ok(result)
    }

    /// Probability of reaching a `goal` state within time `t` (time-bounded
    /// reachability).  Goal states are made absorbing, so the result is the
    /// cumulative probability of having *ever* visited a goal state by time `t` —
    /// exactly the unreliability measure of a DFT whose goal states are the system
    /// failure states.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `goal.len() != num_states`, and the
    /// same errors as [`transient`](Self::transient) otherwise.
    pub fn reachability(&self, goal: &[bool], t: f64, epsilon: f64) -> Result<f64> {
        Ok(self.reachability_multi(goal, &[t], epsilon)?[0])
    }

    /// [`reachability`](Self::reachability) for many time bounds in a *single*
    /// uniformisation pass.
    ///
    /// The Poisson-weighted sum of uniformised matrix powers shares the power
    /// sequence between all time bounds — only the weights differ — so a whole
    /// mission-time sweep costs one pass to the largest truncation point instead of
    /// one pass per point.  Results are returned in the same order as `times`; a
    /// single-element slice produces bit-identical values to the single-time
    /// method.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `goal.len() != num_states`, and
    /// [`Error::InvalidValue`] for a negative/NaN time bound or an `epsilon`
    /// outside `(0, 1)`.
    pub fn reachability_multi(
        &self,
        goal: &[bool],
        times: &[f64],
        epsilon: f64,
    ) -> Result<Vec<f64>> {
        if goal.len() != self.num_states {
            return Err(Error::DimensionMismatch {
                expected: self.num_states,
                actual: goal.len(),
            });
        }
        for &t in times {
            if !t.is_finite() || t < 0.0 {
                return Err(Error::InvalidValue { value: t });
            }
        }
        // Make goal states absorbing, so "being in a goal state at time t" equals
        // "having ever visited one by time t".
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        for (s, _) in goal.iter().enumerate().filter(|&(_, &g)| !g) {
            let (cols, vals) = self.rates.row(s);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((s as u32, c, v));
            }
        }
        let rates = CsrMatrix::from_triplets(self.num_states, self.num_states, &triplets)?;
        let exit_rates: Vec<f64> = (0..self.num_states).map(|s| rates.row_sum(s)).collect();
        let absorbed = Ctmc {
            num_states: self.num_states,
            initial: self.initial,
            rates,
            exit_rates,
        };

        let mut current = vec![0.0; self.num_states];
        current[absorbed.initial] = 1.0;
        let lambda = absorbed.max_exit_rate();
        let goal_mass = |pi: &[f64]| -> f64 {
            goal.iter()
                .zip(pi.iter())
                .filter(|&(&g, _)| g)
                .map(|(_, &p)| p)
                .sum()
        };
        if lambda == 0.0 {
            // Every non-goal state is absorbing too: the distribution never moves.
            return Ok(vec![goal_mass(&current); times.len()]);
        }
        // Validate epsilon eagerly (even for an empty sweep) via a throwaway call.
        poisson_weights(0.0, epsilon)?;

        let p = absorbed.uniformised(lambda)?;
        // One Poisson window per distinct mean: repeated time bounds (and the
        // t = 0 degenerate window) are computed once and shared.
        let means: Vec<f64> = times.iter().map(|&t| lambda * t).collect();
        let weights = poisson_weights_multi(&means, epsilon)?;
        let k_max = weights
            .iter()
            .map(|w| w.weights.len() - 1)
            .max()
            .unwrap_or(0);

        let mut results = vec![0.0; times.len()];
        let mut scratch = vec![0.0; self.num_states];
        for k in 0..=k_max {
            if k > 0 {
                p.vec_mul_into(&current, &mut scratch)?;
                std::mem::swap(&mut current, &mut scratch);
            }
            let mass = goal_mass(&current);
            for (result, w) in results.iter_mut().zip(weights.iter()) {
                if let Some(&weight) = w.weights.get(k) {
                    *result += weight * mass;
                }
            }
        }
        Ok(results.into_iter().map(|r| r.clamp(0.0, 1.0)).collect())
    }

    /// Probability of *ever* reaching a `goal` state (unbounded reachability),
    /// computed by value iteration on the embedded jump chain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong goal length or
    /// [`Error::NoConvergence`] if value iteration does not converge.
    pub fn reachability_unbounded(&self, goal: &[bool], tolerance: f64) -> Result<f64> {
        if goal.len() != self.num_states {
            return Err(Error::DimensionMismatch {
                expected: self.num_states,
                actual: goal.len(),
            });
        }
        let mut value: Vec<f64> = goal.iter().map(|&g| if g { 1.0 } else { 0.0 }).collect();
        let mut next = vec![0.0; self.num_states];
        let max_iter = 100_000;
        for _ in 0..max_iter {
            let mut delta: f64 = 0.0;
            next.copy_from_slice(&value);
            for s in 0..self.num_states {
                if goal[s] || self.exit_rates[s] == 0.0 {
                    continue;
                }
                let (cols, vals) = self.rates.row(s);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v / self.exit_rates[s] * value[c as usize];
                }
                delta = delta.max((acc - value[s]).abs());
                next[s] = acc;
            }
            std::mem::swap(&mut value, &mut next);
            if delta < tolerance {
                return Ok(value[self.initial]);
            }
        }
        Err(Error::NoConvergence {
            iterations: max_iter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_round_trip_through_from_transitions() {
        // Duplicates sum and self-loops drop on construction, so the exported
        // triplets are canonical: re-assembly is exact, down to the bits.
        let ctmc =
            Ctmc::from_transitions(3, 0, &[(0, 1, 0.3), (0, 1, 0.4), (1, 1, 9.0), (1, 2, 2.0)])
                .unwrap();
        let triplets = ctmc.transitions();
        assert_eq!(triplets, vec![(0, 1, 0.3 + 0.4), (1, 2, 2.0)]);
        let rebuilt = Ctmc::from_transitions(ctmc.num_states(), ctmc.initial(), &triplets).unwrap();
        assert_eq!(rebuilt.transitions(), triplets);
        let goal = [false, false, true];
        let a = ctmc.reachability(&goal, 1.3, 1e-12).unwrap();
        let b = rebuilt.reachability(&goal, 1.3, 1e-12).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn single_exponential_failure() {
        // 0 --lambda--> 1 (absorbing). P(fail by t) = 1 - exp(-lambda t).
        let lambda = 0.7;
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, lambda)]).unwrap();
        for t in [0.0, 0.5, 1.0, 3.0] {
            let p = ctmc.reachability(&[false, true], t, 1e-12).unwrap();
            let exact = 1.0 - (-lambda * t).exp();
            assert!((p - exact).abs() < 1e-9, "t={t}: {p} vs {exact}");
        }
    }

    #[test]
    fn two_stage_erlang() {
        // 0 --l--> 1 --l--> 2: time to absorption is Erlang(2, l).
        let l = 2.0;
        let t = 1.3;
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, l), (1, 2, l)]).unwrap();
        let p = ctmc.reachability(&[false, false, true], t, 1e-12).unwrap();
        let exact = 1.0 - (-l * t).exp() * (1.0 + l * t);
        assert!((p - exact).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_of_two_components() {
        // Two independent exponential(1) components, system fails when both fail.
        // State encoding: 0 = both up, 1 = one down, 2 = both down.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let t = 1.0;
        let p = ctmc.reachability(&[false, false, true], t, 1e-12).unwrap();
        let exact = (1.0 - (-t).exp()).powi(2);
        assert!((p - exact).abs() < 1e-9, "{p} vs {exact}");
    }

    #[test]
    fn transient_distribution_sums_to_one() {
        let ctmc = Ctmc::from_transitions(
            4,
            0,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 0.5),
                (2, 3, 0.25),
                (3, 0, 1.0),
            ],
        )
        .unwrap();
        for t in [0.1, 1.0, 10.0] {
            let pi = ctmc.transient(t, 1e-12).unwrap();
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(pi.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn reachability_at_time_zero_counts_initial_goal() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0)]).unwrap();
        assert_eq!(ctmc.reachability(&[true, false], 0.0, 1e-9).unwrap(), 1.0);
        assert_eq!(ctmc.reachability(&[false, true], 0.0, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn absorbing_chain_without_transitions() {
        let ctmc = Ctmc::from_transitions(1, 0, &[]).unwrap();
        let pi = ctmc.transient(5.0, 1e-9).unwrap();
        assert_eq!(pi, vec![1.0]);
        assert_eq!(ctmc.max_exit_rate(), 0.0);
    }

    #[test]
    fn unbounded_reachability_of_transient_goal() {
        // 0 -> 1 with rate 1, 0 -> 2 with rate 3; goal = {1}: P = 1/4.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 1.0), (0, 2, 3.0)]).unwrap();
        let p = ctmc
            .reachability_unbounded(&[false, true, false], 1e-12)
            .unwrap();
        assert!((p - 0.25).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Ctmc::from_transitions(2, 5, &[]).is_err());
        assert!(Ctmc::from_transitions(2, 0, &[(0, 1, -1.0)]).is_err());
        assert!(Ctmc::from_transitions(2, 0, &[(0, 1, f64::NAN)]).is_err());
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0)]).unwrap();
        assert!(ctmc.reachability(&[true], 1.0, 1e-9).is_err());
        assert!(ctmc.transient(-1.0, 1e-9).is_err());
    }

    #[test]
    fn self_loops_are_ignored() {
        let a = Ctmc::from_transitions(2, 0, &[(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        let b = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0)]).unwrap();
        let t = 0.8;
        let pa = a.reachability(&[false, true], t, 1e-12).unwrap();
        let pb = b.reachability(&[false, true], t, 1e-12).unwrap();
        assert!((pa - pb).abs() < 1e-9);
    }
}
