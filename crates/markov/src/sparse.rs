//! Compressed sparse row matrices.
//!
//! Reliability models are sparse: a state typically has a handful of outgoing
//! transitions regardless of the total state count.  A minimal CSR representation
//! is all the transient and steady-state solvers need — the only operation on the
//! hot path is a (row-)vector–matrix product.

use crate::{Error, Result};

/// An immutable sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate entries are summed; zero entries are kept (harmless).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] if an index is out of range or
    /// [`Error::InvalidValue`] if a value is NaN or infinite.
    pub fn from_triplets(
        num_rows: usize,
        num_cols: usize,
        triplets: &[(u32, u32, f64)],
    ) -> Result<CsrMatrix> {
        for &(r, c, v) in triplets {
            if r as usize >= num_rows {
                return Err(Error::InvalidState {
                    state: r,
                    num_states: num_rows as u32,
                });
            }
            if c as usize >= num_cols {
                return Err(Error::InvalidState {
                    state: c,
                    num_states: num_cols as u32,
                });
            }
            if !v.is_finite() {
                return Err(Error::InvalidValue { value: v });
            }
        }
        let mut sorted: Vec<(u32, u32, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; num_rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                // Merge duplicates of the same coordinate.
                *values
                    .last_mut()
                    .expect("duplicate implies a previous entry") += v;
                continue;
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r as usize + 1] = col_idx.len();
            last = Some((r, c));
        }
        // Make row_ptr cumulative (rows without entries inherit the previous value).
        for i in 1..=num_rows {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        Ok(CsrMatrix {
            num_rows,
            num_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of `row` as parallel `(columns, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row(&self, row: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Returns the value at `(row, col)`, or 0 if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        cols.iter()
            .zip(vals)
            .find(|&(&c, _)| c as usize == col)
            .map(|(_, &v)| v)
            .unwrap_or(0.0)
    }

    /// Computes the row-vector–matrix product `y = x · M`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != num_rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.num_cols];
        self.vec_mul_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = x · M` into a caller-provided buffer, so an iterative
    /// solver can ping-pong two vectors without per-step allocation.
    ///
    /// `y` is fully overwritten; operation order matches [`vec_mul`](Self::vec_mul)
    /// exactly, so swapping the allocating call for this one changes no bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != num_rows` or
    /// `y.len() != num_cols`.
    pub fn vec_mul_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.num_rows {
            return Err(Error::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(Error::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        y.fill(0.0);
        for (row, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += xi * v;
            }
        }
        Ok(())
    }

    /// Computes the matrix–vector product `y = M · x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != num_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.num_rows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = M · x` into a caller-provided buffer, the allocation-free
    /// counterpart of [`mul_vec`](Self::mul_vec) with identical operation
    /// order (bit-identical results).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != num_cols` or
    /// `y.len() != num_rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.num_cols {
            return Err(Error::DimensionMismatch {
                expected: self.num_cols,
                actual: x.len(),
            });
        }
        if y.len() != self.num_rows {
            return Err(Error::DimensionMismatch {
                expected: self.num_rows,
                actual: y.len(),
            });
        }
        for (row, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(row);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Sum of the stored entries of `row`.
    pub fn row_sum(&self, row: usize) -> f64 {
        self.row(row).1.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (0, 2, 3.0), (1, 0, 1.0), (2, 2, 4.0)])
            .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.num_entries(), 4);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 2), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row_sum(0), 5.0);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[2]);
        assert_eq!(vals, &[4.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]).unwrap();
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.num_entries(), 1);
    }

    #[test]
    fn empty_rows_are_handled() {
        let m = CsrMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]).unwrap();
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(3).0.len(), 1);
        assert_eq!(m.get(3, 0), 1.0);
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn vector_matrix_product() {
        let m = sample();
        let y = m.vec_mul(&[1.0, 2.0, 0.5]).unwrap();
        // y_j = sum_i x_i * M[i][j]
        assert_eq!(y, vec![2.0, 2.0, 5.0]);
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn matrix_vector_product() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        // y_i = sum_j M[i][j] * x_j
        assert_eq!(y, vec![13.0, 1.0, 12.0]);
        assert!(m.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn in_place_products_match_the_allocating_calls() {
        let m = sample();
        let x = [1.0, 2.0, 0.5];
        let mut y = vec![7.0; 3];
        m.vec_mul_into(&x, &mut y).unwrap();
        assert_eq!(y, m.vec_mul(&x).unwrap());
        m.mul_vec_into(&x, &mut y).unwrap();
        assert_eq!(y, m.mul_vec(&x).unwrap());
        // Buffer-length mismatches are rejected, as are input mismatches.
        let mut short = vec![0.0; 2];
        assert!(m.vec_mul_into(&x, &mut short).is_err());
        assert!(m.mul_vec_into(&x, &mut short).is_err());
        assert!(m.vec_mul_into(&[1.0], &mut y).is_err());
        assert!(m.mul_vec_into(&[1.0], &mut y).is_err());
    }

    #[test]
    fn non_square_matrices_work() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let y = m.vec_mul(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![2.0, 0.0, 1.0]);
        let z = m.mul_vec(&[1.0, 0.0, 1.0]).unwrap();
        assert_eq!(z, vec![1.0, 2.0]);
    }
}
