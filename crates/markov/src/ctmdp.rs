//! Continuous-time Markov decision processes.
//!
//! When a DFT contains inherent non-determinism (Section 4.4 of the paper — e.g. an
//! FDEP gate triggering two dependent events "simultaneously" underneath a PAND
//! gate), compositional aggregation produces a CTMDP instead of a CTMC.  The paper
//! follows Baier, Hermanns, Katoen & Haverkort (TCS 345, 2005) and reports *bounds*
//! on the measure of interest.  This module implements that scheme for the model
//! shape produced by our pipeline:
//!
//! * **Markovian states** race exponential delays (a single stochastic choice);
//! * **immediate states** choose non-deterministically among instantaneous
//!   successors (the unresolved orderings of simultaneous events).
//!
//! Time-bounded reachability is computed by uniformisation: the chain of Markovian
//! steps is uniformised with a global rate, and a step-indexed value iteration
//! resolves the non-deterministic choices greedily (maximising or minimising),
//! which yields the optimum over time-abstract schedulers — an upper, respectively
//! lower, bound for the measure under general schedulers.

use crate::kernel::RelaxKernel;
use crate::poisson::poisson_weights;
use crate::{Error, Result};
use std::sync::OnceLock;

/// One state of a CTMDP.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmdpState {
    /// A stochastic state racing exponential delays; entries are `(target, rate)`.
    Markovian(Vec<(u32, f64)>),
    /// An instantaneous state with a non-deterministic choice among successors.
    Immediate(Vec<u32>),
}

/// A continuous-time Markov decision process with goal states.
#[derive(Debug, Clone)]
pub struct Ctmdp {
    states: Vec<CtmdpState>,
    initial: usize,
    goal: Vec<bool>,
    /// The flat CSR lowering of `states`, built lazily on first query and
    /// reused by every subsequent reachability call on this model.
    kernel: OnceLock<RelaxKernel>,
}

/// The result of a bounded-reachability analysis: an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Minimum probability over schedulers.
    pub min: f64,
    /// Maximum probability over schedulers.
    pub max: f64,
}

impl Ctmdp {
    /// Builds a CTMDP.
    ///
    /// # Errors
    ///
    /// Returns an error if a target index is out of range, a rate is not finite and
    /// strictly positive, the goal vector has the wrong length, or the initial
    /// state is out of range.
    pub fn new(states: Vec<CtmdpState>, initial: usize, goal: Vec<bool>) -> Result<Ctmdp> {
        let n = states.len();
        if initial >= n {
            return Err(Error::InvalidState {
                state: initial as u32,
                num_states: n as u32,
            });
        }
        if goal.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: goal.len(),
            });
        }
        for st in &states {
            match st {
                CtmdpState::Markovian(rates) => {
                    for &(t, r) in rates {
                        if t as usize >= n {
                            return Err(Error::InvalidState {
                                state: t,
                                num_states: n as u32,
                            });
                        }
                        if !(r.is_finite() && r > 0.0) {
                            return Err(Error::InvalidValue { value: r });
                        }
                    }
                }
                CtmdpState::Immediate(succs) => {
                    for &t in succs {
                        if t as usize >= n {
                            return Err(Error::InvalidState {
                                state: t,
                                num_states: n as u32,
                            });
                        }
                    }
                }
            }
        }
        Ok(Ctmdp {
            states,
            initial,
            goal,
            kernel: OnceLock::new(),
        })
    }

    /// The cached CSR lowering of this model's states.
    fn kernel(&self) -> &RelaxKernel {
        self.kernel
            .get_or_init(|| RelaxKernel::from_states(&self.states))
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The state vector, in index order.
    ///
    /// Together with [`initial`](Self::initial) and [`goal`](Self::goal) this
    /// makes a CTMDP fully externalizable: feeding the three back into
    /// [`Ctmdp::new`] reconstructs a model that answers every reachability
    /// query bit-identically (the analysis only reads these fields, in this
    /// order) — which is how the persistent model cache serializes the
    /// can/must CTMDP pair of a closed model.
    pub fn states(&self) -> &[CtmdpState] {
        &self.states
    }

    /// The goal-state indicator vector, one flag per state.
    pub fn goal(&self) -> &[bool] {
        &self.goal
    }

    /// Returns `true` if no state has more than one immediate successor, i.e. the
    /// model is actually a CTMC in disguise.
    pub fn is_deterministic(&self) -> bool {
        self.states.iter().all(|s| match s {
            CtmdpState::Immediate(succs) => succs.len() <= 1,
            CtmdpState::Markovian(_) => true,
        })
    }

    fn max_exit_rate(&self) -> f64 {
        self.states
            .iter()
            .map(|s| match s {
                CtmdpState::Markovian(rates) => rates.iter().map(|&(_, r)| r).sum(),
                CtmdpState::Immediate(_) => 0.0,
            })
            .fold(0.0, f64::max)
    }

    /// Resolves the values of immediate states given the current values of
    /// Markovian/goal states, by iterating the optimisation until a fixpoint.
    /// Chains of immediate states are bounded by the state count, so `n` rounds
    /// suffice; immediate cycles (divergence) settle at their pessimistic value.
    fn settle_immediate(&self, value: &mut [f64], maximise: bool) {
        let n = self.states.len();
        for _ in 0..n {
            let mut changed = false;
            for s in 0..n {
                if self.goal[s] {
                    continue;
                }
                if let CtmdpState::Immediate(succs) = &self.states[s] {
                    if succs.is_empty() {
                        continue;
                    }
                    let candidate = succs.iter().map(|&t| value[t as usize]).fold(
                        if maximise {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        },
                        |a, b| {
                            if maximise {
                                a.max(b)
                            } else {
                                a.min(b)
                            }
                        },
                    );
                    if (candidate - value[s]).abs() > 1e-15 {
                        value[s] = candidate;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One extremal reachability value per requested time bound, computed in a
    /// *single* value-iteration pass.
    ///
    /// The step-indexed values `value_k[initial]` of the uniformised process do not
    /// depend on the time bound — only the Poisson mixture weights do — so a whole
    /// mission-time sweep costs one pass to the largest truncation point instead of
    /// one pass per point.  Results are returned in the same order as `times`.
    ///
    /// Runs on the cached [`RelaxKernel`]; results are bit-identical to
    /// [`reachability_extremal_multi_legacy`](Self::reachability_extremal_multi_legacy)
    /// regardless of the worker count the kernel chooses.
    fn reachability_extremal_multi(
        &self,
        times: &[f64],
        epsilon: f64,
        maximise: bool,
    ) -> Result<Vec<f64>> {
        let kernel = self.kernel();
        kernel.reachability(
            self.initial,
            &self.goal,
            times,
            epsilon,
            maximise,
            kernel.auto_workers(),
        )
    }

    /// The original nested-loop value iteration, kept verbatim as the
    /// reference implementation for differential tests against the CSR
    /// kernel ([`crate::kernel`]).  Semantics and bit patterns define the
    /// contract the kernel must honour; not intended for production use.
    #[doc(hidden)]
    pub fn reachability_extremal_multi_legacy(
        &self,
        times: &[f64],
        epsilon: f64,
        maximise: bool,
    ) -> Result<Vec<f64>> {
        for &t in times {
            if !t.is_finite() || t < 0.0 {
                return Err(Error::InvalidValue { value: t });
            }
        }
        let n = self.states.len();
        let lambda = self.max_exit_rate();

        // Value at "zero remaining steps": goal states count, and immediate states
        // resolve instantaneously.
        let mut terminal: Vec<f64> = self
            .goal
            .iter()
            .map(|&g| if g { 1.0 } else { 0.0 })
            .collect();
        self.settle_immediate(&mut terminal, maximise);

        if lambda == 0.0 {
            return Ok(vec![terminal[self.initial]; times.len()]);
        }

        // Poisson weights per time bound; a bound of zero yields the degenerate
        // single weight 1 at k = 0, so it needs no special casing below.
        let weights = times
            .iter()
            .map(|&t| poisson_weights(lambda * t, epsilon))
            .collect::<Result<Vec<_>>>()?;
        let k_max = weights
            .iter()
            .map(|w| w.weights.len() - 1)
            .max()
            .unwrap_or(0);

        // value[s] = optimal probability of reaching a goal within `k` uniformised
        // steps; computed backwards from k = 0 upwards, accumulating each time
        // bound's Poisson mixture for the initial state on the fly.
        let mut value = terminal;
        let mut results: Vec<f64> = weights
            .iter()
            .map(|w| w.weights[0] * value[self.initial])
            .collect();
        for k in 1..=k_max {
            let mut next = vec![0.0; n];
            for s in 0..n {
                if self.goal[s] {
                    next[s] = 1.0;
                    continue;
                }
                match &self.states[s] {
                    CtmdpState::Markovian(rates) => {
                        let exit: f64 = rates.iter().map(|&(_, r)| r).sum();
                        let mut acc = (1.0 - exit / lambda) * value[s];
                        for &(target, rate) in rates {
                            acc += rate / lambda * value[target as usize];
                        }
                        next[s] = acc;
                    }
                    CtmdpState::Immediate(_) => {
                        // Filled in by settle_immediate below.
                        next[s] = 0.0;
                    }
                }
            }
            self.settle_immediate(&mut next, maximise);
            value = next;
            for (result, w) in results.iter_mut().zip(weights.iter()) {
                if let Some(&weight) = w.weights.get(k) {
                    *result += weight * value[self.initial];
                }
            }
        }
        Ok(results.into_iter().map(|r| r.clamp(0.0, 1.0)).collect())
    }

    fn reachability_extremal(&self, t: f64, epsilon: f64, maximise: bool) -> Result<f64> {
        Ok(self.reachability_extremal_multi(&[t], epsilon, maximise)?[0])
    }

    /// Minimum and maximum probability (over time-abstract schedulers) of reaching
    /// a goal state within time `t`, with truncation error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a negative/NaN time bound or an invalid
    /// `epsilon`.
    pub fn reachability_bounds(&self, t: f64, epsilon: f64) -> Result<Bounds> {
        let min = self.reachability_extremal(t, epsilon, false)?;
        let max = self.reachability_extremal(t, epsilon, true)?;
        Ok(Bounds { min, max })
    }

    /// [`reachability_bounds`](Self::reachability_bounds) for many time bounds at
    /// once: two value-iteration passes (one minimising, one maximising) answer the
    /// whole sweep, instead of two passes per point.
    ///
    /// Results are returned in the same order as `times`; a single-element slice
    /// produces bit-identical values to the single-time method.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a negative/NaN time bound or an invalid
    /// `epsilon`.
    pub fn reachability_bounds_multi(&self, times: &[f64], epsilon: f64) -> Result<Vec<Bounds>> {
        let min = self.reachability_min_multi(times, epsilon)?;
        let max = self.reachability_max_multi(times, epsilon)?;
        Ok(min
            .into_iter()
            .zip(max)
            .map(|(min, max)| Bounds { min, max })
            .collect())
    }

    /// Maximum reachability probability (over time-abstract schedulers) for each
    /// time bound, in one value-iteration pass.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a negative/NaN time bound or an invalid
    /// `epsilon`.
    pub fn reachability_max_multi(&self, times: &[f64], epsilon: f64) -> Result<Vec<f64>> {
        self.reachability_extremal_multi(times, epsilon, true)
    }

    /// Minimum reachability probability (over time-abstract schedulers) for each
    /// time bound, in one value-iteration pass.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a negative/NaN time bound or an invalid
    /// `epsilon`.
    pub fn reachability_min_multi(&self, times: &[f64], epsilon: f64) -> Result<Vec<f64>> {
        self.reachability_extremal_multi(times, epsilon, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip_through_new() {
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Immediate(vec![1, 2]),
                CtmdpState::Markovian(vec![(2, 0.5)]),
                CtmdpState::Markovian(vec![]),
            ],
            0,
            vec![false, false, true],
        )
        .unwrap();
        let rebuilt =
            Ctmdp::new(mdp.states().to_vec(), mdp.initial(), mdp.goal().to_vec()).unwrap();
        assert_eq!(rebuilt.states(), mdp.states());
        assert_eq!(rebuilt.goal(), mdp.goal());
        let a = mdp.reachability_bounds(0.7, 1e-12).unwrap();
        let b = rebuilt.reachability_bounds(0.7, 1e-12).unwrap();
        assert_eq!(a.min.to_bits(), b.min.to_bits());
        assert_eq!(a.max.to_bits(), b.max.to_bits());
    }

    #[test]
    fn deterministic_ctmdp_matches_ctmc() {
        // 0 --lambda--> 1 (goal): both bounds equal 1 - exp(-lambda t).
        let lambda = 1.7;
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Markovian(vec![(1, lambda)]),
                CtmdpState::Markovian(vec![]),
            ],
            0,
            vec![false, true],
        )
        .unwrap();
        assert!(mdp.is_deterministic());
        let t = 0.9;
        let b = mdp.reachability_bounds(t, 1e-12).unwrap();
        let exact = 1.0 - (-lambda * t).exp();
        assert!((b.min - exact).abs() < 1e-9);
        assert!((b.max - exact).abs() < 1e-9);
    }

    #[test]
    fn nondeterministic_choice_gives_interval() {
        // Initial immediate choice between a fast branch (rate 10) and a slow
        // branch (rate 0.1) towards the goal.
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Immediate(vec![1, 2]),
                CtmdpState::Markovian(vec![(3, 10.0)]),
                CtmdpState::Markovian(vec![(3, 0.1)]),
                CtmdpState::Markovian(vec![]),
            ],
            0,
            vec![false, false, false, true],
        )
        .unwrap();
        assert!(!mdp.is_deterministic());
        let t = 1.0;
        let b = mdp.reachability_bounds(t, 1e-12).unwrap();
        let fast = 1.0 - (-10.0f64 * t).exp();
        let slow = 1.0 - (-0.1f64 * t).exp();
        assert!((b.max - fast).abs() < 1e-6, "max {} vs {}", b.max, fast);
        assert!((b.min - slow).abs() < 1e-6, "min {} vs {}", b.min, slow);
        assert!(b.min < b.max);
    }

    #[test]
    fn goal_at_initial_state_is_certain() {
        let mdp = Ctmdp::new(vec![CtmdpState::Markovian(vec![])], 0, vec![true]).unwrap();
        let b = mdp.reachability_bounds(2.0, 1e-9).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 1.0);
    }

    #[test]
    fn immediate_chain_resolves_through_layers() {
        // 0 (immediate) -> 1 (immediate) -> 2 (goal): reachable with probability 1
        // immediately, under any scheduler.
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Immediate(vec![1]),
                CtmdpState::Immediate(vec![2]),
                CtmdpState::Markovian(vec![]),
            ],
            0,
            vec![false, false, true],
        )
        .unwrap();
        let b = mdp.reachability_bounds(0.0, 1e-9).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 1.0);
    }

    #[test]
    fn dead_end_immediate_state_never_reaches_goal() {
        let mdp = Ctmdp::new(
            vec![CtmdpState::Immediate(vec![]), CtmdpState::Markovian(vec![])],
            0,
            vec![false, true],
        )
        .unwrap();
        let b = mdp.reachability_bounds(10.0, 1e-9).unwrap();
        assert_eq!(b.min, 0.0);
        assert_eq!(b.max, 0.0);
    }

    #[test]
    fn construction_errors() {
        assert!(Ctmdp::new(vec![CtmdpState::Immediate(vec![5])], 0, vec![false]).is_err());
        assert!(Ctmdp::new(vec![CtmdpState::Markovian(vec![(0, -1.0)])], 0, vec![false]).is_err());
        assert!(Ctmdp::new(vec![CtmdpState::Markovian(vec![])], 3, vec![false]).is_err());
        assert!(Ctmdp::new(vec![CtmdpState::Markovian(vec![])], 0, vec![false, true]).is_err());
        let mdp = Ctmdp::new(vec![CtmdpState::Markovian(vec![])], 0, vec![false]).unwrap();
        assert!(mdp.reachability_bounds(-1.0, 1e-9).is_err());
    }

    #[test]
    fn bounds_bracket_the_uniform_resolution() {
        // Non-deterministic choice between two moderate branches; any fixed
        // resolution must lie within the bounds.
        let mdp = Ctmdp::new(
            vec![
                CtmdpState::Immediate(vec![1, 2]),
                CtmdpState::Markovian(vec![(3, 2.0)]),
                CtmdpState::Markovian(vec![(3, 3.0)]),
                CtmdpState::Markovian(vec![]),
            ],
            0,
            vec![false, false, false, true],
        )
        .unwrap();
        let t = 0.4;
        let b = mdp.reachability_bounds(t, 1e-12).unwrap();
        let p2 = 1.0 - (-2.0f64 * t).exp();
        let p3 = 1.0 - (-3.0f64 * t).exp();
        assert!(b.min <= p2 + 1e-9 && p2 <= b.max + 1e-9);
        assert!(b.min <= p3 + 1e-9 && p3 <= b.max + 1e-9);
    }
}
