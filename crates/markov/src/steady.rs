//! Steady-state analysis.
//!
//! Repairable fault-tree models (Section 7.2 of the paper) are ergodic CTMCs; the
//! measure of interest is the long-run *unavailability*, i.e. the steady-state
//! probability of the "system down" states.  The solver iterates the uniformised
//! DTMC (power method); the uniformisation constant is chosen strictly larger than
//! every exit rate, which guarantees aperiodicity.

use crate::ctmc::Ctmc;
use crate::sparse::CsrMatrix;
use crate::{Error, Result};

/// Computes the steady-state distribution of an irreducible CTMC.
///
/// For reducible chains the result is the limiting distribution reachable from the
/// initial state (probability mass that drains into absorbing strongly connected
/// components stays there), which is still the quantity needed for unavailability
/// when the chain has a single recurrent class.
///
/// # Errors
///
/// Returns [`Error::EmptyModel`] if the chain has no transitions, or
/// [`Error::NoConvergence`] if the power iteration does not converge.
///
/// # Examples
///
/// ```
/// use markov::ctmc::Ctmc;
/// use markov::steady::steady_state;
/// // Failure rate 2, repair rate 6: unavailability 2/(2+6) = 0.25.
/// let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 2.0), (1, 0, 6.0)]).unwrap();
/// let pi = steady_state(&ctmc, 1e-12).unwrap();
/// assert!((pi[1] - 0.25).abs() < 1e-8);
/// ```
pub fn steady_state(ctmc: &Ctmc, tolerance: f64) -> Result<Vec<f64>> {
    let n = ctmc.num_states();
    if ctmc.num_transitions() == 0 {
        if n == 0 {
            return Err(Error::EmptyModel);
        }
        let mut pi = vec![0.0; n];
        pi[ctmc.initial()] = 1.0;
        return Ok(pi);
    }
    // Uniformise with a constant strictly above the maximal exit rate so every
    // state keeps a positive self-loop probability (guarantees aperiodicity).
    let lambda = ctmc.max_exit_rate() * 1.05;
    let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
    for s in 0..n {
        let (cols, vals) = ctmc.rates().row(s);
        for (&c, &v) in cols.iter().zip(vals) {
            triplets.push((s as u32, c, v / lambda));
        }
        let stay = 1.0 - ctmc.exit_rate(s) / lambda;
        if stay > 0.0 {
            triplets.push((s as u32, s as u32, stay));
        }
    }
    let p = CsrMatrix::from_triplets(n, n, &triplets)?;

    let mut pi = vec![1.0 / n as f64; n];
    // Ping-pong two buffers through the power iteration instead of allocating
    // a fresh vector per step; vec_mul_into is bit-identical to vec_mul.
    let mut next = vec![0.0; n];
    let max_iter = 1_000_000;
    for it in 0..max_iter {
        p.vec_mul_into(&pi, &mut next)?;
        let delta: f64 = next
            .iter()
            .zip(pi.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut pi, &mut next);
        if delta < tolerance {
            // Normalise away accumulated rounding drift.
            let total: f64 = pi.iter().sum();
            for v in &mut pi {
                *v /= total;
            }
            return Ok(pi);
        }
        let _ = it;
    }
    Err(Error::NoConvergence {
        iterations: max_iter,
    })
}

/// Computes the steady-state probability of the states labelled `true`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] for a wrong label length and otherwise the
/// same errors as [`steady_state`].
pub fn steady_state_probability(ctmc: &Ctmc, labelled: &[bool], tolerance: f64) -> Result<f64> {
    if labelled.len() != ctmc.num_states() {
        return Err(Error::DimensionMismatch {
            expected: ctmc.num_states(),
            actual: labelled.len(),
        });
    }
    let pi = steady_state(ctmc, tolerance)?;
    Ok(labelled
        .iter()
        .zip(pi.iter())
        .filter(|&(&l, _)| l)
        .map(|(_, &p)| p)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_birth_death() {
        let fail = 1.0;
        let repair = 9.0;
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, fail), (1, 0, repair)]).unwrap();
        let pi = steady_state(&ctmc, 1e-13).unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-8);
        assert!((pi[1] - 0.1).abs() < 1e-8);
        let unavail = steady_state_probability(&ctmc, &[false, true], 1e-13).unwrap();
        assert!((unavail - 0.1).abs() < 1e-8);
    }

    #[test]
    fn three_state_cycle() {
        // A cycle with equal rates has the uniform distribution.
        let ctmc = Ctmc::from_transitions(3, 0, &[(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0)]).unwrap();
        let pi = steady_state(&ctmc, 1e-13).unwrap();
        for p in pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-7);
        }
    }

    #[test]
    fn birth_death_chain_matches_detailed_balance() {
        // 0 <-> 1 <-> 2 with birth rate 1 and death rate 2: pi_i ∝ (1/2)^i.
        let ctmc =
            Ctmc::from_transitions(3, 0, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 1.0), (2, 1, 2.0)])
                .unwrap();
        let pi = steady_state(&ctmc, 1e-13).unwrap();
        let z = 1.0 + 0.5 + 0.25;
        assert!((pi[0] - 1.0 / z).abs() < 1e-7);
        assert!((pi[1] - 0.5 / z).abs() < 1e-7);
        assert!((pi[2] - 0.25 / z).abs() < 1e-7);
    }

    #[test]
    fn absorbing_state_attracts_all_mass() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 3.0)]).unwrap();
        let pi = steady_state(&ctmc, 1e-13).unwrap();
        assert!(pi[1] > 1.0 - 1e-6);
    }

    #[test]
    fn chain_without_transitions_stays_at_initial() {
        let ctmc = Ctmc::from_transitions(3, 1, &[]).unwrap();
        let pi = steady_state(&ctmc, 1e-12).unwrap();
        assert_eq!(pi, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn label_length_is_checked() {
        let ctmc = Ctmc::from_transitions(2, 0, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(steady_state_probability(&ctmc, &[true], 1e-9).is_err());
    }
}
