//! Deterministic fuzzing of every untrusted-byte decoder in the workspace.
//!
//! The engine's hardening claim (see `xlint`'s `panic` rule and ROADMAP
//! item 4) is that bytes from outside the process — model-cache entries,
//! Galileo files, committed `BENCH_*.json` baselines, raw HTTP requests on a
//! `dftmc-serve` socket — can be arbitrarily corrupt and the decoders still
//! return a typed error instead of unwinding.
//! This module drives that claim dynamically: it mutates valid encodings and
//! throws pure random bytes at each decoder, catching any panic.
//!
//! Everything is seeded through the in-repo [`SplitMix64`], so a failure
//! reproduces exactly from its `(seed, iterations)` pair — the CI lane runs a
//! fixed seed batch, and any crashing input can be committed as a regression
//! fixture.  Run it locally with:
//!
//! ```text
//! cargo run --release -p dftmc-bench --bin fuzz_decode -- --iters 10000 --seed 3735928559
//! ```

use dft_core::rng::SplitMix64;
use dft_core::{AnalysisOptions, Analyzer, ParametricAnalyzer};
use ioimc::action::Action;
use ioimc::builder::IoImcBuilderOf;
use ioimc::codec::{decode_model, encode_model, Reader, Writer};
use ioimc::model::IoImcOf;
use ioimc::rate::{Rate, RateForm};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one fuzzing campaign against a single decoder.
#[derive(Debug)]
pub struct FuzzReport {
    /// Decoder name, as printed by the bin and the CI log.
    pub target: &'static str,
    /// Inputs executed.
    pub runs: usize,
    /// Inputs the decoder accepted.
    pub accepted: usize,
    /// Inputs the decoder rejected with a typed error.
    pub rejected: usize,
    /// Inputs that made the decoder panic — the bug class this harness
    /// exists to catch.  Empty on a healthy tree.
    pub panics: Vec<Vec<u8>>,
}

impl FuzzReport {
    /// True when no input panicked.
    pub fn clean(&self) -> bool {
        self.panics.is_empty()
    }
}

/// A tiny numeric I/O-IMC exercising every codec feature (all three label
/// kinds, Markovian transitions, propositions).
fn sample_model() -> IoImcOf<f64> {
    let mut b = IoImcBuilderOf::<f64>::new("fuzz-sample");
    let s = [b.add_state(), b.add_state(), b.add_state(), b.add_state()];
    b.initial(s[0]);
    b.markovian(s[0], 1.5, s[1]);
    b.markovian(s[1], 0.25, s[2]);
    b.input(s[0], Action::new("fuzz_go"), s[2]);
    b.output(s[2], Action::new("fuzz_done"), s[3]);
    b.internal(s[1], Action::new("fuzz_step"), s[3]);
    let failed = b.prop("failed");
    b.set_prop(s[3], failed);
    b.build().expect("the fuzz sample model is valid")
}

/// Same, with parametric rates, so `RateForm` decoding is covered too.
fn sample_parametric_model() -> IoImcOf<RateForm> {
    let mut b = IoImcBuilderOf::<RateForm>::new("fuzz-parametric");
    let s = [b.add_state(), b.add_state()];
    b.initial(s[0]);
    let mut form = RateForm::var(0);
    form.add_assign(&RateForm::scaled_var(3, 0.25));
    b.markovian(s[0], form, s[1]);
    b.output(s[1], Action::new("fuzz_pfail"), s[1]);
    b.build().expect("the fuzz parametric model is valid")
}

/// A small but feature-complete Galileo description (spare, FDEP, voting,
/// dormancy, repair) used as the text-mutation corpus.
pub const GALILEO_SEED_TEXT: &str = r#"
toplevel "System";
"System" or "CPU_unit" "Votes" "Pump";
"CPU_unit" wsp "P" "B";
"CPU_fdep" fdep "Trigger" "P" "B";
"Trigger" or "CS" "SS";
"Votes" 2of3 "V1" "V2" "V3";
"Pump" and "PA" "PB";
"CS" lambda=0.2;
"SS" lambda=0.2;
"P" lambda=0.5;
"B" lambda=0.5 dorm=0.5;
"V1" lambda=1.0;
"V2" lambda=1.0;
"V3" lambda=1.0 repair=2.0;
"PA" lambda=1.0;
"PB" lambda=1.0 dorm=0.0;
"#;

/// The byte corpora, one per binary decoder.
fn model_corpus() -> Vec<Vec<u8>> {
    let mut numeric = Writer::new();
    encode_model(&sample_model(), &mut numeric);
    let mut parametric = Writer::new();
    encode_model(&sample_parametric_model(), &mut parametric);
    vec![numeric.into_bytes(), parametric.into_bytes()]
}

/// A small DFT the analysis engine fully supports (no repair + spare mix),
/// used to build genuine session frames for the store-loading fuzz target.
const SESSION_SEED_TEXT: &str = r#"
toplevel "Top";
"Top" or "Left" "Votes";
"Left" wsp "P" "B";
"Votes" 2of3 "V1" "V2" "V3";
"P" lambda=0.5;
"B" lambda=0.5 dorm=0.5;
"V1" lambda=1.0;
"V2" lambda=1.0;
"V3" lambda=1.0;
"#;

/// Sealed session frames, as the persistent store loads them from disk.
fn session_corpus() -> Vec<Vec<u8>> {
    let dft = dft::galileo::parse(SESSION_SEED_TEXT).expect("the fuzz session corpus parses");
    let analyzer =
        Analyzer::new(&dft, AnalysisOptions::default()).expect("the fuzz sample DFT analyzes");
    let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default())
        .expect("the fuzz sample DFT analyzes parametrically");
    vec![analyzer.to_bytes(), parametric.to_bytes()]
}

/// Serialized HTTP/1.1 requests as `dftmc-serve` reads them off a socket:
/// a JSON-bodied submit, a bare poll, and a shutdown — every branch of the
/// head parser (body, no body, each verb) has a seed.
fn http_corpus() -> Vec<Vec<u8>> {
    let submit_body = "{\"galileo\": \"toplevel \\\"T\\\"; \\\"T\\\" lambda=1.0;\", \
                       \"measures\": [{\"type\": \"mttf\"}]}";
    let submit = format!(
        "POST /submit HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{submit_body}",
        submit_body.len()
    );
    let poll = "GET /result/7 HTTP/1.1\r\nHost: fuzz\r\n\r\n".to_owned();
    let shutdown = "POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_owned();
    vec![
        submit.into_bytes(),
        poll.into_bytes(),
        shutdown.into_bytes(),
    ]
}

/// A dftlib-schema interchange document covering every node flavour the
/// decoder handles, derived from the Galileo seed so the two text corpora
/// describe the same tree.
fn json_tree_corpus() -> Vec<Vec<u8>> {
    let dft = dft::galileo::parse(GALILEO_SEED_TEXT).expect("the fuzz Galileo corpus parses");
    vec![dft::json_format::to_json(&dft).into_bytes()]
}

fn json_corpus() -> Vec<Vec<u8>> {
    let doc = crate::json::Json::obj([
        ("name", "fuzz".into()),
        ("ok", true.into()),
        ("none", crate::json::Json::Null),
        (
            "escaped",
            crate::json::Json::Str("a\"b\\c\nd\u{1}é".to_owned()),
        ),
        (
            "rows",
            crate::json::Json::Arr(vec![
                crate::json::Json::obj([("width", 2usize.into()), ("x", (-1.5e-3f64).into())]),
                crate::json::Json::Bool(false),
            ]),
        ),
    ]);
    vec![doc.render().into_bytes()]
}

/// Produces one fuzz input: a mutation of a corpus item, a splice of two, or
/// pure random bytes.  All randomness comes from `rng`, so campaigns are
/// reproducible from their seed.
pub fn mutate(rng: &mut SplitMix64, corpus: &[Vec<u8>]) -> Vec<u8> {
    let pick = |rng: &mut SplitMix64, n: usize| -> usize {
        if n == 0 {
            0
        } else {
            (rng.next_u64() % n as u64) as usize
        }
    };
    let base = corpus[pick(rng, corpus.len())].clone();
    match rng.next_u64() % 8 {
        // Pure random bytes, random length.
        0 => {
            let len = pick(rng, 513);
            (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
        }
        // Truncation.
        1 => {
            let mut bytes = base;
            bytes.truncate(pick(rng, bytes.len() + 1));
            bytes
        }
        // A handful of bit flips.
        2 => {
            let mut bytes = base;
            for _ in 0..=pick(rng, 8) {
                if bytes.is_empty() {
                    break;
                }
                let i = pick(rng, bytes.len());
                bytes[i] ^= 1 << pick(rng, 8);
            }
            bytes
        }
        // A handful of byte overwrites.
        3 => {
            let mut bytes = base;
            for _ in 0..=pick(rng, 8) {
                if bytes.is_empty() {
                    break;
                }
                let i = pick(rng, bytes.len());
                bytes[i] = (rng.next_u64() & 0xff) as u8;
            }
            bytes
        }
        // Insertion of random bytes.
        4 => {
            let mut bytes = base;
            let at = pick(rng, bytes.len() + 1);
            let insert: Vec<u8> = (0..=pick(rng, 16))
                .map(|_| (rng.next_u64() & 0xff) as u8)
                .collect();
            bytes.splice(at..at, insert);
            bytes
        }
        // Deletion of a range.
        5 => {
            let mut bytes = base;
            if !bytes.is_empty() {
                let start = pick(rng, bytes.len());
                let end = (start + 1 + pick(rng, 16)).min(bytes.len());
                bytes.drain(start..end);
            }
            bytes
        }
        // Splice of two corpus items.
        6 => {
            let other = &corpus[pick(rng, corpus.len())];
            let cut_a = pick(rng, base.len() + 1);
            let cut_b = pick(rng, other.len() + 1);
            let mut bytes = base[..cut_a].to_vec();
            bytes.extend_from_slice(&other[cut_b..]);
            bytes
        }
        // The unmutated item itself (keeps the accept path exercised).
        _ => base,
    }
}

/// Runs `iters` fuzz inputs against `decode`.  `decode` returns whether the
/// input was accepted; any panic it raises is caught and recorded.
pub fn run_target(
    target: &'static str,
    seed: u64,
    iters: usize,
    corpus: &[Vec<u8>],
    decode: impl Fn(&[u8]) -> bool,
) -> FuzzReport {
    // Independent stream per target: campaigns don't perturb each other even
    // when iteration counts change.
    let mut rng = SplitMix64::new(seed ^ fnv1a64(target.as_bytes()));
    let mut report = FuzzReport {
        target,
        runs: 0,
        accepted: 0,
        rejected: 0,
        panics: Vec::new(),
    };
    // The pristine corpus items must be accepted — otherwise the campaign
    // only proves the reject path and the accept path goes untested.
    for item in corpus {
        report.runs += 1;
        match catch_unwind(AssertUnwindSafe(|| decode(item))) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.rejected += 1,
            Err(_) => report.panics.push(item.clone()),
        }
    }
    for _ in 0..iters {
        let input = mutate(&mut rng, corpus);
        report.runs += 1;
        match catch_unwind(AssertUnwindSafe(|| decode(&input))) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.rejected += 1,
            Err(_) => report.panics.push(input),
        }
    }
    report
}

/// Runs the full campaign: every decoder, `iters` inputs each, derived from
/// `seed`.  This is what the `fuzz_decode` bin and the CI lane execute.
pub fn run_all(seed: u64, iters: usize) -> Vec<FuzzReport> {
    let models = model_corpus();
    let sessions = session_corpus();
    let galileo: Vec<Vec<u8>> = vec![GALILEO_SEED_TEXT.as_bytes().to_vec()];
    let json = json_corpus();
    vec![
        run_target("decode_model<f64>", seed, iters, &models, |bytes| {
            decode_model::<f64>(&mut Reader::new(bytes)).is_ok()
        }),
        run_target("decode_model<RateForm>", seed, iters, &models, |bytes| {
            decode_model::<RateForm>(&mut Reader::new(bytes)).is_ok()
        }),
        run_target("Analyzer::from_bytes", seed, iters, &sessions, |bytes| {
            Analyzer::from_bytes(bytes).is_ok()
        }),
        run_target(
            "ParametricAnalyzer::from_bytes",
            seed,
            iters,
            &sessions,
            |bytes| ParametricAnalyzer::from_bytes(bytes).is_ok(),
        ),
        run_target("galileo::parse", seed, iters, &galileo, |bytes| {
            dft::galileo::parse(&String::from_utf8_lossy(bytes)).is_ok()
        }),
        run_target("json::parse", seed, iters, &json, |bytes| {
            crate::json::parse(&String::from_utf8_lossy(bytes)).is_ok()
        }),
        run_target(
            "json_format::parse",
            seed,
            iters,
            &json_tree_corpus(),
            |bytes| dft::json_format::parse(&String::from_utf8_lossy(bytes)).is_ok(),
        ),
        run_target(
            "http::parse_request",
            seed,
            iters,
            &http_corpus(),
            |bytes| {
                // `Ok(None)` means "read more bytes" — a valid, non-accepting
                // outcome for a truncated request; only a complete parse accepts.
                matches!(
                    dftmc_serve::http::parse_request(
                        bytes,
                        &dftmc_serve::http::HttpLimits::default()
                    ),
                    Ok(Some(_))
                )
            },
        ),
    ]
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_corpus_items_are_accepted() {
        // Zero mutated inputs: only the corpus sanity pass runs.
        for report in run_all(7, 0) {
            assert!(
                report.clean(),
                "{} panicked on its own corpus",
                report.target
            );
            assert!(
                report.accepted >= 1,
                "{} rejected its own corpus ({} accepted / {} runs)",
                report.target,
                report.accepted,
                report.runs
            );
        }
    }

    #[test]
    fn short_campaign_finds_no_panics() {
        for report in run_all(0xDF7, 300) {
            assert!(
                report.clean(),
                "{}: {} panics in {} runs; first input: {:?}",
                report.target,
                report.panics.len(),
                report.runs,
                report.panics.first()
            );
            assert_eq!(report.runs, 300 + report_corpus_len(report.target));
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_all(42, 50);
        let b = run_all(42, 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.rejected, y.rejected);
        }
    }

    fn report_corpus_len(target: &str) -> usize {
        match target {
            "galileo::parse" | "json::parse" | "json_format::parse" => 1,
            "http::parse_request" => 3,
            _ => 2,
        }
    }
}
