//! A minimal JSON emitter for machine-readable benchmark records.
//!
//! The container carries no external crates, so the experiment bins cannot use
//! `serde`.  This module provides the small subset they need: build a [`Json`]
//! tree, render it deterministically (object keys keep insertion order), and
//! write it to a `BENCH_<name>.json` file next to the human-readable tables so
//! the performance trajectory of the repo can be tracked run over run.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (keys keep their order).
    pub fn obj<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// A duration, rendered as fractional seconds (the universal bench unit).
    pub fn secs(d: Duration) -> Json {
        Json::Num(d.as_secs_f64())
    }

    /// Renders the value as a compact single-line JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Fingerprints exceed f64's exact integer range; carry them as hex
        // strings so no precision is lost.
        Json::Str(format!("{v:016x}"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

/// Writes `value` to `BENCH_<name>.json` in the current directory and returns
/// the path.  The experiment bins call this after printing their human tables;
/// a trailing newline keeps the files friendly to line-oriented tooling.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn emit(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// [`emit`], plus a one-line note on stdout saying where the record went; I/O
/// failures are reported on stderr instead of aborting an otherwise successful
/// experiment run.
pub fn emit_and_announce(name: &str, value: &Json) {
    match emit(name, value) {
        Ok(path) => println!("\nmachine-readable record: {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write BENCH_{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", "scaling".into()),
            ("ok", true.into()),
            (
                "rows",
                Json::Arr(vec![Json::obj([("width", 2usize.into())])]),
            ),
            ("wall_seconds", Json::secs(Duration::from_millis(1500))),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"scaling","ok":true,"rows":[{"width":2}],"wall_seconds":1.5,"nan":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_owned()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn fingerprints_render_as_hex_strings() {
        assert_eq!(Json::from(0xdeadbeefu64).render(), r#""00000000deadbeef""#);
    }
}
