//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! experiment here:
//!
//! * **E2 (CAS, Section 5.1)** — [`run_cas_experiment`]
//! * **E3/E4 (CPS, Section 5.2, Figures 8/9)** — [`run_cps_experiment`]
//! * **E5 (Figure 6)** — [`run_nondeterminism_experiment`]
//! * **E8 (Figures 13–15)** — [`run_repair_experiment`]
//! * **E9 (scaling discussion of Section 5.2)** — [`run_scaling_experiment`]
//!
//! The experiment binaries in `src/bin/` print these results as tables; the
//! benches in `benches/` measure run times with the dependency-free harness in
//! [`timing`].
//!
//! All experiments run on the [`Analyzer`] session engine, which separates the
//! **build** phase (conversion + compositional aggregation, paid once) from the
//! **query** phase (uniformisation / steady state, paid per measure).  The
//! [`PhaseTimings`] attached to the experiment results report the two phases
//! separately — the build/query split is the engine's raison d'être, so the
//! harness measures it everywhere.

#![forbid(unsafe_code)]

use dft::{Dft, DftBuilder, Dormancy, ElementId};
use dft_core::analysis::{AnalysisOptions, Method};
use dft_core::casestudies::{
    cas, cas_cpu_unit, cas_motor_unit, cas_pump_unit, cas_scaled, cascaded_pand, cps,
    DEFAULT_MISSION_TIMES,
};
use dft_core::engine::{Analyzer, ParametricAnalyzer};
use dft_core::parametric::Valuation;
use dft_core::query::{Measure, MeasureResult};
use dft_core::rng::SplitMix64;
use dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions, SweepJob};
use dft_core::Result;
use std::path::Path;
use std::time::{Duration, Instant};

pub mod fuzz;
pub mod serve_load;
pub mod timing;

/// The dependency-free JSON tree and parser.  The type moved to
/// [`dftmc_serve`] — where it decodes untrusted request bodies and so lives
/// under the panic-freedom lint set — but every `BENCH_*.json` emitter keeps
/// using it through this re-export.
pub use dftmc_serve::json;

/// Paper-vs-measured record for a single scalar result.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Value reported in the paper (if any).
    pub paper: Option<f64>,
    /// Value measured by this implementation.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation from the paper value, when one exists.
    pub fn relative_error(&self) -> Option<f64> {
        self.paper.map(|p| ((self.measured - p) / p).abs())
    }
}

/// Wall-clock cost of the two phases of an [`Analyzer`] session.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimings {
    /// Build phase: validation, conversion and compositional aggregation
    /// ([`Analyzer::new`]), paid once per session.
    pub build: Duration,
    /// Query phase: every measure evaluated against the cached model.
    pub query: Duration,
}

fn monolithic_options() -> AnalysisOptions {
    AnalysisOptions {
        method: Method::Monolithic,
        ..AnalysisOptions::default()
    }
}

/// Results of the cardiac-assist-system experiment (E2).
#[derive(Debug, Clone)]
pub struct CasExperiment {
    /// Unreliability at mission time 1 (paper: 0.6579).
    pub unreliability: Comparison,
    /// Unreliability from the monolithic baseline.
    pub monolithic_unreliability: f64,
    /// Peak intermediate size during compositional aggregation (states).
    pub peak_states: usize,
    /// Aggregated model sizes of the three independent units (states).
    pub module_states: Vec<(String, usize)>,
    /// Size of the monolithic chain over the full system (states).
    pub monolithic_states: usize,
    /// Build/query wall-clock split of the compositional session.
    pub timings: PhaseTimings,
}

/// Runs the CAS experiment.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study).
pub fn run_cas_experiment() -> Result<CasExperiment> {
    let dft = cas();

    let build_start = Instant::now();
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    let build = build_start.elapsed();
    let query_start = Instant::now();
    let comp = analyzer.unreliability(1.0)?;
    let query = query_start.elapsed();

    let mono_analyzer = Analyzer::new(&dft, monolithic_options())?;
    let mono = mono_analyzer.unreliability(1.0)?;

    let mut module_states = Vec::new();
    for (name, module) in [
        ("CPU_unit", cas_cpu_unit()),
        ("Motor_unit", cas_motor_unit()),
        ("Pump_unit", cas_pump_unit()),
    ] {
        let (model, _) = dft_core::analysis::aggregated_model(&module)?;
        module_states.push((name.to_owned(), model.num_states()));
    }
    Ok(CasExperiment {
        unreliability: Comparison {
            paper: Some(dft_core::casestudies::CAS_PAPER_UNRELIABILITY),
            measured: comp.value(),
        },
        monolithic_unreliability: mono.value(),
        peak_states: analyzer
            .aggregation_stats()
            .expect("compositional run")
            .peak
            .states,
        module_states,
        monolithic_states: mono_analyzer.model_stats().states,
        timings: PhaseTimings { build, query },
    })
}

/// Results of the cascaded-PAND experiment (E3/E4).
#[derive(Debug, Clone)]
pub struct CpsExperiment {
    /// Unreliability at mission time 1 (paper: 0.00135).
    pub unreliability: Comparison,
    /// Peak intermediate states during compositional aggregation (paper: 156).
    pub peak_states: Comparison,
    /// Peak intermediate transitions (paper: 490).
    pub peak_transitions: Comparison,
    /// Monolithic chain states (paper: 4113).
    pub monolithic_states: Comparison,
    /// Monolithic chain transitions (paper: 24608).
    pub monolithic_transitions: Comparison,
    /// States of the aggregated I/O-IMC of one AND module (Figure 9).
    pub module_a_states: usize,
    /// Build/query wall-clock split of the compositional session.
    pub timings: PhaseTimings,
}

/// Runs the CPS experiment.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study).
pub fn run_cps_experiment() -> Result<CpsExperiment> {
    use dft_core::casestudies::{CPS_PAPER_MONOLITHIC, CPS_PAPER_PEAK, CPS_PAPER_UNRELIABILITY};
    let dft = cps();

    let build_start = Instant::now();
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    let build = build_start.elapsed();
    let query_start = Instant::now();
    let comp = analyzer.unreliability(1.0)?;
    let query = query_start.elapsed();
    let stats = analyzer.aggregation_stats().expect("compositional run");

    let mono_analyzer = Analyzer::new(&dft, monolithic_options())?;
    let mono = mono_analyzer.model_stats();

    let module_a = single_and_module(4, 1.0);
    let (module_model, _) = dft_core::analysis::aggregated_model(&module_a)?;

    Ok(CpsExperiment {
        unreliability: Comparison {
            paper: Some(CPS_PAPER_UNRELIABILITY),
            measured: comp.value(),
        },
        peak_states: Comparison {
            paper: Some(CPS_PAPER_PEAK.0 as f64),
            measured: stats.peak.states as f64,
        },
        peak_transitions: Comparison {
            paper: Some(CPS_PAPER_PEAK.1 as f64),
            measured: stats.peak.transitions() as f64,
        },
        monolithic_states: Comparison {
            paper: Some(CPS_PAPER_MONOLITHIC.0 as f64),
            measured: mono.states as f64,
        },
        monolithic_transitions: Comparison {
            paper: Some(CPS_PAPER_MONOLITHIC.1 as f64),
            measured: mono.markovian_transitions as f64,
        },
        module_a_states: module_model.num_states(),
        timings: PhaseTimings { build, query },
    })
}

/// A single AND module of `width` identical rate-`rate` basic events (module A of
/// Figure 8/9).
pub fn single_and_module(width: usize, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let events: Vec<ElementId> = (0..width)
        .map(|i| {
            b.basic_event(&format!("A_{i}"), rate, Dormancy::Hot)
                .expect("valid BE")
        })
        .collect();
    let top = b.and_gate("A", &events).expect("valid gate");
    b.build(top).expect("wellformed module")
}

/// A repairable k-out-of-n voting system over identical components, used by the
/// repair bench (E8).
pub fn repairable_voting(n: usize, failure_rate: f64, repair_rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let events: Vec<ElementId> = (0..n)
        .map(|i| {
            b.repairable_basic_event(&format!("R{i}"), failure_rate, Dormancy::Hot, repair_rate)
                .expect("valid BE")
        })
        .collect();
    let k = (n.div_ceil(2)) as u32;
    let top = b.voting_gate("system", k, &events).expect("valid gate");
    b.build(top).expect("wellformed DFT")
}

/// One row of the scaling experiment (E9).
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of basic events per AND module.
    pub width: usize,
    /// Total number of basic events.
    pub basic_events: usize,
    /// Peak states during compositional aggregation.
    pub compositional_peak: usize,
    /// States of the monolithic chain.
    pub monolithic_states: usize,
    /// Unreliability at mission time 1 (agreement check between the methods).
    pub unreliability: f64,
}

/// Runs the scaling experiment over the cascaded-PAND family: for growing module
/// width, compare the compositional peak against the monolithic chain size.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_scaling_experiment(max_width: usize) -> Result<Vec<ScalingRow>> {
    let mut rows = Vec::new();
    for width in 1..=max_width {
        let dft = cascaded_pand(width, 1.0);
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
        let mono_analyzer = Analyzer::new(&dft, monolithic_options())?;
        rows.push(ScalingRow {
            width,
            basic_events: dft.num_basic_events(),
            compositional_peak: analyzer
                .aggregation_stats()
                .expect("compositional")
                .peak
                .states,
            monolithic_states: mono_analyzer.model_stats().states,
            unreliability: analyzer.unreliability(1.0)?.value(),
        });
    }
    Ok(rows)
}

/// A "highly connected" DFT family for the negative result the paper mentions at
/// the end of Section 5.2: `n` basic events, every pair feeding a shared AND gate,
/// all gates collected under one OR.  There are no independent modules, so
/// compositional aggregation has little structure to exploit.
pub fn highly_connected(n: usize, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let events: Vec<ElementId> = (0..n)
        .map(|i| {
            b.basic_event(&format!("hc_{i}"), rate, Dormancy::Hot)
                .expect("valid BE")
        })
        .collect();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push(
                b.and_gate(&format!("hc_and_{i}_{j}"), &[events[i], events[j]])
                    .expect("valid gate"),
            );
        }
    }
    let top = b.or_gate("hc_top", &pairs).expect("valid gate");
    b.build(top).expect("wellformed DFT")
}

/// One row of the connectivity experiment: modular versus highly connected trees
/// of the same size.
#[derive(Debug, Clone)]
pub struct ConnectivityRow {
    /// Number of basic events.
    pub basic_events: usize,
    /// Peak states for the highly connected tree.
    pub connected_peak: usize,
    /// Peak states for a modular tree with the same number of events
    /// (cascaded-PAND family).
    pub modular_peak: usize,
}

/// Runs the connectivity experiment (the qualitative claim that compositional
/// aggregation helps less for highly connected DFTs).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_connectivity_experiment(sizes: &[usize]) -> Result<Vec<ConnectivityRow>> {
    let peak_of = |dft: &Dft| -> Result<usize> {
        let analyzer = Analyzer::new(dft, AnalysisOptions::default())?;
        Ok(analyzer
            .aggregation_stats()
            .expect("compositional")
            .peak
            .states)
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let connected_peak = peak_of(&highly_connected(n, 1.0))?;
        // A modular tree with a comparable number of events: width n/3 rounded up.
        let width = n.div_ceil(3).max(1);
        let modular_peak = peak_of(&cascaded_pand(width, 1.0))?;
        rows.push(ConnectivityRow {
            basic_events: n,
            connected_peak,
            modular_peak,
        });
    }
    Ok(rows)
}

/// Results of the repairable-system experiment (E8).
#[derive(Debug, Clone)]
pub struct RepairExperiment {
    /// Computed unavailability of the Figure-15 system.
    pub unavailability: Comparison,
    /// Mean time to first system failure of the same session.
    pub mttf: f64,
    /// Number of states of the final aggregated model.
    pub final_states: usize,
}

/// Runs the repairable AND experiment of Figure 15 with the given rates.
///
/// One [`Analyzer`] session answers both the steady-state unavailability and the
/// mean time to first failure.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_repair_experiment(
    failure_a: f64,
    failure_b: f64,
    repair_rate: f64,
) -> Result<RepairExperiment> {
    let mut b = DftBuilder::new();
    let a = b.repairable_basic_event("A", failure_a, Dormancy::Hot, repair_rate)?;
    let bb = b.repairable_basic_event("B", failure_b, Dormancy::Hot, repair_rate)?;
    let top = b.and_gate("system", &[a, bb])?;
    let dft = b.build(top)?;
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    let unavailability = analyzer.unavailability()?.value();
    let mttf = analyzer.mttf()?.value();
    let exact = (failure_a / (failure_a + repair_rate)) * (failure_b / (failure_b + repair_rate));
    Ok(RepairExperiment {
        unavailability: Comparison {
            paper: Some(exact),
            measured: unavailability,
        },
        mttf,
        final_states: analyzer.model_stats().states,
    })
}

/// Results of the non-determinism experiment (E5, Figure 6(a)).
#[derive(Debug, Clone)]
pub struct NondeterminismRow {
    /// Mission time.
    pub mission_time: f64,
    /// Lower bound over schedulers.
    pub lower: f64,
    /// Upper bound over schedulers.
    pub upper: f64,
    /// The deterministic resolution chosen by the DIFTree-style baseline.
    pub baseline: f64,
}

/// Results of the non-determinism experiment: the whole mission-time sweep from a
/// single build of each pipeline.
#[derive(Debug, Clone)]
pub struct NondeterminismExperiment {
    /// One row per requested mission time, in request order.
    pub rows: Vec<NondeterminismRow>,
    /// Build/query wall-clock split of the compositional session; the query phase
    /// covers the *entire* sweep (one value-iteration pass).
    pub timings: PhaseTimings,
}

/// Runs the Figure-6(a) experiment for a range of mission times.
///
/// The experiment is the archetypal sweep workload: the compositional session is
/// built once and the whole curve is answered by a single
/// [`Measure::UnreliabilityCurve`] query.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_nondeterminism_experiment(times: &[f64]) -> Result<NondeterminismExperiment> {
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot)?;
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let bb = b.basic_event("B", 1.0, Dormancy::Hot)?;
    let _f = b.fdep_gate("FDEP", t, &[a, bb])?;
    let top = b.pand_gate("system", &[a, bb])?;
    let dft = b.build(top)?;

    let build_start = Instant::now();
    let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
    let build = build_start.elapsed();
    let query_start = Instant::now();
    let curve = analyzer.query(Measure::UnreliabilityCurve(times.to_vec()))?;
    let query = query_start.elapsed();

    let mono_analyzer = Analyzer::new(&dft, monolithic_options())?;
    let baseline = mono_analyzer.query(Measure::UnreliabilityCurve(times.to_vec()))?;

    let rows = curve
        .points()
        .iter()
        .zip(baseline.points())
        .map(|(comp, mono)| {
            let (lower, upper) = comp.bounds();
            NondeterminismRow {
                mission_time: comp.time().expect("curve points carry their time"),
                lower,
                upper,
                baseline: mono.value(),
            }
        })
        .collect();
    Ok(NondeterminismExperiment {
        rows,
        timings: PhaseTimings { build, query },
    })
}

/// Results of the portfolio throughput experiment (the service-layer regime:
/// many structurally overlapping trees, batched, cached, multi-worker).
#[derive(Debug, Clone)]
pub struct PortfolioExperiment {
    /// Total jobs in the batch (`distinct_trees` × copies).
    pub jobs: usize,
    /// Structurally distinct trees in the portfolio.
    pub distinct_trees: usize,
    /// Worker threads of the multi-worker run (after auto-detection).
    pub workers: usize,
    /// Wall-clock of the whole batch on a single worker, cold cache.
    pub single_worker_wall: Duration,
    /// Wall-clock of the whole batch on the full worker pool, cold cache.
    pub multi_worker_wall: Duration,
    /// Build-phase time summed over jobs (multi-worker run).
    pub build_time: Duration,
    /// Query-phase time summed over jobs (multi-worker run).
    pub query_time: Duration,
    /// Cache hits of the multi-worker run.
    pub cache_hits: usize,
    /// Cache misses of the multi-worker run.
    pub cache_misses: usize,
    /// Aggregation runs of the multi-worker run — must equal `distinct_trees`.
    pub aggregation_runs: usize,
    /// `true` when every job of both service runs returned results bit-identical
    /// to a sequential [`Analyzer`] run over the same tree.
    pub bit_identical: bool,
}

/// Two measure results are bit-identical: same shape, and every time, value and
/// bound agrees down to the floating-point bit pattern.
fn bitwise_eq(a: &MeasureResult, b: &MeasureResult) -> bool {
    a.points().len() == b.points().len()
        && a.points().iter().zip(b.points()).all(|(x, y)| {
            x.time().map(f64::to_bits) == y.time().map(f64::to_bits)
                && x.value().to_bits() == y.value().to_bits()
                && x.bounds().0.to_bits() == y.bounds().0.to_bits()
                && x.bounds().1.to_bits() == y.bounds().1.to_bits()
        })
}

/// Runs the portfolio throughput experiment: a batch of `distinct × copies`
/// rate-scaled CAS variants ([`cas_scaled`]), answered by an [`AnalysisService`]
/// once on a single worker and once on `workers` workers (0 = one per core),
/// both from a cold cache, with every job's results checked bit-for-bit against
/// a sequential [`Analyzer`] reference.
///
/// # Errors
///
/// Propagates analysis errors from the sequential reference (the service runs
/// report per-job errors, which fail the bit-identity check instead).
pub fn run_portfolio_experiment(
    distinct: usize,
    copies: usize,
    workers: usize,
) -> Result<PortfolioExperiment> {
    let variants: Vec<Dft> = (0..distinct)
        .map(|i| cas_scaled(1.0 + 0.05 * i as f64))
        .collect();
    let measures = vec![Measure::curve(DEFAULT_MISSION_TIMES)];
    let jobs: Vec<AnalysisJob> = (0..distinct * copies)
        .map(|i| {
            AnalysisJob::new(
                variants[i % distinct].clone(),
                AnalysisOptions::default(),
                measures.clone(),
            )
        })
        .collect();

    // Sequential reference: one plain Analyzer per distinct tree, no service.
    let reference: Vec<Vec<MeasureResult>> = variants
        .iter()
        .map(|dft| Analyzer::new(dft, AnalysisOptions::default())?.query_all(&measures))
        .collect::<Result<_>>()?;

    let single = AnalysisService::new(ServiceOptions {
        workers: 1,
        cache_capacity: 0,
        ..ServiceOptions::default()
    });
    let started = Instant::now();
    let single_report = single.run_batch(&jobs);
    let single_worker_wall = started.elapsed();

    let multi = AnalysisService::new(ServiceOptions {
        workers,
        cache_capacity: 0,
        ..ServiceOptions::default()
    });
    let started = Instant::now();
    let multi_report = multi.run_batch(&jobs);
    let multi_worker_wall = started.elapsed();

    let bit_identical = [&single_report, &multi_report].iter().all(|report| {
        report.jobs.iter().enumerate().all(|(i, job)| {
            job.results.as_ref().is_ok_and(|results| {
                let expected = &reference[i % distinct];
                results.len() == expected.len()
                    && results.iter().zip(expected).all(|(r, e)| bitwise_eq(r, e))
            })
        })
    });

    Ok(PortfolioExperiment {
        jobs: jobs.len(),
        distinct_trees: distinct,
        workers: multi_report.stats.workers,
        single_worker_wall,
        multi_worker_wall,
        build_time: multi_report.stats.build_time,
        query_time: multi_report.stats.query_time,
        cache_hits: multi_report.stats.cache_hits,
        cache_misses: multi_report.stats.cache_misses,
        aggregation_runs: multi_report.stats.aggregation_runs,
        bit_identical,
    })
}

/// Results of the async-throughput experiment: N submitting threads feeding a
/// persistent-pool service through `submit` versus the same jobs as blocking
/// sequential batches.
#[derive(Debug, Clone)]
pub struct ThroughputExperiment {
    /// Total jobs (`submitters` × `jobs_per_submitter`).
    pub jobs: usize,
    /// Structurally distinct trees cycled through the job list.
    pub distinct_trees: usize,
    /// Concurrent submitting threads of the queued run.
    pub submitters: usize,
    /// Jobs each submitter enqueues before waiting (the queue depth it builds).
    pub jobs_per_submitter: usize,
    /// Persistent-pool size of both services (after auto-detection).
    pub workers: usize,
    /// Wall-clock of the sequential mode (best of five cold-cache
    /// repetitions): the same client threads, serialized — one blocking
    /// `run_batch` per client, one client at a time.
    pub sequential_wall: Duration,
    /// Wall-clock of the queued mode (best of five cold-cache repetitions):
    /// all clients enqueue concurrently against one service, the pool drains
    /// continuously.
    pub queued_wall: Duration,
    /// `jobs / sequential_wall` in jobs per second.
    pub sequential_throughput: f64,
    /// `jobs / queued_wall` in jobs per second.
    pub queued_throughput: f64,
    /// `queued_throughput / sequential_throughput` (≥ 1 means the queue wins).
    pub speedup: f64,
    /// Median submit→report latency of the queued run.
    pub latency_p50: Duration,
    /// 99th-percentile submit→report latency of the queued run.
    pub latency_p99: Duration,
    /// Cache hits of the queued run.
    pub cache_hits: usize,
    /// Cache misses of the queued run.
    pub cache_misses: usize,
    /// Aggregation runs of the queued run — must equal `distinct_trees`.
    pub aggregation_runs: usize,
    /// Jobs of the queued run that blocked on a concurrent builder — must be 0
    /// (the queue parks duplicates instead).
    pub build_waits: usize,
    /// `true` when every job of both runs returned results bit-identical to a
    /// sequential [`Analyzer`] run over the same tree.
    pub bit_identical: bool,
}

/// Runs the async-throughput experiment on the portfolio workload: the same
/// `submitters × jobs_per_submitter` rate-scaled CAS jobs once as successive
/// blocking [`AnalysisService::run_batch`] calls (one per submitter chunk) and
/// once as `submitters` concurrent threads submitting through
/// [`AnalysisService::submit`] and awaiting their [`JobHandle`]s — each mode
/// repeated five times on a fresh cold-cache service with the *best* wall
/// kept (the standard noise-floor measurement), and per-job submit→report
/// latencies recorded in the queued runs.  Both modes keep the same client
/// threads alive (the blocking mode serializes them with a mutex), so the
/// comparison isolates turn-taking versus continuous draining.  Bit-identity
/// against a sequential [`Analyzer`] reference is checked on *every*
/// repetition.
///
/// [`JobHandle`]: dft_core::service::JobHandle
///
/// # Errors
///
/// Propagates analysis errors from the sequential reference (the service runs
/// report per-job errors, which fail the bit-identity check instead).
pub fn run_throughput_experiment(
    distinct: usize,
    submitters: usize,
    jobs_per_submitter: usize,
    workers: usize,
) -> Result<ThroughputExperiment> {
    use dft_core::service::{JobHandle, JobReport};

    /// Best-of-N repetitions per mode: both walls are tens of milliseconds,
    /// where single-shot measurements swing with the scheduler.
    const REPETITIONS: usize = 5;

    let variants: Vec<Dft> = (0..distinct)
        .map(|i| cas_scaled(1.0 + 0.05 * i as f64))
        .collect();
    let measures = vec![Measure::curve(DEFAULT_MISSION_TIMES)];
    // Submitter `s` cycles the variants starting at offset `s`, so duplicate
    // structures interleave *across* submitters — the regime the queue's
    // leader/follower parking exists for.
    let variant_of = |s: usize, j: usize| (s + j) % distinct;
    let chunk = |s: usize| -> Vec<AnalysisJob> {
        (0..jobs_per_submitter)
            .map(|j| {
                AnalysisJob::new(
                    variants[variant_of(s, j)].clone(),
                    AnalysisOptions::default(),
                    measures.clone(),
                )
            })
            .collect()
    };

    let reference: Vec<Vec<MeasureResult>> = variants
        .iter()
        .map(|dft| Analyzer::new(dft, AnalysisOptions::default())?.query_all(&measures))
        .collect::<Result<_>>()?;
    let matches_reference = |s: usize, j: usize, results: &Result<Vec<MeasureResult>>| -> bool {
        results.as_ref().is_ok_and(|results| {
            let expected = &reference[variant_of(s, j)];
            results.len() == expected.len()
                && results.iter().zip(expected).all(|(r, e)| bitwise_eq(r, e))
        })
    };

    let mut bit_identical = true;

    // Sequential baseline: the same client threads exist, but blocking
    // batches force them to take turns — a mutex serializes the `run_batch`
    // calls, so each batch waits for its last job before the next client gets
    // the service.  Fresh cold-cache service per repetition.  (Keeping the
    // client threads alive in both modes isolates what the *API* changes:
    // turn-taking versus continuous draining, not thread-count effects.)
    let mut sequential_wall = Duration::MAX;
    for _ in 0..REPETITIONS {
        let sequential = AnalysisService::new(ServiceOptions {
            workers,
            cache_capacity: 0,
            ..ServiceOptions::default()
        });
        let turn = std::sync::Mutex::new(());
        let started = Instant::now();
        let reports: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..submitters)
                .map(|s| {
                    let service = &sequential;
                    let turn = &turn;
                    scope.spawn(move || {
                        let _my_turn = turn.lock().expect("turn lock");
                        service.run_batch(&chunk(s))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        sequential_wall = sequential_wall.min(started.elapsed());
        bit_identical &= reports.iter().enumerate().all(|(s, report)| {
            report
                .jobs
                .iter()
                .enumerate()
                .all(|(j, job)| matches_reference(s, j, &job.results))
        });
    }

    // Queued runs: every submitter enqueues its whole chunk first (building an
    // M-deep queue), then awaits the handles, recording per-job latency.  The
    // accounting (and the latency percentiles) come from the best repetition;
    // the cache counters are deterministic, so every repetition agrees.
    type SubmitterOutcome = (Vec<(usize, usize, JobReport)>, Vec<Duration>);
    let mut queued_wall = Duration::MAX;
    let mut best_outcomes: Vec<SubmitterOutcome> = Vec::new();
    let mut pool_workers = 0;
    for _ in 0..REPETITIONS {
        let queued = AnalysisService::new(ServiceOptions {
            workers,
            cache_capacity: 0,
            ..ServiceOptions::default()
        });
        let started = Instant::now();
        let outcomes: Vec<SubmitterOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..submitters)
                .map(|s| {
                    let service = &queued;
                    let jobs = chunk(s);
                    scope.spawn(move || {
                        let submitted: Vec<(usize, Instant, JobHandle)> = jobs
                            .into_iter()
                            .enumerate()
                            .map(|(j, job)| (j, Instant::now(), service.submit(job)))
                            .collect();
                        let mut reports = Vec::with_capacity(submitted.len());
                        let mut latencies = Vec::with_capacity(submitted.len());
                        for (j, submitted_at, handle) in submitted {
                            let report = handle.wait();
                            latencies.push(submitted_at.elapsed());
                            reports.push((s, j, report));
                        }
                        (reports, latencies)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = started.elapsed();
        pool_workers = queued.pool_workers();
        bit_identical &= outcomes.iter().all(|(reports, _)| {
            reports
                .iter()
                .all(|(s, j, report)| matches_reference(*s, *j, &report.results))
        });
        if wall < queued_wall {
            queued_wall = wall;
            best_outcomes = outcomes;
        }
    }

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut cache_hits, mut cache_misses, mut aggregation_runs, mut build_waits) = (0, 0, 0, 0);
    for (reports, lats) in &best_outcomes {
        latencies.extend(lats.iter().copied());
        for (_, _, report) in reports {
            if report.cache_hit {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
            aggregation_runs += report.aggregation_runs;
            build_waits += usize::from(report.build_wait);
        }
    }
    latencies.sort();
    let jobs = submitters * jobs_per_submitter;
    let percentile = |p: usize| latencies[(jobs - 1) * p / 100];
    let sequential_throughput = jobs as f64 / sequential_wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let queued_throughput = jobs as f64 / queued_wall.as_secs_f64().max(f64::MIN_POSITIVE);

    Ok(ThroughputExperiment {
        jobs,
        distinct_trees: distinct,
        submitters,
        jobs_per_submitter,
        workers: pool_workers,
        sequential_wall,
        queued_wall,
        sequential_throughput,
        queued_throughput,
        speedup: queued_throughput / sequential_throughput.max(f64::MIN_POSITIVE),
        latency_p50: percentile(50),
        latency_p99: percentile(99),
        cache_hits,
        cache_misses,
        aggregation_runs,
        build_waits,
        bit_identical,
    })
}

/// Results of the rate-sweep experiment: one parametric aggregation of the CAS
/// structure versus K independent per-scale builds.
#[derive(Debug, Clone)]
pub struct SweepExperiment {
    /// Number of sweep points (rate scales).
    pub points: usize,
    /// Mission time of the unreliability query.
    pub mission_time: f64,
    /// The rate scales swept, in order.
    pub scales: Vec<f64>,
    /// Unreliability per scale, from the parametric sweep.
    pub values: Vec<f64>,
    /// Aggregation runs of the parametric session — exactly 1 for the whole
    /// sweep, which is the point of the experiment.
    pub aggregation_runs: usize,
    /// States of the closed parametric model.
    pub parametric_states: usize,
    /// Wall-clock of the one parametric aggregation.
    pub parametric_build: Duration,
    /// Rate-form evaluation + CTMDP setup, summed over all points.
    pub sweep_instantiate: Duration,
    /// Query time, summed over all points.
    pub sweep_query: Duration,
    /// Total parametric cost: build + instantiate + query.
    pub sweep_total: Duration,
    /// Wall-clock of one independent `Analyzer::new` build + query (the first
    /// sweep point, re-done the classical way).
    pub single_point: Duration,
    /// Wall-clock of all K independent builds + queries.
    pub independent_total: Duration,
    /// `independent_total / sweep_total`: the end-to-end wall-clock win,
    /// including the one-time parametric aggregation.
    pub speedup: f64,
    /// `single_point / ((instantiate + query) / points)`: the *marginal* win
    /// per sweep point once the one aggregation is amortized — this is the
    /// acceptance ratio "total query/instantiate time vs K× single-point
    /// cost", and what long sweeps converge to.
    pub marginal_speedup: f64,
    /// Marginal cost of one *additional* sweep point in microseconds:
    /// `(full sweep wall − one-point sweep wall) / (K − 1)`.  Unlike
    /// `marginal_speedup` this is an absolute number the baseline gate can
    /// hold on to: batching K points through one kernel traversal must keep
    /// it well below the committed value.
    pub marginal_us_per_point: f64,
    /// Largest absolute difference between sweep values/bounds and the
    /// per-point independent reference.
    pub max_abs_diff: f64,
    /// `true` when `max_abs_diff` ≤ 1e-12.
    pub within_tolerance: bool,
}

/// Runs the rate-sweep experiment on the cardiac assist system: aggregate the
/// structure once ([`ParametricAnalyzer`]), instantiate `points` failure-rate
/// scales (1.0, 1.05, …) at query time, and check every unreliability value
/// against an independent [`Analyzer::new`] build of the equivalent pre-scaled
/// tree ([`cas_scaled`]).
///
/// Both sides run with a tightened truncation bound (ε = 1e-13) so the 1e-12
/// agreement check measures the models, not the numerics.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study).
pub fn run_sweep_experiment(points: usize, mission_time: f64) -> Result<SweepExperiment> {
    assert!(points > 0, "a sweep needs at least one point");
    let options = AnalysisOptions {
        epsilon: 1e-13,
        ..AnalysisOptions::default()
    };
    let scales: Vec<f64> = (0..points).map(|i| 1.0 + 0.05 * i as f64).collect();

    let build_start = Instant::now();
    let parametric = ParametricAnalyzer::new(&cas(), options.clone())?;
    let parametric_build = build_start.elapsed();
    let valuations: Vec<Valuation> = scales
        .iter()
        .map(|&s| parametric.params().scaled_valuation(s))
        .collect();
    let sweep_wall_start = Instant::now();
    let sweep = parametric.sweep_unreliability(mission_time, &valuations)?;
    let sweep_wall = sweep_wall_start.elapsed();
    // Marginal cost of one additional point: subtract a one-point sweep's
    // wall from the full sweep's wall.  The one-point run happens second, so
    // any lazily built per-model state is warm for it but *charged* to the
    // full sweep — the resulting marginal is conservative, never flattered.
    let one_point_start = Instant::now();
    parametric.sweep_unreliability(mission_time, &valuations[..1])?;
    let one_point_wall = one_point_start.elapsed();
    let marginal_us_per_point = if points > 1 {
        (sweep_wall.saturating_sub(one_point_wall)).as_secs_f64() * 1e6 / (points - 1) as f64
    } else {
        sweep_wall.as_secs_f64() * 1e6
    };

    let mut independent_total = Duration::ZERO;
    let mut single_point = Duration::ZERO;
    let mut max_abs_diff = 0.0f64;
    for (i, &scale) in scales.iter().enumerate() {
        let started = Instant::now();
        let analyzer = Analyzer::new(&cas_scaled(scale), options.clone())?;
        let reference = analyzer.unreliability(mission_time)?;
        let elapsed = started.elapsed();
        independent_total += elapsed;
        if i == 0 {
            single_point = elapsed;
        }
        let (lo, hi) = sweep.results()[i].bounds();
        let (ref_lo, ref_hi) = reference.bounds();
        max_abs_diff = max_abs_diff
            .max((lo - ref_lo).abs())
            .max((hi - ref_hi).abs());
    }

    let sweep_total = parametric_build + sweep.instantiate_time() + sweep.query_time();
    let marginal = (sweep.instantiate_time() + sweep.query_time()).as_secs_f64() / points as f64;
    Ok(SweepExperiment {
        points,
        mission_time,
        scales,
        values: sweep.values().collect(),
        aggregation_runs: parametric.aggregation_runs(),
        parametric_states: parametric.model_stats().states,
        parametric_build,
        sweep_instantiate: sweep.instantiate_time(),
        sweep_query: sweep.query_time(),
        sweep_total,
        single_point,
        independent_total,
        speedup: independent_total.as_secs_f64() / sweep_total.as_secs_f64().max(f64::MIN_POSITIVE),
        marginal_speedup: single_point.as_secs_f64() / marginal.max(f64::MIN_POSITIVE),
        marginal_us_per_point,
        max_abs_diff,
        within_tolerance: max_abs_diff <= 1e-12,
    })
}

/// Results of the CSR relax-kernel experiment: the legacy nested-loop value
/// iteration versus the flat [`RelaxKernel`](markov::RelaxKernel) on the same
/// seeded random CTMDP, plus the lane-batched and multi-threaded variants.
#[derive(Debug, Clone)]
pub struct KernelExperiment {
    /// States of the random CTMDP.
    pub states: usize,
    /// Markovian transitions (CSR edges) of the model.
    pub markovian_transitions: usize,
    /// Value vectors batched through one structure traversal.
    pub lanes: usize,
    /// Time bounds evaluated per reachability call.
    pub time_points: usize,
    /// Worker count [`RelaxKernel::auto_workers`](markov::RelaxKernel::auto_workers)
    /// picks for the batched kernel on this host.
    pub auto_workers: usize,
    /// Workers actually used for the threaded measurement (≥ 2, so the
    /// threaded driver is exercised even on small hosts).
    pub threaded_workers: usize,
    /// Wall-clock of the legacy nested-loop relax (one lane).
    pub legacy: Duration,
    /// Wall-clock of the CSR kernel, one lane, sequential.
    pub kernel_sequential: Duration,
    /// Wall-clock of `lanes` independent single-lane kernel runs.
    pub scalar_total: Duration,
    /// Wall-clock of one batched `lanes`-lane kernel run, sequential.
    pub batched: Duration,
    /// Wall-clock of the same batched run with `threaded_workers` workers.
    pub threaded: Duration,
    /// `scalar_total / batched`: the structure-traversal amortization win.
    pub batch_speedup: f64,
    /// Kernel (one lane, sequential) matches the legacy relax bit for bit.
    pub bit_identical: bool,
    /// Every batched lane matches its independent single-lane run bit for bit.
    pub batch_identical: bool,
    /// The threaded run matches the sequential run bit for bit.
    pub worker_invariant: bool,
}

/// Builds a seeded random CTMDP shaped like the closed models the engine
/// produces: mostly Markovian states with a handful of racing exponentials,
/// interleaved immediate states with non-deterministic successor choices, and
/// a sprinkling of goal states.  Equal seeds yield equal models.
fn random_ctmdp_template(seed: u64, states: usize) -> (Vec<markov::CtmdpState>, Vec<bool>) {
    use markov::CtmdpState;
    let mut rng = SplitMix64::new(seed);
    let mut template = Vec::with_capacity(states);
    for s in 0..states {
        // State 0 is always Markovian so the model has a hot numeric path.
        if s == 0 || rng.next_f64() < 0.7 {
            let fanout = 1 + (rng.next_u64() % 6) as usize;
            let row = (0..fanout)
                .map(|_| {
                    let target = (rng.next_u64() % states as u64) as u32;
                    (target, 0.1 + 2.9 * rng.next_f64())
                })
                .collect();
            template.push(CtmdpState::Markovian(row));
        } else {
            let fanout = (rng.next_u64() % 4) as usize;
            let succs = (0..fanout)
                .map(|_| (rng.next_u64() % states as u64) as u32)
                .collect();
            template.push(CtmdpState::Immediate(succs));
        }
    }
    let goal = (0..states).map(|_| rng.next_f64() < 0.15).collect();
    (template, goal)
}

/// Runs the relax-kernel experiment: lowers a seeded random CTMDP into the
/// flat CSR kernel and measures it against the legacy nested-loop relax, then
/// batches `lanes` rate-scaled copies through one traversal (sequentially and
/// with the threaded driver), asserting bit-identity at every step.
///
/// All three identity flags in the result must be `true`; the experiment bin
/// fails hard when they are not.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the generated models).
pub fn run_kernel_experiment(states: usize, lanes: usize) -> Result<KernelExperiment> {
    use markov::{Ctmdp, CtmdpState, RelaxKernel};
    assert!(states > 0 && lanes > 0, "the experiment needs a real model");
    let epsilon = 1e-9;
    let times = [0.25, 0.5, 1.0, 2.0];
    let maximise = true;

    let (template, goal) = random_ctmdp_template(0x0d51_2007, states);
    let edge_rates: Vec<f64> = template
        .iter()
        .flat_map(|st| match st {
            CtmdpState::Markovian(row) => row.iter().map(|&(_, r)| r).collect::<Vec<f64>>(),
            CtmdpState::Immediate(_) => Vec::new(),
        })
        .collect();
    let markovian_transitions = edge_rates.len();

    // Legacy nested-loop relax vs the CSR kernel, one lane, sequential.
    let ctmdp = Ctmdp::new(template.clone(), 0, goal.clone())?;
    let started = Instant::now();
    let legacy_values = ctmdp.reachability_extremal_multi_legacy(&times, epsilon, maximise)?;
    let legacy = started.elapsed();
    let kernel = RelaxKernel::from_states(&template);
    let started = Instant::now();
    let kernel_values = kernel.reachability(0, &goal, &times, epsilon, maximise, 1)?;
    let kernel_sequential = started.elapsed();
    let bit_identical = legacy_values.len() == kernel_values.len()
        && legacy_values
            .iter()
            .zip(&kernel_values)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    // K rate-scaled lanes: once through the batched kernel, once as K
    // independent single-lane kernels.
    let scales: Vec<f64> = (0..lanes).map(|k| 0.75 + 0.1 * k as f64).collect();
    let mut lane_rates = vec![0.0; markovian_transitions * lanes];
    for (e, &rate) in edge_rates.iter().enumerate() {
        for (k, &scale) in scales.iter().enumerate() {
            lane_rates[e * lanes + k] = rate * scale;
        }
    }
    let batched_kernel = RelaxKernel::from_template(&template, &lane_rates, lanes)?;
    let started = Instant::now();
    let batched_values = batched_kernel.reachability(0, &goal, &times, epsilon, maximise, 1)?;
    let batched = started.elapsed();

    let mut scalar_total = Duration::ZERO;
    let mut batch_identical = true;
    for (k, &scale) in scales.iter().enumerate() {
        let scaled: Vec<f64> = edge_rates.iter().map(|&r| r * scale).collect();
        let scalar_kernel = RelaxKernel::from_template(&template, &scaled, 1)?;
        let started = Instant::now();
        let scalar_values = scalar_kernel.reachability(0, &goal, &times, epsilon, maximise, 1)?;
        scalar_total += started.elapsed();
        batch_identical &= (0..times.len())
            .all(|t| scalar_values[t].to_bits() == batched_values[t * lanes + k].to_bits());
    }

    // The same batched call through the threaded driver; ≥ 2 workers so the
    // chunked relax actually runs even when `auto_workers` stays sequential.
    let auto_workers = batched_kernel.auto_workers();
    let threaded_workers = auto_workers.max(2);
    let started = Instant::now();
    let threaded_values =
        batched_kernel.reachability(0, &goal, &times, epsilon, maximise, threaded_workers)?;
    let threaded = started.elapsed();
    let worker_invariant = threaded_values
        .iter()
        .zip(&batched_values)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    Ok(KernelExperiment {
        states,
        markovian_transitions,
        lanes,
        time_points: times.len(),
        auto_workers,
        threaded_workers,
        legacy,
        kernel_sequential,
        scalar_total,
        batched,
        threaded,
        batch_speedup: scalar_total.as_secs_f64() / batched.as_secs_f64().max(f64::MIN_POSITIVE),
        bit_identical,
        batch_identical,
        worker_invariant,
    })
}

/// Results of the persistence experiment: the same portfolio served by a
/// cold and by a warm [`ModelStore`](dft_core::store::ModelStore)-backed
/// service, plus an in-process cold-build vs warm-load micro-comparison.
#[derive(Debug, Clone)]
pub struct PersistenceExperiment {
    /// Batch jobs run through the store-backed service.
    pub jobs: usize,
    /// Structurally distinct trees in the portfolio.
    pub distinct_trees: usize,
    /// Valuations of the rate sweep riding along (exercises the parametric
    /// store entries).
    pub sweep_points: usize,
    /// Store loads that produced a usable model (0 on a cold store).
    pub store_hits: u64,
    /// Store loads that found nothing usable.
    pub store_misses: u64,
    /// Entries written back after building.
    pub store_writes: u64,
    /// Entries that existed but were refused (should be 0 on a healthy dir).
    pub store_rejected: u64,
    /// Bytes read from the store across all loads.
    pub store_read_bytes: u64,
    /// Bytes written to the store across all write-backs.
    pub store_write_bytes: u64,
    /// Aggregation pipelines actually executed by the service (batch + sweep);
    /// 0 when every model came off disk.
    pub aggregation_runs: usize,
    /// End-to-end wall of the batch + sweep against the store-backed service.
    pub service_wall: Duration,
    /// Wall of one direct CAS `Analyzer::new` (the cost a warm store saves).
    pub cold_build: Duration,
    /// Wall of restoring the same session via `Analyzer::from_bytes`.
    pub warm_load: Duration,
    /// `cold_build / warm_load`.
    pub load_speedup: f64,
    /// Size of the serialized CAS session in bytes.
    pub entry_bytes: usize,
    /// States of the closed CAS model (deterministic; trend-gated).
    pub model_states: usize,
    /// `true` when the restored session answered bit-identically to the
    /// freshly built one.
    pub roundtrip_bit_identical: bool,
    /// `true` when every service job matched a fresh sequential reference.
    pub bit_identical: bool,
}

/// Runs the persistence experiment against `store_dir`: a portfolio of
/// `distinct × copies` rate-scaled CAS jobs plus a `sweep_points`-point rate
/// sweep, all through one [`AnalysisService`] with the persistent store
/// enabled — then an in-process `Analyzer::new` vs `from_bytes` wall
/// comparison on the CAS session.
///
/// Run twice against the same directory, the second call reports
/// `store_hits > 0` and `aggregation_runs == 0` with bit-identical results:
/// the CI `cache-warm` job asserts exactly that through the
/// `persistence_experiment` bin's `--expect-warm` flag.
///
/// # Errors
///
/// Propagates analysis errors from the sequential reference and store errors
/// from an unusable `store_dir` (the experiment *requires* the store, unlike
/// the service, which would silently degrade).
pub fn run_persistence_experiment(
    store_dir: &Path,
    distinct: usize,
    copies: usize,
    sweep_points: usize,
) -> Result<PersistenceExperiment> {
    // Fail loudly if the directory is unusable — a persistence experiment
    // without persistence would silently measure nothing.
    dft_core::store::ModelStore::open(store_dir)?;

    let variants: Vec<Dft> = (0..distinct)
        .map(|i| cas_scaled(1.0 + 0.05 * i as f64))
        .collect();
    let measures = vec![Measure::curve(DEFAULT_MISSION_TIMES)];
    let reference: Vec<Vec<MeasureResult>> = variants
        .iter()
        .map(|dft| Analyzer::new(dft, AnalysisOptions::default())?.query_all(&measures))
        .collect::<Result<_>>()?;

    let jobs: Vec<AnalysisJob> = (0..distinct * copies)
        .map(|i| {
            AnalysisJob::new(
                variants[i % distinct].clone(),
                AnalysisOptions::default(),
                measures.clone(),
            )
        })
        .collect();
    // The sweep valuations come from the conversion-only parameter table (no
    // aggregation spent on bookkeeping).
    let (_, params) = dft_core::convert_parametric(&variants[0])?;
    let valuations: Vec<Valuation> = (0..sweep_points)
        .map(|k| params.scaled_valuation(1.0 + 0.1 * k as f64))
        .collect();
    // Sweep reference: a freshly built parametric session, instantiated per
    // valuation — what a (possibly store-loaded) service sweep must match
    // bit-for-bit.
    let sweep_reference: Vec<Vec<MeasureResult>> = {
        let parametric = ParametricAnalyzer::new(&variants[0], AnalysisOptions::default())?;
        valuations
            .iter()
            .map(|v| parametric.instantiate(v)?.query_all(&measures))
            .collect::<Result<_>>()?
    };
    let sweep = SweepJob::new(
        variants[0].clone(),
        AnalysisOptions::default(),
        measures.clone(),
        valuations,
    );

    let service = AnalysisService::new(
        ServiceOptions {
            workers: 0,
            cache_capacity: 0,
            ..ServiceOptions::default()
        }
        .store(store_dir),
    );
    let started = Instant::now();
    let batch_report = service.run_batch(&jobs);
    let sweep_report = service.run_sweep(&sweep);
    let service_wall = started.elapsed();

    let bit_identical = batch_report.jobs.iter().enumerate().all(|(i, job)| {
        job.results.as_ref().is_ok_and(|results| {
            let expected = &reference[i % distinct];
            results.len() == expected.len()
                && results.iter().zip(expected).all(|(r, e)| bitwise_eq(r, e))
        })
    }) && sweep_report.points.len() == sweep_reference.len()
        && sweep_report
            .points
            .iter()
            .zip(&sweep_reference)
            .all(|(point, expected)| {
                point.results.as_ref().is_ok_and(|results| {
                    results.len() == expected.len()
                        && results.iter().zip(expected).all(|(r, e)| bitwise_eq(r, e))
                })
            });
    let aggregation_runs =
        batch_report.stats.aggregation_runs + sweep_report.stats.aggregation_runs;
    let store = service
        .store_stats()
        .expect("the experiment opened the store up front");

    // In-process micro-comparison: what one cold build costs versus one warm
    // load of the identical session.
    let cas_tree = cas();
    let started = Instant::now();
    let built = Analyzer::new(&cas_tree, AnalysisOptions::default())?;
    let cold_build = started.elapsed();
    let bytes = built.to_bytes();
    let started = Instant::now();
    let restored = Analyzer::from_bytes(&bytes)?;
    let warm_load = started.elapsed();
    let roundtrip_bit_identical = restored.aggregation_runs() == 0
        && bitwise_eq(
            &built.query_all(&measures)?[0],
            &restored.query_all(&measures)?[0],
        );

    Ok(PersistenceExperiment {
        jobs: jobs.len(),
        distinct_trees: distinct,
        sweep_points,
        store_hits: store.hits,
        store_misses: store.misses,
        store_writes: store.writes,
        store_rejected: store.rejected,
        store_read_bytes: store.read_bytes,
        store_write_bytes: store.write_bytes,
        aggregation_runs,
        service_wall,
        cold_build,
        warm_load,
        load_speedup: cold_build.as_secs_f64() / warm_load.as_secs_f64().max(f64::MIN_POSITIVE),
        entry_bytes: bytes.len(),
        model_states: built.model_stats().states,
        roundtrip_bit_identical,
        bit_identical,
    })
}

/// Results of the hybrid static-module experiment: the same static-heavy tree
/// analysed by the pure compositional pipeline and by the hybrid backend that
/// BDD-solves the static crown and keeps state space only inside the dynamic
/// cores.
#[derive(Debug, Clone)]
pub struct HybridExperiment {
    /// Basic events in the static crown structure (the spare pair is extra).
    pub static_width: usize,
    /// Closed-model states of the pure compositional session.
    pub compositional_states: usize,
    /// Summed core states of the hybrid session (0 for a fully static tree).
    pub hybrid_states: usize,
    /// `compositional_states / max(hybrid_states, 1)`.
    pub reduction_factor: f64,
    /// Dynamic cores found by the modularization pass.
    pub cores: usize,
    /// Elements solved in the BDD crown.
    pub crown_elements: usize,
    /// Elements left to the state-space cores.
    pub core_elements: usize,
    /// Largest absolute difference between the two unreliability curves over
    /// [`DEFAULT_MISSION_TIMES`].
    pub max_curve_diff: f64,
    /// Build/query split of the pure compositional session.
    pub compositional_timings: PhaseTimings,
    /// Build/query split of the hybrid session.
    pub hybrid_timings: PhaseTimings,
}

/// The experiment's subject: `static_width` distinct-rate basic events grouped
/// three at a time under alternating AND / 2-of-3 / OR gates, OR'd at the top
/// with one cold-spare pair — all the dynamism in a two-element core, all the
/// bulk in the static crown.
pub fn static_heavy_tree(static_width: usize) -> Dft {
    let mut b = DftBuilder::new();
    let mut groups = Vec::new();
    let mut leaves = Vec::new();
    for i in 0..static_width {
        let rate = 0.25 + 0.05 * i as f64;
        let be = b
            .basic_event(&format!("hx_e{i}"), rate, Dormancy::Hot)
            .expect("fresh name");
        leaves.push(be);
        if leaves.len() == 3 {
            let inputs: Vec<ElementId> = std::mem::take(&mut leaves);
            let name = format!("hx_g{}", groups.len());
            let gate = match groups.len() % 3 {
                0 => b.and_gate(&name, &inputs).expect("fresh gate"),
                1 => b.voting_gate(&name, 2, &inputs).expect("fresh gate"),
                _ => b.or_gate(&name, &inputs).expect("fresh gate"),
            };
            groups.push(gate);
        }
    }
    groups.extend(leaves);
    let p = b
        .basic_event("hx_p", 1.0, Dormancy::Hot)
        .expect("fresh name");
    let s = b
        .basic_event("hx_s", 1.0, Dormancy::Cold)
        .expect("fresh name");
    groups.push(b.spare_gate("hx_spare", &[p, s]).expect("fresh gate"));
    let top = b.or_gate("hx_top", &groups).expect("fresh gate");
    b.build(top).expect("well-formed tree")
}

/// Runs the hybrid experiment on [`static_heavy_tree`]`(static_width)`.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed tree family).
pub fn run_hybrid_experiment(static_width: usize) -> Result<HybridExperiment> {
    let dft = static_heavy_tree(static_width);
    let times = DEFAULT_MISSION_TIMES.to_vec();

    let run = |method: Method| -> Result<(Analyzer, Vec<f64>, PhaseTimings)> {
        let options = AnalysisOptions {
            method,
            // Tight truncation bound: the curves are compared against each
            // other, so the numerical error must sit far below the gap the
            // comparison is meant to detect.
            epsilon: 1e-13,
        };
        let build_start = Instant::now();
        let analyzer = Analyzer::new(&dft, options)?;
        let build = build_start.elapsed();
        let query_start = Instant::now();
        let curve = analyzer
            .unreliability_curve(&times)?
            .points()
            .iter()
            .map(|p| p.value())
            .collect();
        let query = query_start.elapsed();
        Ok((analyzer, curve, PhaseTimings { build, query }))
    };

    let (pure, reference, compositional_timings) = run(Method::Compositional)?;
    let (hybrid, reduced, hybrid_timings) = run(Method::Hybrid)?;
    let stats = hybrid
        .module_stats()
        .expect("a spare pair under an OR of static modules must decompose");

    let compositional_states = pure.model_stats().states;
    let hybrid_states = hybrid.model_stats().states;
    let max_curve_diff = reference
        .iter()
        .zip(&reduced)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    Ok(HybridExperiment {
        static_width,
        compositional_states,
        hybrid_states,
        reduction_factor: compositional_states as f64 / hybrid_states.max(1) as f64,
        cores: stats.core_count,
        crown_elements: stats.crown_elements,
        core_elements: stats.core_elements,
        max_curve_diff,
        compositional_timings,
        hybrid_timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_experiment_cold_then_warm() {
        let dir =
            std::env::temp_dir().join(format!("dftmc-bench-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cold = run_persistence_experiment(&dir, 2, 2, 2).unwrap();
        assert_eq!(cold.jobs, 4);
        assert_eq!(cold.store_hits, 0, "first run starts from an empty store");
        assert!(cold.store_writes >= 3, "2 sessions + 1 parametric model");
        assert_eq!(cold.aggregation_runs, 3);
        assert!(cold.bit_identical && cold.roundtrip_bit_identical);

        let warm = run_persistence_experiment(&dir, 2, 2, 2).unwrap();
        assert!(warm.store_hits >= 3, "second run loads every model");
        assert_eq!(
            warm.aggregation_runs, 0,
            "zero aggregations on a warm store"
        );
        assert_eq!(warm.store_rejected, 0);
        assert!(warm.bit_identical && warm.roundtrip_bit_identical);
        assert_eq!(warm.model_states, cold.model_states);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cas_experiment_reproduces_the_paper() {
        let e = run_cas_experiment().unwrap();
        assert!(e.unreliability.relative_error().unwrap() < 1e-3);
        assert!((e.monolithic_unreliability - e.unreliability.measured).abs() < 1e-6);
        assert_eq!(e.module_states.len(), 3);
    }

    #[test]
    fn cps_experiment_reproduces_the_paper() {
        let e = run_cps_experiment().unwrap();
        assert!(e.unreliability.relative_error().unwrap() < 0.01);
        assert_eq!(e.monolithic_states.measured as usize, 4113);
        assert_eq!(e.monolithic_transitions.measured as usize, 24608);
        assert!(e.module_a_states <= 6);
    }

    #[test]
    fn scaling_experiment_shows_the_gap_growing() {
        let rows = run_scaling_experiment(3).unwrap();
        assert_eq!(rows.len(), 3);
        // The monolithic chain outgrows the compositional peak as width increases.
        let last = rows.last().unwrap();
        assert!(last.monolithic_states > last.compositional_peak);
    }

    #[test]
    fn connectivity_experiment_runs() {
        let rows = run_connectivity_experiment(&[3, 4]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r.connected_peak > 0 && r.modular_peak > 0));
    }

    #[test]
    fn repair_experiment_matches_the_closed_form() {
        let e = run_repair_experiment(1.0, 2.0, 10.0).unwrap();
        assert!(e.unavailability.relative_error().unwrap() < 1e-6);
        assert!(e.mttf.is_finite() && e.mttf > 0.0);
    }

    #[test]
    fn nondeterminism_experiment_produces_proper_intervals() {
        let e = run_nondeterminism_experiment(&[0.5, 1.0]).unwrap();
        assert_eq!(e.rows.len(), 2);
        for row in e.rows {
            assert!(row.lower < row.upper);
            assert!(row.baseline >= row.lower - 1e-9 && row.baseline <= row.upper + 1e-9);
        }
    }

    #[test]
    fn highly_connected_trees_have_no_nontrivial_modules() {
        let dft = highly_connected(4, 1.0);
        let modules = dft::modules::independent_modules(&dft);
        // Only the top gate roots an independent module.
        assert_eq!(modules.len(), 1);
    }

    #[test]
    fn portfolio_experiment_caches_and_stays_bit_identical() {
        let e = run_portfolio_experiment(3, 3, 2).unwrap();
        assert_eq!(e.jobs, 9);
        assert_eq!(e.distinct_trees, 3);
        assert_eq!(e.aggregation_runs, 3, "one aggregation per distinct tree");
        assert_eq!(e.cache_misses, 3);
        assert_eq!(e.cache_hits, 6);
        assert!(
            e.bit_identical,
            "service results must match sequential runs"
        );
    }

    #[test]
    fn throughput_experiment_queues_and_stays_bit_identical() {
        let e = run_throughput_experiment(3, 4, 3, 2).unwrap();
        assert_eq!(e.jobs, 12);
        assert_eq!(e.distinct_trees, 3);
        assert_eq!(e.aggregation_runs, 3, "one aggregation per distinct tree");
        assert_eq!(e.cache_misses, 3);
        assert_eq!(e.cache_hits, 9);
        assert_eq!(e.build_waits, 0, "duplicates park, they never block");
        assert!(e.bit_identical, "queued results must match sequential runs");
        assert!(e.latency_p99 >= e.latency_p50);
    }

    #[test]
    fn hybrid_experiment_reduces_states_and_matches_curves() {
        let e = run_hybrid_experiment(9).unwrap();
        assert_eq!(e.cores, 1, "one spare pair, one dynamic core");
        assert!(e.crown_elements > 0 && e.core_elements > 0);
        assert!(
            e.reduction_factor >= 10.0,
            "reduction {} below the promised 10x",
            e.reduction_factor
        );
        assert!(
            e.max_curve_diff <= 1e-12,
            "curves diverge by {}",
            e.max_curve_diff
        );
    }

    #[test]
    fn repairable_voting_builds() {
        let dft = repairable_voting(3, 0.5, 5.0);
        assert_eq!(dft.num_basic_events(), 3);
        assert!(dft.is_repairable());
    }

    #[test]
    fn sweep_experiment_matches_independent_builds() {
        let e = run_sweep_experiment(4, 1.0).unwrap();
        assert_eq!(e.points, 4);
        assert_eq!(e.values.len(), 4);
        assert_eq!(e.aggregation_runs, 1, "one aggregation for the whole sweep");
        assert!(
            e.within_tolerance,
            "sweep deviates from independent builds by {}",
            e.max_abs_diff
        );
        // Unreliability grows with the failure-rate scale.
        for pair in e.values.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
    }
}
