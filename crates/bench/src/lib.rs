//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! experiment here (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers):
//!
//! * **E2 (CAS, Section 5.1)** — [`run_cas_experiment`]
//! * **E3/E4 (CPS, Section 5.2, Figures 8/9)** — [`run_cps_experiment`]
//! * **E5 (Figure 6)** — [`run_nondeterminism_experiment`]
//! * **E8 (Figures 13–15)** — [`run_repair_experiment`]
//! * **E9 (scaling discussion of Section 5.2)** — [`run_scaling_experiment`]
//!
//! The experiment binaries in `src/bin/` print these results as tables; the
//! Criterion benches in `benches/` measure the analysis run times.

use dft::{Dft, DftBuilder, Dormancy, ElementId};
use dft_core::analysis::{unreliability, AnalysisOptions, Method};
use dft_core::baseline::monolithic_ctmc;
use dft_core::casestudies::{cas, cascaded_pand, cas_cpu_unit, cas_motor_unit, cas_pump_unit, cps};
use dft_core::Result;

/// Paper-vs-measured record for a single scalar result.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Value reported in the paper (if any).
    pub paper: Option<f64>,
    /// Value measured by this implementation.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation from the paper value, when one exists.
    pub fn relative_error(&self) -> Option<f64> {
        self.paper.map(|p| ((self.measured - p) / p).abs())
    }
}

/// Results of the cardiac-assist-system experiment (E2).
#[derive(Debug, Clone)]
pub struct CasExperiment {
    /// Unreliability at mission time 1 (paper: 0.6579).
    pub unreliability: Comparison,
    /// Unreliability from the monolithic baseline.
    pub monolithic_unreliability: f64,
    /// Peak intermediate size during compositional aggregation (states).
    pub peak_states: usize,
    /// Aggregated model sizes of the three independent units (states).
    pub module_states: Vec<(String, usize)>,
    /// Size of the monolithic chain over the full system (states).
    pub monolithic_states: usize,
}

/// Runs the CAS experiment.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study).
pub fn run_cas_experiment() -> Result<CasExperiment> {
    let dft = cas();
    let options = AnalysisOptions::default();
    let comp = unreliability(&dft, 1.0, &options)?;
    let mono = unreliability(
        &dft,
        1.0,
        &AnalysisOptions { method: Method::Monolithic, ..options },
    )?;
    let mut module_states = Vec::new();
    for (name, module) in [
        ("CPU_unit", cas_cpu_unit()),
        ("Motor_unit", cas_motor_unit()),
        ("Pump_unit", cas_pump_unit()),
    ] {
        let (model, _) = dft_core::analysis::aggregated_model(&module)?;
        module_states.push((name.to_owned(), model.num_states()));
    }
    Ok(CasExperiment {
        unreliability: Comparison {
            paper: Some(dft_core::casestudies::CAS_PAPER_UNRELIABILITY),
            measured: comp.probability(),
        },
        monolithic_unreliability: mono.probability(),
        peak_states: comp.aggregation_stats().expect("compositional run").peak.states,
        module_states,
        monolithic_states: monolithic_ctmc(&dft)?.num_states(),
    })
}

/// Results of the cascaded-PAND experiment (E3/E4).
#[derive(Debug, Clone)]
pub struct CpsExperiment {
    /// Unreliability at mission time 1 (paper: 0.00135).
    pub unreliability: Comparison,
    /// Peak intermediate states during compositional aggregation (paper: 156).
    pub peak_states: Comparison,
    /// Peak intermediate transitions (paper: 490).
    pub peak_transitions: Comparison,
    /// Monolithic chain states (paper: 4113).
    pub monolithic_states: Comparison,
    /// Monolithic chain transitions (paper: 24608).
    pub monolithic_transitions: Comparison,
    /// States of the aggregated I/O-IMC of one AND module (Figure 9).
    pub module_a_states: usize,
}

/// Runs the CPS experiment.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study).
pub fn run_cps_experiment() -> Result<CpsExperiment> {
    use dft_core::casestudies::{CPS_PAPER_MONOLITHIC, CPS_PAPER_PEAK, CPS_PAPER_UNRELIABILITY};
    let dft = cps();
    let comp = unreliability(&dft, 1.0, &AnalysisOptions::default())?;
    let stats = comp.aggregation_stats().expect("compositional run").clone();
    let mono = monolithic_ctmc(&dft)?;

    let module_a = single_and_module(4, 1.0);
    let (module_model, _) = dft_core::analysis::aggregated_model(&module_a)?;

    Ok(CpsExperiment {
        unreliability: Comparison {
            paper: Some(CPS_PAPER_UNRELIABILITY),
            measured: comp.probability(),
        },
        peak_states: Comparison {
            paper: Some(CPS_PAPER_PEAK.0 as f64),
            measured: stats.peak.states as f64,
        },
        peak_transitions: Comparison {
            paper: Some(CPS_PAPER_PEAK.1 as f64),
            measured: stats.peak.transitions() as f64,
        },
        monolithic_states: Comparison {
            paper: Some(CPS_PAPER_MONOLITHIC.0 as f64),
            measured: mono.num_states() as f64,
        },
        monolithic_transitions: Comparison {
            paper: Some(CPS_PAPER_MONOLITHIC.1 as f64),
            measured: mono.num_transitions() as f64,
        },
        module_a_states: module_model.num_states(),
    })
}

/// A single AND module of `width` identical rate-`rate` basic events (module A of
/// Figure 8/9).
pub fn single_and_module(width: usize, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let events: Vec<ElementId> = (0..width)
        .map(|i| b.basic_event(&format!("A_{i}"), rate, Dormancy::Hot).expect("valid BE"))
        .collect();
    let top = b.and_gate("A", &events).expect("valid gate");
    b.build(top).expect("wellformed module")
}

/// One row of the scaling experiment (E9).
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of basic events per AND module.
    pub width: usize,
    /// Total number of basic events.
    pub basic_events: usize,
    /// Peak states during compositional aggregation.
    pub compositional_peak: usize,
    /// States of the monolithic chain.
    pub monolithic_states: usize,
    /// Unreliability at mission time 1 (agreement check between the methods).
    pub unreliability: f64,
}

/// Runs the scaling experiment over the cascaded-PAND family: for growing module
/// width, compare the compositional peak against the monolithic chain size.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_scaling_experiment(max_width: usize) -> Result<Vec<ScalingRow>> {
    let mut rows = Vec::new();
    for width in 1..=max_width {
        let dft = cascaded_pand(width, 1.0);
        let comp = unreliability(&dft, 1.0, &AnalysisOptions::default())?;
        let mono = monolithic_ctmc(&dft)?;
        rows.push(ScalingRow {
            width,
            basic_events: dft.num_basic_events(),
            compositional_peak: comp.aggregation_stats().expect("compositional").peak.states,
            monolithic_states: mono.num_states(),
            unreliability: comp.probability(),
        });
    }
    Ok(rows)
}

/// A "highly connected" DFT family for the negative result the paper mentions at
/// the end of Section 5.2: `n` basic events, every pair feeding a shared AND gate,
/// all gates collected under one OR.  There are no independent modules, so
/// compositional aggregation has little structure to exploit.
pub fn highly_connected(n: usize, rate: f64) -> Dft {
    let mut b = DftBuilder::new();
    let events: Vec<ElementId> = (0..n)
        .map(|i| b.basic_event(&format!("hc_{i}"), rate, Dormancy::Hot).expect("valid BE"))
        .collect();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push(
                b.and_gate(&format!("hc_and_{i}_{j}"), &[events[i], events[j]])
                    .expect("valid gate"),
            );
        }
    }
    let top = b.or_gate("hc_top", &pairs).expect("valid gate");
    b.build(top).expect("wellformed DFT")
}

/// One row of the connectivity experiment: modular versus highly connected trees
/// of the same size.
#[derive(Debug, Clone)]
pub struct ConnectivityRow {
    /// Number of basic events.
    pub basic_events: usize,
    /// Peak states for the highly connected tree.
    pub connected_peak: usize,
    /// Peak states for a modular tree with the same number of events
    /// (cascaded-PAND family).
    pub modular_peak: usize,
}

/// Runs the connectivity experiment (the qualitative claim that compositional
/// aggregation helps less for highly connected DFTs).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_connectivity_experiment(sizes: &[usize]) -> Result<Vec<ConnectivityRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let connected = highly_connected(n, 1.0);
        let connected_peak = unreliability(&connected, 1.0, &AnalysisOptions::default())?
            .aggregation_stats()
            .expect("compositional")
            .peak
            .states;
        // A modular tree with a comparable number of events: width n/3 rounded up.
        let width = n.div_ceil(3).max(1);
        let modular = cascaded_pand(width, 1.0);
        let modular_peak = unreliability(&modular, 1.0, &AnalysisOptions::default())?
            .aggregation_stats()
            .expect("compositional")
            .peak
            .states;
        rows.push(ConnectivityRow { basic_events: n, connected_peak, modular_peak });
    }
    Ok(rows)
}

/// Results of the repairable-system experiment (E8).
#[derive(Debug, Clone)]
pub struct RepairExperiment {
    /// Computed unavailability of the Figure-15 system.
    pub unavailability: Comparison,
    /// Number of states of the final aggregated model.
    pub final_states: usize,
}

/// Runs the repairable AND experiment of Figure 15 with the given rates.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_repair_experiment(
    failure_a: f64,
    failure_b: f64,
    repair_rate: f64,
) -> Result<RepairExperiment> {
    let mut b = DftBuilder::new();
    let a = b.repairable_basic_event("A", failure_a, Dormancy::Hot, repair_rate)?;
    let bb = b.repairable_basic_event("B", failure_b, Dormancy::Hot, repair_rate)?;
    let top = b.and_gate("system", &[a, bb])?;
    let dft = b.build(top)?;
    let result = dft_core::analysis::unavailability(&dft, &AnalysisOptions::default())?;
    let exact = (failure_a / (failure_a + repair_rate)) * (failure_b / (failure_b + repair_rate));
    Ok(RepairExperiment {
        unavailability: Comparison { paper: Some(exact), measured: result.unavailability },
        final_states: result.final_model.states,
    })
}

/// Results of the non-determinism experiment (E5, Figure 6(a)).
#[derive(Debug, Clone)]
pub struct NondeterminismRow {
    /// Mission time.
    pub mission_time: f64,
    /// Lower bound over schedulers.
    pub lower: f64,
    /// Upper bound over schedulers.
    pub upper: f64,
    /// The deterministic resolution chosen by the DIFTree-style baseline.
    pub baseline: f64,
}

/// Runs the Figure-6(a) experiment for a range of mission times.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_nondeterminism_experiment(times: &[f64]) -> Result<Vec<NondeterminismRow>> {
    let mut b = DftBuilder::new();
    let t = b.basic_event("T", 0.5, Dormancy::Hot)?;
    let a = b.basic_event("A", 1.0, Dormancy::Hot)?;
    let bb = b.basic_event("B", 1.0, Dormancy::Hot)?;
    let _f = b.fdep_gate("FDEP", t, &[a, bb])?;
    let top = b.pand_gate("system", &[a, bb])?;
    let dft = b.build(top)?;
    let mut rows = Vec::new();
    for &mission_time in times {
        let comp = unreliability(&dft, mission_time, &AnalysisOptions::default())?;
        let mono = unreliability(
            &dft,
            mission_time,
            &AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() },
        )?;
        let (lower, upper) = comp.bounds();
        rows.push(NondeterminismRow { mission_time, lower, upper, baseline: mono.probability() });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_experiment_reproduces_the_paper() {
        let e = run_cas_experiment().unwrap();
        assert!(e.unreliability.relative_error().unwrap() < 1e-3);
        assert!((e.monolithic_unreliability - e.unreliability.measured).abs() < 1e-6);
        assert_eq!(e.module_states.len(), 3);
    }

    #[test]
    fn cps_experiment_reproduces_the_paper() {
        let e = run_cps_experiment().unwrap();
        assert!(e.unreliability.relative_error().unwrap() < 0.01);
        assert_eq!(e.monolithic_states.measured as usize, 4113);
        assert_eq!(e.monolithic_transitions.measured as usize, 24608);
        assert!(e.module_a_states <= 6);
    }

    #[test]
    fn scaling_experiment_shows_the_gap_growing() {
        let rows = run_scaling_experiment(3).unwrap();
        assert_eq!(rows.len(), 3);
        // The monolithic chain outgrows the compositional peak as width increases.
        let last = rows.last().unwrap();
        assert!(last.monolithic_states > last.compositional_peak);
    }

    #[test]
    fn connectivity_experiment_runs() {
        let rows = run_connectivity_experiment(&[3, 4]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.connected_peak > 0 && r.modular_peak > 0));
    }

    #[test]
    fn repair_experiment_matches_the_closed_form() {
        let e = run_repair_experiment(1.0, 2.0, 10.0).unwrap();
        assert!(e.unavailability.relative_error().unwrap() < 1e-6);
    }

    #[test]
    fn nondeterminism_experiment_produces_proper_intervals() {
        let rows = run_nondeterminism_experiment(&[0.5, 1.0]).unwrap();
        for row in rows {
            assert!(row.lower < row.upper);
            assert!(row.baseline >= row.lower - 1e-9 && row.baseline <= row.upper + 1e-9);
        }
    }

    #[test]
    fn highly_connected_trees_have_no_nontrivial_modules() {
        let dft = highly_connected(4, 1.0);
        let modules = dft::modules::independent_modules(&dft);
        // Only the top gate roots an independent module.
        assert_eq!(modules.len(), 1);
    }
}
