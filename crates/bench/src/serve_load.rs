//! Loadgen for `dftmc-serve`: N client threads driving a real in-process
//! [`Server`] over real TCP connections, measuring end-to-end
//! submit→result latency through the whole HTTP → router → service →
//! registry stack.
//!
//! Every client request is one connection (the server speaks
//! `Connection: close`), so the experiment also exercises the accept loop
//! and the bounded connection queue, not just the service underneath.
//! Correctness rides along: every value fetched over HTTP is compared
//! bit-for-bit against an in-process [`Analyzer`] on the same tree —
//! `f64` survives the JSON round trip exactly because both sides use
//! Rust's shortest-round-trip formatting.

use dft_core::analysis::AnalysisOptions;
use dft_core::engine::Analyzer;
use dft_core::Result;
use dftmc_serve::client;
use dftmc_serve::json::Json;
use dftmc_serve::server::{Server, ServerOptions};
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Results of the serve loadgen experiment.
#[derive(Debug, Clone)]
pub struct ServeExperiment {
    /// Total jobs submitted over HTTP (`clients` × `jobs_per_client`).
    pub jobs: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Structurally distinct trees cycled through the submissions.
    pub distinct_trees: usize,
    /// Wall-clock from first submission to last fetched result.
    pub wall: Duration,
    /// `jobs / wall` in jobs per second.
    pub throughput: f64,
    /// Median submit→result latency (includes polling).
    pub latency_p50: Duration,
    /// 99th-percentile submit→result latency.
    pub latency_p99: Duration,
    /// Aggregation runs reported by `/metrics` — must equal
    /// `distinct_trees`: every duplicate submission is a cache hit.
    pub aggregation_runs: u64,
    /// HTTP requests the server answered (submissions + polls + metrics).
    pub http_requests: u64,
    /// Submissions refused with `429` (0 when `max_jobs` ≥ `jobs`).
    pub throttled: u64,
    /// Connections refused with `503` at accept time.
    pub rejected_connections: u64,
    /// States of the closed model of the first tree (deterministic;
    /// trend-gated in `BENCH_serve.json`).
    pub model_states: usize,
    /// `true` when every value fetched over HTTP was bit-identical to the
    /// in-process [`Analyzer`] reference.
    pub bit_identical: bool,
}

/// The unreliability value inside a `/result/{id}` document:
/// `results[0].points[0].value`.
fn result_value(doc: &Json) -> Option<f64> {
    let field = |doc: &Json, key: &str| match doc {
        Json::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone()),
        _ => None,
    };
    let first = |value: &Json| match value {
        Json::Arr(items) => items.first().cloned(),
        _ => None,
    };
    let measure = first(&field(doc, "results")?)?;
    let point = first(&field(&measure, "points")?)?;
    match field(&point, "value")? {
        Json::Num(n) => Some(n),
        _ => None,
    }
}

/// One client: submits its share of jobs and polls each to completion,
/// recording per-job latency and checking values against the reference.
fn run_client(
    addr: SocketAddr,
    client_index: usize,
    jobs_per_client: usize,
    bodies: &[String],
    reference: &[f64],
) -> std::io::Result<(Vec<Duration>, bool)> {
    let distinct = bodies.len();
    let mut latencies = Vec::with_capacity(jobs_per_client);
    let mut bit_identical = true;
    for j in 0..jobs_per_client {
        // Offset by the client index so duplicate structures interleave
        // *across* clients — the cache-contention regime.
        let variant = (client_index + j) % distinct;
        let Some(body) = bodies.get(variant) else {
            break;
        };
        let submitted = Instant::now();
        let (status, doc) = client::request(addr, "POST", "/submit", body)?;
        assert_eq!(status, 202, "submission refused: {}", doc.render());
        let Json::Num(id) = (match &doc {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == "id")
                .map(|(_, v)| v.clone())
                .unwrap_or(Json::Null),
            _ => Json::Null,
        }) else {
            panic!("submission reply carries no id: {}", doc.render());
        };
        let path = format!("/result/{id}");
        let value = loop {
            let (status, doc) = client::request(addr, "GET", &path, "")?;
            match status {
                202 => std::thread::sleep(Duration::from_micros(200)),
                200 => break result_value(&doc),
                other => panic!("result fetch failed ({other}): {}", doc.render()),
            }
        };
        latencies.push(submitted.elapsed());
        bit_identical &= value.map(f64::to_bits) == reference.get(variant).map(|r| r.to_bits());
    }
    Ok((latencies, bit_identical))
}

/// Runs the loadgen: `clients` threads each submitting `jobs_per_client`
/// jobs over `distinct` rate-scaled CAS variants against a freshly started
/// in-process server, then scrapes `/metrics`, shuts the server down
/// gracefully and reports.
///
/// # Errors
///
/// Propagates analysis errors from the in-process reference.
///
/// # Panics
///
/// Panics when the server cannot start, a client socket fails, or the
/// server refuses a request the configuration says it must accept.
pub fn run_serve_experiment(
    distinct: usize,
    clients: usize,
    jobs_per_client: usize,
) -> Result<ServeExperiment> {
    let variants: Vec<dft::Dft> = (0..distinct)
        .map(|i| dft_core::casestudies::cas_scaled(1.0 + 0.05 * i as f64))
        .collect();
    let reference: Vec<f64> = variants
        .iter()
        .map(|dft| {
            Ok(Analyzer::new(dft, AnalysisOptions::default())?
                .unreliability(1.0)?
                .value())
        })
        .collect::<Result<_>>()?;
    let model_states = Analyzer::new(&variants[0], AnalysisOptions::default())?
        .model_stats()
        .states;
    let bodies: Vec<String> = variants
        .iter()
        .map(|dft| {
            Json::obj([
                ("galileo", Json::Str(dft::galileo::to_galileo(dft))),
                (
                    "measures",
                    Json::Arr(vec![Json::obj([
                        ("type", "unreliability".into()),
                        ("time", 1.0.into()),
                    ])]),
                ),
            ])
            .render()
        })
        .collect();

    let server = Server::start(ServerOptions {
        max_jobs: clients * jobs_per_client + 8,
        ..ServerOptions::default()
    })
    .expect("loadgen server starts on an ephemeral port");
    let addr = server.local_addr();

    let started = Instant::now();
    let outcomes: Vec<(Vec<Duration>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                let reference = &reference;
                scope.spawn(move || {
                    run_client(addr, c, jobs_per_client, bodies, reference)
                        .expect("client socket I/O")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();

    let (status, metrics) = client::request(addr, "GET", "/metrics", "").expect("metrics scrape");
    assert_eq!(status, 200);
    let section = |key: &str, sub: &str| -> u64 {
        let field = |doc: &Json, key: &str| match doc {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone()),
            _ => None,
        };
        match field(&metrics, key).and_then(|doc| field(&doc, sub)) {
            Some(Json::Num(n)) => n as u64,
            _ => panic!("/metrics lacks {key}.{sub}: {}", metrics.render()),
        }
    };
    let aggregation_runs = section("jobs", "aggregation_runs");
    let http_requests = section("http", "requests");
    let throttled = section("http", "throttled");

    let (shutdown_status, _) =
        client::request(addr, "POST", "/shutdown", "").expect("shutdown request");
    assert_eq!(shutdown_status, 200);
    let rejected_connections = server
        .router()
        .http_counters()
        .rejected_connections
        .load(Ordering::Relaxed);
    server.join();

    let mut latencies: Vec<Duration> = Vec::new();
    let mut bit_identical = true;
    for (lats, ok) in outcomes {
        latencies.extend(lats);
        bit_identical &= ok;
    }
    latencies.sort();
    let jobs = latencies.len();
    assert_eq!(jobs, clients * jobs_per_client, "every job must complete");
    let percentile = |p: usize| latencies[(jobs - 1) * p / 100];

    Ok(ServeExperiment {
        jobs,
        clients,
        distinct_trees: distinct,
        wall,
        throughput: jobs as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        latency_p50: percentile(50),
        latency_p99: percentile(99),
        aggregation_runs,
        http_requests,
        throttled,
        rejected_connections,
        model_states,
        bit_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_round_trips_and_stays_bit_identical() {
        let e = run_serve_experiment(2, 2, 2).unwrap();
        assert_eq!(e.jobs, 4);
        assert_eq!(e.aggregation_runs, 2, "one aggregation per distinct tree");
        assert_eq!(e.throttled, 0);
        assert!(e.bit_identical, "HTTP values diverged from the Analyzer");
        assert!(e.http_requests >= 4, "at least one request per job");
    }
}
