//! Experiment E8: the repairable AND system of Figure 15, analysed for
//! steady-state unavailability.
//!
//! Run with `cargo run --release -p dftmc-bench --bin repair_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== E8: repairable AND gate (Section 7.2, Figures 13-15) ==\n");
    println!(
        "{:>10} {:>10} {:>8} {:>18} {:>18} {:>12} {:>14}",
        "lambda_A", "lambda_B", "mu", "analytic", "measured", "mttf", "final states"
    );
    let mut rows = Vec::new();
    let full: &[(f64, f64, f64)] = &[
        (1.0, 2.0, 10.0),
        (0.5, 0.5, 5.0),
        (1.0, 1.0, 1.0),
        (0.1, 0.3, 2.0),
    ];
    let configs = if smoke { &full[..2] } else { full };
    for &(la, lb, mu) in configs {
        let e = dftmc_bench::run_repair_experiment(la, lb, mu).expect("repair analysis runs");
        println!(
            "{:>10} {:>10} {:>8} {:>18.8} {:>18.8} {:>12.4} {:>14}",
            la,
            lb,
            mu,
            e.unavailability.paper.unwrap(),
            e.unavailability.measured,
            e.mttf,
            e.final_states
        );
        rows.push(Json::obj([
            ("lambda_a", la.into()),
            ("lambda_b", lb.into()),
            ("mu", mu.into()),
            ("analytic", e.unavailability.paper.unwrap().into()),
            ("measured", e.unavailability.measured.into()),
            ("mttf", e.mttf.into()),
            ("final_states", e.final_states.into()),
        ]));
    }
    println!("\nBoth the steady-state unavailability and the MTTF come from one analyzer");
    println!("session per parameter set: the aggregation pipeline ran once per row.");

    json::emit_and_announce(
        "repair",
        &Json::obj([
            ("experiment", "repair".into()),
            ("smoke", smoke.into()),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
