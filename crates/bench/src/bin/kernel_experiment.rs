//! Relax-kernel experiment: the legacy nested-loop value iteration versus the
//! flat CSR kernel on a seeded random CTMDP, plus the lane-batched and
//! multi-threaded variants — every variant checked bit for bit.
//!
//! Run with `cargo run --release -p dftmc-bench --bin kernel_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::timing::format_duration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (states, lanes) = if smoke { (600, 4) } else { (4000, 8) };

    let e = dftmc_bench::run_kernel_experiment(states, lanes).expect("the experiment runs");

    println!("== CSR relax kernel: legacy vs flat, batched, threaded ==\n");
    println!(
        "model: {} states, {} Markovian transitions, {} time bounds",
        e.states, e.markovian_transitions, e.time_points
    );
    println!(
        "legacy relax {} vs kernel {} (one lane, sequential) — bits {}",
        format_duration(e.legacy),
        format_duration(e.kernel_sequential),
        if e.bit_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "{} scalar runs {} vs one {}-lane batched run {} — {:.1}x, bits {}",
        e.lanes,
        format_duration(e.scalar_total),
        e.lanes,
        format_duration(e.batched),
        e.batch_speedup,
        if e.batch_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "threaded batched run {} ({} workers, auto picks {}) — bits {}",
        format_duration(e.threaded),
        e.threaded_workers,
        e.auto_workers,
        if e.worker_invariant {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    assert!(
        e.bit_identical,
        "the kernel must match the legacy relax bit for bit"
    );
    assert!(
        e.batch_identical,
        "batched lanes must match independent single-lane runs bit for bit"
    );
    assert!(
        e.worker_invariant,
        "the threaded relax must match the sequential relax bit for bit"
    );

    json::emit_and_announce(
        "kernel",
        &Json::obj([
            ("experiment", "kernel".into()),
            ("smoke", smoke.into()),
            ("states", e.states.into()),
            ("markovian_transitions", e.markovian_transitions.into()),
            ("lanes", e.lanes.into()),
            ("time_points", e.time_points.into()),
            ("auto_workers", e.auto_workers.into()),
            ("threaded_workers", e.threaded_workers.into()),
            ("legacy_seconds", Json::secs(e.legacy)),
            ("kernel_sequential_seconds", Json::secs(e.kernel_sequential)),
            ("scalar_total_seconds", Json::secs(e.scalar_total)),
            ("batched_seconds", Json::secs(e.batched)),
            ("threaded_seconds", Json::secs(e.threaded)),
            ("batch_speedup", e.batch_speedup.into()),
            ("bit_identical", e.bit_identical.into()),
            ("batch_identical", e.batch_identical.into()),
            ("worker_invariant", e.worker_invariant.into()),
        ]),
    );
}
