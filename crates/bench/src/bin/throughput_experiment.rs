//! Experiment E11: async-service throughput — N submitting threads feeding the
//! persistent worker pool through `submit` versus the same portfolio as
//! blocking sequential batches.
//!
//! Each submitter enqueues an M-deep personal queue of rate-scaled CAS jobs
//! (structures interleaved across submitters, so duplicates hit the queue's
//! leader/follower parking) and then awaits its handles; the baseline keeps
//! the same client threads but serializes their identical chunks as blocking
//! `run_batch` calls — clients taking turns, which is what a blocking API
//! forces on a multi-client world.  Both modes take the best of five
//! cold-cache repetitions.  The experiment reports both walls, the queued
//! run's p50/p99 submit→report latency, the cache accounting (aggregation
//! exactly once per distinct tree, zero blocked builds) and a bit-identity
//! check against sequential `Analyzer` runs.
//!
//! Run with `cargo run --release -p dftmc-bench --bin throughput_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::timing::format_duration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The smoke configuration still needs enough warm-cache work after the
    // builds for the pipelining win to dominate scheduler noise.
    let (distinct, submitters, depth) = if smoke { (4, 3, 12) } else { (8, 4, 8) };

    println!("== E11: async submission throughput over the AnalysisService ==\n");
    let e = dftmc_bench::run_throughput_experiment(distinct, submitters, depth, 0)
        .expect("throughput experiment runs");

    println!(
        "portfolio: {} jobs over {} distinct trees ({} submitters x {}-deep queues)",
        e.jobs, e.distinct_trees, e.submitters, e.jobs_per_submitter
    );
    println!("\n{:<34} {:>14}", "metric", "value");
    println!("{}", "-".repeat(49));
    let row = |name: &str, value: String| println!("{name:<34} {value:>14}");
    row("workers (persistent pool)", e.workers.to_string());
    row(
        "wall, sequential batches",
        format_duration(e.sequential_wall),
    );
    row("wall, queued submitters", format_duration(e.queued_wall));
    row(
        "throughput, sequential (jobs/s)",
        format!("{:.1}", e.sequential_throughput),
    );
    row(
        "throughput, queued (jobs/s)",
        format!("{:.1}", e.queued_throughput),
    );
    row(
        "speedup (queued / sequential)",
        format!("{:.2}x", e.speedup),
    );
    row("latency p50 (queued)", format_duration(e.latency_p50));
    row("latency p99 (queued)", format_duration(e.latency_p99));
    row("cache hits", e.cache_hits.to_string());
    row("cache misses", e.cache_misses.to_string());
    row("aggregation runs", e.aggregation_runs.to_string());
    row("build waits", e.build_waits.to_string());
    row("bit-identical to sequential", e.bit_identical.to_string());

    assert!(
        e.bit_identical,
        "queued service results diverged from the sequential reference"
    );
    assert_eq!(
        e.aggregation_runs, e.distinct_trees,
        "concurrent submitters must share cached models (one aggregation per structure)"
    );
    assert_eq!(
        e.build_waits, 0,
        "the queue must park duplicates of in-flight models, not block on them"
    );
    if !smoke {
        // Queue-based throughput must keep up with sequential batching; on
        // multi-core hosts it pulls ahead by keeping the pool saturated across
        // chunk boundaries.  The margin absorbs scheduler noise on tiny runs.
        assert!(
            e.speedup >= 0.75,
            "queued throughput collapsed to {:.2}x of sequential batching",
            e.speedup
        );
    }

    println!("\nThe persistent pool drains continuously while submitters only enqueue:");
    println!("no per-batch thread spawn, no blocking between one client's jobs and the");
    println!("next client's, and every duplicate structure still builds exactly once.");

    json::emit_and_announce(
        "async",
        &Json::obj([
            ("experiment", "async".into()),
            ("smoke", smoke.into()),
            ("jobs", e.jobs.into()),
            ("distinct_trees", e.distinct_trees.into()),
            ("submitters", e.submitters.into()),
            ("jobs_per_submitter", e.jobs_per_submitter.into()),
            ("workers", e.workers.into()),
            ("sequential_wall_seconds", Json::secs(e.sequential_wall)),
            ("queued_wall_seconds", Json::secs(e.queued_wall)),
            (
                "sequential_throughput_jobs_per_second",
                e.sequential_throughput.into(),
            ),
            (
                "queued_throughput_jobs_per_second",
                e.queued_throughput.into(),
            ),
            ("speedup", e.speedup.into()),
            ("latency_p50_seconds", Json::secs(e.latency_p50)),
            ("latency_p99_seconds", Json::secs(e.latency_p99)),
            ("cache_hits", e.cache_hits.into()),
            ("cache_misses", e.cache_misses.into()),
            ("aggregation_runs", e.aggregation_runs.into()),
            ("build_waits", e.build_waits.into()),
            ("bit_identical", e.bit_identical.into()),
        ]),
    );
}
