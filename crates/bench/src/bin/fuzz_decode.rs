//! Seeded deterministic fuzzing of every untrusted-byte decoder.
//!
//! ```text
//! fuzz_decode [--iters N] [--seed S]
//! ```
//!
//! Defaults: 10 000 inputs per decoder, seed 3735928559 (the CI batch).  Any
//! panic is reported with the offending input written to
//! `fuzz_crash_<target>.bin` for conversion into a committed regression
//! fixture, and the process exits non-zero.  See `dftmc_bench::fuzz` for the
//! corpus and mutation strategy.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut iters = 10_000usize;
    let mut seed = 0xDEAD_BEEFu64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return usage("--iters needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    // Panics are the signal under test, not crashes: silence the default
    // hook so 60k caught rejections don't flood the log, and report caught
    // panics ourselves below.
    std::panic::set_hook(Box::new(|_| {}));
    let reports = dftmc_bench::fuzz::run_all(seed, iters);
    let _ = std::panic::take_hook();

    println!("fuzz_decode: seed {seed}, {iters} inputs per decoder");
    let mut failed = false;
    for report in &reports {
        println!(
            "  {:<32} {} runs: {} accepted, {} rejected, {} panics",
            report.target,
            report.runs,
            report.accepted,
            report.rejected,
            report.panics.len()
        );
        if let Some(input) = report.panics.first() {
            failed = true;
            let path = format!(
                "fuzz_crash_{}.bin",
                report.target.replace(|c: char| !c.is_alphanumeric(), "_")
            );
            match std::fs::write(&path, input) {
                Ok(()) => println!("    first crashing input written to {path}"),
                Err(e) => println!("    could not write crashing input: {e}"),
            }
        }
    }
    if failed {
        println!("fuzz_decode: FAIL (panicking inputs found)");
        ExitCode::FAILURE
    } else {
        println!("fuzz_decode: clean");
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("fuzz_decode: {problem}\nusage: fuzz_decode [--iters N] [--seed S]");
    ExitCode::FAILURE
}
