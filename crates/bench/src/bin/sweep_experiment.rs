//! Rate-sweep experiment: aggregate the CAS structure once, instantiate a
//! whole failure-rate sweep at query time, and compare against K independent
//! per-scale builds (the pre-parametric workflow).
//!
//! Run with `cargo run --release -p dftmc-bench --bin sweep_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::timing::format_duration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let points = if smoke { 5 } else { 25 };
    let mission_time = 1.0;

    let e = dftmc_bench::run_sweep_experiment(points, mission_time).expect("the sweep runs");

    println!("== Rate sweep: one parametric aggregation vs {points} independent builds ==\n");
    println!("{:>8} {:>16}", "scale", "unreliability");
    for (scale, value) in e.scales.iter().zip(&e.values) {
        println!("{scale:>8.2} {value:>16.8}");
    }
    println!();
    println!(
        "parametric: build {} (aggregations: {}), instantiate {} + query {} over {} points",
        format_duration(e.parametric_build),
        e.aggregation_runs,
        format_duration(e.sweep_instantiate),
        format_duration(e.sweep_query),
        e.points
    );
    println!(
        "independent: {} total ({} for one point) — end-to-end speedup {:.1}x, \
         marginal (per amortized point) {:.1}x, marginal cost {:.1} µs/point",
        format_duration(e.independent_total),
        format_duration(e.single_point),
        e.speedup,
        e.marginal_speedup,
        e.marginal_us_per_point
    );
    println!(
        "agreement with per-point builds: max |diff| = {:.2e} ({})",
        e.max_abs_diff,
        if e.within_tolerance {
            "within 1e-12"
        } else {
            "OUT OF TOLERANCE"
        }
    );

    assert_eq!(
        e.aggregation_runs, 1,
        "the whole sweep must run exactly one aggregation"
    );
    assert!(
        e.within_tolerance,
        "sweep deviates from independent builds by {}",
        e.max_abs_diff
    );
    let amortized = e.sweep_instantiate + e.sweep_query;
    assert!(
        amortized < e.single_point * e.points as u32,
        "total query/instantiate time {amortized:?} must stay below {} single-point builds",
        e.points
    );

    json::emit_and_announce(
        "sweep",
        &Json::obj([
            ("experiment", "sweep".into()),
            ("smoke", smoke.into()),
            ("points", e.points.into()),
            ("mission_time", e.mission_time.into()),
            ("aggregation_runs", e.aggregation_runs.into()),
            ("parametric_states", e.parametric_states.into()),
            ("parametric_build_seconds", Json::secs(e.parametric_build)),
            ("instantiate_seconds", Json::secs(e.sweep_instantiate)),
            ("query_seconds", Json::secs(e.sweep_query)),
            ("sweep_total_seconds", Json::secs(e.sweep_total)),
            ("single_point_seconds", Json::secs(e.single_point)),
            ("independent_total_seconds", Json::secs(e.independent_total)),
            ("speedup", e.speedup.into()),
            ("marginal_speedup", e.marginal_speedup.into()),
            ("marginal_us_per_point", e.marginal_us_per_point.into()),
            ("max_abs_diff", e.max_abs_diff.into()),
            ("within_tolerance", e.within_tolerance.into()),
            (
                "points_detail",
                Json::Arr(
                    e.scales
                        .iter()
                        .zip(&e.values)
                        .map(|(&scale, &value)| {
                            Json::obj([("scale", scale.into()), ("unreliability", value.into())])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
