//! Experiment E13: the HTTP front end under load — N client threads driving
//! a real `dftmc-serve` server over TCP, end-to-end latency percentiles and
//! the fleet-warmth signal (`aggregation_runs == distinct trees`).
//!
//! The loadgen submits rate-scaled CAS variants over `POST /submit`, polls
//! `GET /result/{id}` to completion, scrapes `GET /metrics` and shuts the
//! server down gracefully.  Every value fetched over HTTP is checked
//! bit-for-bit against an in-process `Analyzer` — the serialization boundary
//! must not cost a single bit.
//!
//! Run with
//! `cargo run --release -p dftmc-bench --bin serve_experiment -- [--smoke]`.

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::serve_load::run_serve_experiment;
use dftmc_bench::timing::format_duration;

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (distinct, clients, jobs_per_client) = if smoke { (2, 3, 3) } else { (4, 8, 8) };

    println!("== E13: HTTP front end under load ==\n");
    println!(
        "{clients} clients x {jobs_per_client} jobs over {distinct} distinct trees, \
         one TCP connection per request"
    );
    let e = run_serve_experiment(distinct, clients, jobs_per_client).expect("serve loadgen runs");

    println!("\n{:<34} {:>14}", "metric", "value");
    println!("{}", "-".repeat(49));
    let row = |name: &str, value: String| println!("{name:<34} {value:>14}");
    row("jobs completed", e.jobs.to_string());
    row("wall clock", format_duration(e.wall));
    row("throughput (jobs/s)", format!("{:.1}", e.throughput));
    row("latency p50", format_duration(e.latency_p50));
    row("latency p99", format_duration(e.latency_p99));
    row("aggregation runs", e.aggregation_runs.to_string());
    row("HTTP requests answered", e.http_requests.to_string());
    row("throttled (429)", e.throttled.to_string());
    row(
        "rejected connections (503)",
        e.rejected_connections.to_string(),
    );
    row("closed model states", e.model_states.to_string());
    row("bit-identical over HTTP", e.bit_identical.to_string());

    assert!(
        e.bit_identical,
        "values fetched over HTTP diverged from the in-process Analyzer"
    );
    assert_eq!(
        e.aggregation_runs, e.distinct_trees as u64,
        "every duplicate submission must be a cache hit"
    );

    println!("\nThe HTTP layer adds connection setup and JSON round trips, but the");
    println!("aggregation count stays at one per distinct structure: the service cache");
    println!("absorbs the duplicate submissions exactly as it does in-process.");

    json::emit_and_announce(
        "serve",
        &Json::obj([
            ("experiment", "serve".into()),
            ("smoke", smoke.into()),
            ("jobs", e.jobs.into()),
            ("clients", e.clients.into()),
            ("distinct_trees", e.distinct_trees.into()),
            ("wall_seconds", Json::secs(e.wall)),
            ("throughput_jobs_per_second", e.throughput.into()),
            ("latency_p50_seconds", Json::secs(e.latency_p50)),
            ("latency_p99_seconds", Json::secs(e.latency_p99)),
            ("aggregation_runs", (e.aggregation_runs as usize).into()),
            ("http_requests", (e.http_requests as usize).into()),
            ("throttled", (e.throttled as usize).into()),
            (
                "rejected_connections",
                (e.rejected_connections as usize).into(),
            ),
            ("model_states", e.model_states.into()),
            ("bit_identical", e.bit_identical.into()),
        ]),
    );
}
