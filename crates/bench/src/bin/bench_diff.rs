//! BENCH trend tracking: compares fresh `BENCH_<name>.json` records against a
//! committed `BENCH_baseline/` snapshot and fails on *state-space* regressions.
//!
//! State counts are deterministic — a change means the pipeline itself changed
//! — so any growth of a `*states*`/`*transitions*` metric over the baseline is
//! an error.  Wall-clock metrics (`*_seconds`, `speedup`) vary with the host
//! and are reported but never gated.
//!
//! Run with
//! `cargo run --release -p dftmc-bench --bin bench_diff -- [baseline_dir] [name...]`
//! after the experiment bins; the default baseline dir is `BENCH_baseline` and
//! the default name set is everything the baseline dir contains.
//!
//! `bench_diff -- --validate FILE...` instead only checks that each file is
//! non-empty, well-formed JSON (using the in-repo [`json::parse`]), replacing
//! the `python3 -m json.tool` shell-out CI used to depend on — the pipeline
//! stays pure Rust.

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A numeric metric is *gated* (fresh must not exceed baseline) when its key
/// names a state-space size.
fn is_gated(key: &str) -> bool {
    key.contains("states") || key.contains("transitions")
}

/// Wall-clock metrics are reported but never gated.
fn is_timing(key: &str) -> bool {
    key.ends_with("_seconds") || key == "speedup"
}

/// Marginal per-point cost is a timing, but one the kernel batching makes a
/// promise about: a fresh value more than this factor above the committed
/// baseline fails the diff.  The slack absorbs runner noise while still
/// catching "the sweep quietly fell back to per-point instantiation".
const MARGINAL_REGRESSION_FACTOR: f64 = 3.0;

/// Timing metrics that *are* gated, with noise tolerance.
fn is_gated_timing(key: &str) -> bool {
    key == "marginal_us_per_point"
}

struct Diff {
    regressions: Vec<String>,
    notes: Vec<String>,
}

impl Diff {
    fn new() -> Diff {
        Diff {
            regressions: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Walks baseline and fresh in lockstep; `path` names the current node.
    fn walk(&mut self, path: &str, baseline: &Json, fresh: &Json) {
        match (baseline, fresh) {
            (Json::Obj(base_entries), Json::Obj(fresh_entries)) => {
                for (key, base_value) in base_entries {
                    let child = format!("{path}.{key}");
                    match fresh_entries.iter().find(|(k, _)| k == key) {
                        None => self.regressions.push(format!(
                            "{child}: present in baseline, missing in fresh record"
                        )),
                        Some((_, fresh_value)) => self.walk(&child, base_value, fresh_value),
                    }
                }
            }
            (Json::Arr(base_items), Json::Arr(fresh_items)) => {
                if base_items.len() != fresh_items.len() {
                    self.regressions.push(format!(
                        "{path}: baseline has {} entries, fresh has {}",
                        base_items.len(),
                        fresh_items.len()
                    ));
                    return;
                }
                for (i, (b, f)) in base_items.iter().zip(fresh_items).enumerate() {
                    self.walk(&format!("{path}[{i}]"), b, f);
                }
            }
            (Json::Num(base), Json::Num(fresh)) => {
                let key = path.rsplit('.').next().unwrap_or(path);
                if is_gated(key) {
                    if fresh > base {
                        self.regressions
                            .push(format!("{path}: state-space regression {base} -> {fresh}"));
                    } else if fresh < base {
                        self.notes.push(format!(
                            "{path}: improved {base} -> {fresh} (update baseline?)"
                        ));
                    }
                } else if is_gated_timing(key) {
                    if *fresh > base * MARGINAL_REGRESSION_FACTOR {
                        self.regressions.push(format!(
                            "{path}: marginal per-point cost regression {base} -> {fresh} \
                             (more than {MARGINAL_REGRESSION_FACTOR}x the baseline)"
                        ));
                    } else if (fresh - base).abs() > f64::EPSILON {
                        self.notes.push(format!(
                            "{path}: {base} -> {fresh} (gated timing, within tolerance)"
                        ));
                    }
                } else if is_timing(key) && (fresh - base).abs() > f64::EPSILON {
                    self.notes
                        .push(format!("{path}: {base} -> {fresh} (timing, not gated)"));
                }
            }
            // Non-numeric leaves (strings, bools, null) and type changes are
            // only compared when gated by key would make no sense; a type
            // change on a gated key is a schema break and must fail.
            (b, f) => {
                let key = path.rsplit('.').next().unwrap_or(path);
                if is_gated(key) && std::mem::discriminant(b) != std::mem::discriminant(f) {
                    self.regressions.push(format!(
                        "{path}: baseline and fresh record disagree on type"
                    ));
                }
            }
        }
    }
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// The record's `smoke` flag, when it carries one.
fn smoke_flag(record: &Json) -> Option<bool> {
    match record {
        Json::Obj(entries) => entries.iter().find_map(|(k, v)| match v {
            Json::Bool(b) if k == "smoke" => Some(*b),
            _ => None,
        }),
        _ => None,
    }
}

/// `--validate FILE...`: each file must exist, be non-empty and parse as
/// JSON.  No baseline comparison — this is the machine-readability gate the
/// experiment bins' records pass through in CI.
fn validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("--validate needs at least one file");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in files {
        match load(Path::new(file)) {
            Ok(Json::Obj(entries)) if !entries.is_empty() => {
                println!("{file}: valid JSON ({} top-level fields)", entries.len());
            }
            Ok(_) => {
                eprintln!("FAIL: {file}: expected a non-empty JSON object");
                failed = true;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        return validate(&args[1..]);
    }
    let baseline_dir = PathBuf::from(args.first().map(String::as_str).unwrap_or("BENCH_baseline"));

    // Which experiments to diff: explicit names, or every BENCH_*.json in the
    // baseline directory.
    let names: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        let mut names: Vec<String> = match std::fs::read_dir(&baseline_dir) {
            Ok(dir) => dir
                .filter_map(|entry| {
                    let name = entry.ok()?.file_name().into_string().ok()?;
                    Some(
                        name.strip_prefix("BENCH_")?
                            .strip_suffix(".json")?
                            .to_owned(),
                    )
                })
                .collect(),
            Err(e) => {
                eprintln!("cannot list {}: {e}", baseline_dir.display());
                return ExitCode::FAILURE;
            }
        };
        names.sort();
        names
    };
    if names.is_empty() {
        eprintln!("no baselines found in {}", baseline_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for name in &names {
        let file = format!("BENCH_{name}.json");
        let baseline = match load(&baseline_dir.join(&file)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                failed = true;
                continue;
            }
        };
        let fresh = match load(Path::new(&file)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                failed = true;
                continue;
            }
        };
        // A smoke record has fewer rows than a full one: comparing the two
        // would report bogus "regressions", so demand matching configurations
        // up front with an actionable message.
        let (base_smoke, fresh_smoke) = (smoke_flag(&baseline), smoke_flag(&fresh));
        if base_smoke != fresh_smoke {
            let describe = |s: Option<bool>| match s {
                Some(true) => "--smoke",
                Some(false) => "full",
                None => "unflagged",
            };
            eprintln!(
                "FAIL: {name}: baseline is a {} run but the fresh record is a {} run — \
                 re-run the experiment with the baseline's configuration",
                describe(base_smoke),
                describe(fresh_smoke)
            );
            failed = true;
            continue;
        }
        let mut diff = Diff::new();
        diff.walk(name, &baseline, &fresh);
        for note in &diff.notes {
            println!("note: {note}");
        }
        if diff.regressions.is_empty() {
            println!("{name}: OK (no state-space regressions)");
        } else {
            for regression in &diff.regressions {
                eprintln!("FAIL: {regression}");
            }
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
