//! Corpus experiment: runs the committed mini-corpus of FFORT-style Galileo
//! trees (`tests/fixtures/corpus/`) through the shared request layer, the
//! way a user would drive `dftmc run` over a benchmark directory.
//!
//! Per tree it reports deterministic model sizes (gated by `bench_diff`
//! against `BENCH_baseline/BENCH_corpus.json`), the hybrid and compositional
//! unreliability at mission time 1 (which must agree), and the wall-clock
//! build/query split.  Each tree also runs a failure-rate scale sweep
//! through the parametric path.
//!
//! Run with `cargo run --release -p dftmc-bench --bin corpus_experiment`
//! (`--smoke` shrinks the sweep for CI).

#![forbid(unsafe_code)]

use dft_core::request::{AnalysisRequest, SweepSpec};
use dft_core::service::{AnalysisService, RequestOutcome, ServiceOptions};
use dft_core::{AnalysisOptions, Measure, Method};
use dftmc_bench::json::{self, Json};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The corpus directory, resolved from the workspace root (the manifest dir
/// is `crates/bench`, so hop two levels up when running from elsewhere).
fn corpus_dir() -> PathBuf {
    let local = PathBuf::from("tests/fixtures/corpus");
    if local.is_dir() {
        return local;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/corpus")
}

fn options(method: Method) -> AnalysisOptions {
    AnalysisOptions {
        method,
        ..AnalysisOptions::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep_points: usize = if smoke { 3 } else { 9 };

    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|ext| ext == "dft")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "the corpus holds {} trees; expected the committed mini-corpus of 10+",
        files.len()
    );

    let service = AnalysisService::new(ServiceOptions::default());
    println!("== corpus: FFORT-style mini-benchmark through the request layer ==\n");
    println!(
        "{:<18} {:>4} {:>8} {:>8} {:>12} {:>10}",
        "tree", "elem", "hyb.st", "comp.st", "unrel(1)", "sweep"
    );

    let mut rows = Vec::new();
    for path in &files {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
            .to_owned();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let dft = dft::galileo::parse(&text)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        let elements = dft.num_elements();

        // Hybrid (the corpus runner default) and compositional sessions; the
        // two methods must agree on the point measure.
        let run_point = |method: Method| {
            let mut request = AnalysisRequest::new(dft.clone());
            request.options = options(method);
            request.measures = vec![Measure::Unreliability(1.0)];
            match service.run_request(request) {
                RequestOutcome::Job(report) => report,
                RequestOutcome::Sweep(_) => unreachable!("no sweep attached"),
            }
        };
        let hybrid = run_point(Method::Hybrid);
        let compositional = run_point(Method::Compositional);
        let value = |report: &dft_core::JobReport| {
            report
                .results
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .first()
                .expect("one measure")
                .value()
        };
        let (hybrid_value, compositional_value) = (value(&hybrid), value(&compositional));
        assert!(
            (hybrid_value - compositional_value).abs() <= 1e-9,
            "{name}: hybrid {hybrid_value} and compositional {compositional_value} disagree"
        );

        // Deterministic model sizes come from the cached sessions themselves.
        let states_of = |method: Method| {
            let analyzer = service
                .analyzer(&dft, &options(method))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let stats = analyzer.model_stats();
            (
                stats.states,
                stats.interactive_transitions + stats.markovian_transitions,
            )
        };
        let (hybrid_states, hybrid_transitions) = states_of(Method::Hybrid);
        let (comp_states, comp_transitions) = states_of(Method::Compositional);

        // A failure-rate scale sweep through the parametric path.
        let scales: Vec<f64> = (0..sweep_points).map(|i| 0.5 + 0.5 * i as f64).collect();
        let mut request = AnalysisRequest::new(dft.clone());
        request.options = options(Method::Compositional);
        request.measures = vec![Measure::Unreliability(1.0)];
        request.sweep = Some(SweepSpec::FailureScales(scales));
        let sweep_started = Instant::now();
        let sweep = match service.run_request(request) {
            RequestOutcome::Sweep(report) => report,
            RequestOutcome::Job(_) => unreachable!("a sweep was attached"),
        };
        let sweep_wall = sweep_started.elapsed();
        for point in &sweep.points {
            if let Err(e) = &point.results {
                panic!("{name}: sweep point failed: {e}");
            }
        }

        println!(
            "{name:<18} {elements:>4} {hybrid_states:>8} {comp_states:>8} \
             {hybrid_value:>12.6} {:>7}pts",
            sweep.points.len()
        );
        rows.push(Json::obj([
            ("tree", name.as_str().into()),
            ("elements", elements.into()),
            ("hybrid_states", hybrid_states.into()),
            ("hybrid_transitions", hybrid_transitions.into()),
            ("compositional_states", comp_states.into()),
            ("compositional_transitions", comp_transitions.into()),
            ("unreliability", hybrid_value.into()),
            ("build_seconds", Json::secs(hybrid.build)),
            ("query_seconds", Json::secs(hybrid.query)),
            ("sweep_points", sweep.points.len().into()),
            ("sweep_wall_seconds", Json::secs(sweep_wall)),
        ]));
    }

    println!("\nall {} trees agree across methods", files.len());
    json::emit_and_announce(
        "corpus",
        &Json::obj([
            ("experiment", "corpus".into()),
            ("smoke", smoke.into()),
            ("trees", files.len().into()),
            ("sweep_points", sweep_points.into()),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
