//! Experiment E9: state-space scaling of compositional aggregation versus the
//! monolithic chain, on the modular cascaded-PAND family and on a highly
//! connected family without independent modules.
//!
//! Run with `cargo run --release -p dftmc-bench --bin scaling_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_width, connectivity_sizes): (usize, &[usize]) = if smoke {
        (3, &[3, 4])
    } else {
        (5, &[3, 4, 5, 6])
    };

    println!("== E9a: cascaded-PAND family (modular) ==\n");
    println!(
        "{:>6} {:>8} {:>20} {:>18} {:>16}",
        "width", "events", "compositional peak", "monolithic states", "unreliability"
    );
    let rows = dftmc_bench::run_scaling_experiment(max_width).expect("scaling runs");
    for row in &rows {
        println!(
            "{:>6} {:>8} {:>20} {:>18} {:>16.6}",
            row.width,
            row.basic_events,
            row.compositional_peak,
            row.monolithic_states,
            row.unreliability
        );
    }

    println!("\n== E9b: highly connected family (no independent modules) ==\n");
    println!(
        "{:>8} {:>18} {:>28}",
        "events", "connected peak", "modular peak (same #events)"
    );
    let connectivity =
        dftmc_bench::run_connectivity_experiment(connectivity_sizes).expect("connectivity runs");
    for row in &connectivity {
        println!(
            "{:>8} {:>18} {:>28}",
            row.basic_events, row.connected_peak, row.modular_peak
        );
    }
    println!("\nThe compositional advantage grows with modularity and shrinks for highly");
    println!("connected trees, as the paper observes at the end of Section 5.2.");

    json::emit_and_announce(
        "scaling",
        &Json::obj([
            ("experiment", "scaling".into()),
            ("smoke", smoke.into()),
            (
                "cascaded_pand",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("width", r.width.into()),
                                ("basic_events", r.basic_events.into()),
                                ("compositional_peak_states", r.compositional_peak.into()),
                                ("monolithic_states", r.monolithic_states.into()),
                                ("unreliability_at_1", r.unreliability.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "connectivity",
                Json::Arr(
                    connectivity
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("basic_events", r.basic_events.into()),
                                ("connected_peak_states", r.connected_peak.into()),
                                ("modular_peak_states", r.modular_peak.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
