//! Experiment E9: state-space scaling of compositional aggregation versus the
//! monolithic chain, on the modular cascaded-PAND family and on a highly
//! connected family without independent modules.
//!
//! Run with `cargo run --release -p dftmc-bench --bin scaling_experiment`.

fn main() {
    println!("== E9a: cascaded-PAND family (modular) ==\n");
    println!(
        "{:>6} {:>8} {:>20} {:>18} {:>16}",
        "width", "events", "compositional peak", "monolithic states", "unreliability"
    );
    for row in dftmc_bench::run_scaling_experiment(5).expect("scaling runs") {
        println!(
            "{:>6} {:>8} {:>20} {:>18} {:>16.6}",
            row.width,
            row.basic_events,
            row.compositional_peak,
            row.monolithic_states,
            row.unreliability
        );
    }

    println!("\n== E9b: highly connected family (no independent modules) ==\n");
    println!(
        "{:>8} {:>18} {:>28}",
        "events", "connected peak", "modular peak (same #events)"
    );
    for row in dftmc_bench::run_connectivity_experiment(&[3, 4, 5, 6]).expect("connectivity runs") {
        println!(
            "{:>8} {:>18} {:>28}",
            row.basic_events, row.connected_peak, row.modular_peak
        );
    }
    println!("\nThe compositional advantage grows with modularity and shrinks for highly");
    println!("connected trees, as the paper observes at the end of Section 5.2.");
}
