//! Experiment E12: the persistent cross-process model cache — cold-build vs
//! warm-load walls over a store-backed `AnalysisService`.
//!
//! The portfolio (rate-scaled CAS variants plus a rate sweep) runs through a
//! service whose `ServiceOptions::store` points at a shared directory.  On the
//! first run every model is aggregated and written back; on any later run
//! against the same directory — another process, a restarted server, a fleet
//! neighbour — every model is a disk read and *zero* aggregations execute.
//! The experiment also times one direct `Analyzer::new` against restoring the
//! identical session via `Analyzer::from_bytes`, the per-model saving a warm
//! store banks.
//!
//! Run with
//! `cargo run --release -p dftmc-bench --bin persistence_experiment -- [--smoke] [--store DIR] [--expect-warm]`.
//!
//! `--store DIR` selects the store directory (default `dftmc-store`);
//! `--expect-warm` additionally asserts the warm-store contract
//! (`store_hits > 0`, `aggregation_runs == 0`, nothing rejected) — the CI
//! `cache-warm` job runs the bin twice against one directory and passes the
//! flag on the second run.

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::timing::format_duration;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    let store_dir = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("dftmc-store"));
    let (distinct, copies, sweep_points) = if smoke { (3, 2, 3) } else { (8, 4, 10) };

    println!("== E12: persistent cross-process model cache ==\n");
    println!("store directory: {}", store_dir.display());
    let e = dftmc_bench::run_persistence_experiment(&store_dir, distinct, copies, sweep_points)
        .expect("persistence experiment runs");

    println!(
        "\nportfolio: {} jobs over {} distinct trees + a {}-point rate sweep",
        e.jobs, e.distinct_trees, e.sweep_points
    );
    println!("\n{:<34} {:>14}", "metric", "value");
    println!("{}", "-".repeat(49));
    let row = |name: &str, value: String| println!("{name:<34} {value:>14}");
    row("store hits", e.store_hits.to_string());
    row("store misses", e.store_misses.to_string());
    row("store writes", e.store_writes.to_string());
    row("store rejected", e.store_rejected.to_string());
    row("store bytes read", e.store_read_bytes.to_string());
    row("store bytes written", e.store_write_bytes.to_string());
    row("aggregation runs (service)", e.aggregation_runs.to_string());
    row(
        "service wall (batch + sweep)",
        format_duration(e.service_wall),
    );
    row("cold build (CAS, direct)", format_duration(e.cold_build));
    row("warm load (CAS, from_bytes)", format_duration(e.warm_load));
    row(
        "load speedup (build / load)",
        format!("{:.1}x", e.load_speedup),
    );
    row("serialized entry size (bytes)", e.entry_bytes.to_string());
    row("closed CAS model states", e.model_states.to_string());
    row(
        "round trip bit-identical",
        e.roundtrip_bit_identical.to_string(),
    );
    row("service bit-identical", e.bit_identical.to_string());

    assert!(
        e.roundtrip_bit_identical,
        "from_bytes must restore a bit-identical, zero-aggregation session"
    );
    assert!(
        e.bit_identical,
        "store-backed service results diverged from the sequential reference"
    );
    if expect_warm {
        assert!(
            e.store_hits > 0,
            "--expect-warm: the store served no hits — is the directory shared \
             with the previous run?"
        );
        assert_eq!(
            e.aggregation_runs, 0,
            "--expect-warm: a warm store must replace every aggregation with a \
             disk read"
        );
        assert_eq!(
            e.store_rejected, 0,
            "--expect-warm: entries written by the previous run were rejected"
        );
        println!(
            "\n--expect-warm: PASS (hits={}, zero aggregations)",
            e.store_hits
        );
    }

    println!("\nEvery model a run aggregates lands in the store directory; every later");
    println!("run — or concurrent fleet member sharing it — pays a disk read instead of");
    println!("the whole convert/compose/hide/lump pipeline.");

    json::emit_and_announce(
        "persist",
        &Json::obj([
            ("experiment", "persist".into()),
            ("smoke", smoke.into()),
            ("jobs", e.jobs.into()),
            ("distinct_trees", e.distinct_trees.into()),
            ("sweep_points", e.sweep_points.into()),
            ("store_hits", (e.store_hits as usize).into()),
            ("store_misses", (e.store_misses as usize).into()),
            ("store_writes", (e.store_writes as usize).into()),
            ("store_rejected", (e.store_rejected as usize).into()),
            ("store_read_bytes", (e.store_read_bytes as usize).into()),
            ("store_write_bytes", (e.store_write_bytes as usize).into()),
            ("aggregation_runs", e.aggregation_runs.into()),
            ("service_wall_seconds", Json::secs(e.service_wall)),
            ("cold_build_seconds", Json::secs(e.cold_build)),
            ("warm_load_seconds", Json::secs(e.warm_load)),
            ("load_speedup", e.load_speedup.into()),
            ("entry_bytes", e.entry_bytes.into()),
            ("model_states", e.model_states.into()),
            ("roundtrip_bit_identical", e.roundtrip_bit_identical.into()),
            ("bit_identical", e.bit_identical.into()),
        ]),
    );
}
