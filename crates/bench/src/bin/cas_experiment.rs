//! Experiment E2: regenerates the cardiac-assist-system results of Section 5.1.
//!
//! Run with `cargo run --release -p dftmc-bench --bin cas_experiment`
//! (`--smoke` is accepted for CI uniformity; the experiment is already small).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let e = dftmc_bench::run_cas_experiment().expect("the CAS analyses");
    println!("== E2: cardiac assist system (Section 5.1) ==\n");
    println!("unreliability at mission time 1");
    println!(
        "  paper / Galileo        : {:.4}",
        e.unreliability.paper.unwrap()
    );
    println!("  compositional (ours)   : {:.4}", e.unreliability.measured);
    println!(
        "  monolithic baseline    : {:.4}",
        e.monolithic_unreliability
    );
    println!(
        "  relative error         : {:.2}%",
        e.unreliability.relative_error().unwrap() * 100.0
    );
    println!();
    println!("state-space sizes");
    println!(
        "  compositional peak (full system) : {} states",
        e.peak_states
    );
    println!(
        "  monolithic chain  (full system)  : {} states",
        e.monolithic_states
    );
    println!("  aggregated module I/O-IMCs (paper reports ~6 states each):");
    for (name, states) in &e.module_states {
        println!("    {name:<11}: {states} states");
    }
    println!();
    println!(
        "session phases: build {} (one aggregation), query {}",
        dftmc_bench::timing::format_duration(e.timings.build),
        dftmc_bench::timing::format_duration(e.timings.query)
    );

    json::emit_and_announce(
        "cas",
        &Json::obj([
            ("experiment", "cas".into()),
            ("smoke", smoke.into()),
            ("unreliability_paper", e.unreliability.paper.unwrap().into()),
            ("unreliability_measured", e.unreliability.measured.into()),
            (
                "unreliability_monolithic",
                e.monolithic_unreliability.into(),
            ),
            ("compositional_peak_states", e.peak_states.into()),
            ("monolithic_states", e.monolithic_states.into()),
            (
                "module_states",
                Json::Arr(
                    e.module_states
                        .iter()
                        .map(|(name, states)| {
                            Json::obj([
                                ("module", name.as_str().into()),
                                ("states", (*states).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("build_seconds", Json::secs(e.timings.build)),
            ("query_seconds", Json::secs(e.timings.query)),
        ]),
    );
}
