//! Experiment E5: the Figure-6(a) configuration (an FDEP trigger feeding both
//! inputs of a PAND gate) analysed as a CTMDP, reporting unreliability bounds and
//! the deterministic resolution of the DIFTree-style baseline.
//!
//! Run with `cargo run --release -p dftmc-bench --bin nondeterminism_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let times: &[f64] = if smoke {
        &[0.5, 1.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };
    println!("== E5: simultaneity and non-determinism (Section 4.4, Figure 6a) ==\n");
    println!(
        "{:>14} {:>14} {:>14} {:>22}",
        "mission time", "lower bound", "upper bound", "baseline (det. order)"
    );
    let e = dftmc_bench::run_nondeterminism_experiment(times).expect("analysis runs");
    for row in &e.rows {
        println!(
            "{:>14} {:>14.6} {:>14.6} {:>22.6}",
            row.mission_time, row.lower, row.upper, row.baseline
        );
    }
    println!("\nThe baseline resolves the simultaneous failures deterministically (left to");
    println!("right), so its value always lies inside the scheduler bounds.");
    println!(
        "\nsession phases: build {} (one aggregation), whole-sweep query {}",
        dftmc_bench::timing::format_duration(e.timings.build),
        dftmc_bench::timing::format_duration(e.timings.query)
    );

    json::emit_and_announce(
        "nondeterminism",
        &Json::obj([
            ("experiment", "nondeterminism".into()),
            ("smoke", smoke.into()),
            (
                "rows",
                Json::Arr(
                    e.rows
                        .iter()
                        .map(|row| {
                            Json::obj([
                                ("mission_time", row.mission_time.into()),
                                ("lower", row.lower.into()),
                                ("upper", row.upper.into()),
                                ("baseline", row.baseline.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("build_seconds", Json::secs(e.timings.build)),
            ("query_seconds", Json::secs(e.timings.query)),
        ]),
    );
}
