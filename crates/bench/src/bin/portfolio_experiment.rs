//! Experiment E10: portfolio throughput over the `AnalysisService` — the
//! batch/cache/multi-worker regime the service API was built for.
//!
//! A portfolio of rate-scaled CAS variants (with many duplicate structures) is
//! submitted as one batch, once on a single worker and once on one worker per
//! core, both from a cold cache.  The experiment reports the wall-clock of both
//! runs, the cache accounting (every duplicate must be a hit; aggregation runs
//! exactly once per distinct tree) and a bit-identity check against sequential
//! `Analyzer` runs.
//!
//! Run with `cargo run --release -p dftmc-bench --bin portfolio_experiment`
//! (add `--smoke` for the quick CI configuration).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};
use dftmc_bench::timing::format_duration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (distinct, copies) = if smoke { (3, 3) } else { (10, 5) };

    println!("== E10: portfolio throughput over the AnalysisService ==\n");
    let e = dftmc_bench::run_portfolio_experiment(distinct, copies, 0).expect("portfolio runs");

    println!(
        "portfolio: {} jobs over {} distinct trees ({} copies each)",
        e.jobs, e.distinct_trees, copies
    );
    println!("\n{:<34} {:>14}", "metric", "value");
    println!("{}", "-".repeat(49));
    let row = |name: &str, value: String| println!("{name:<34} {value:>14}");
    row("workers (multi run)", e.workers.to_string());
    row("wall, 1 worker", format_duration(e.single_worker_wall));
    row(
        &format!("wall, {} workers", e.workers),
        format_duration(e.multi_worker_wall),
    );
    row("build time (summed)", format_duration(e.build_time));
    row("query time (summed)", format_duration(e.query_time));
    row("cache hits", e.cache_hits.to_string());
    row("cache misses", e.cache_misses.to_string());
    row("aggregation runs", e.aggregation_runs.to_string());
    row("bit-identical to sequential", e.bit_identical.to_string());

    assert!(
        e.bit_identical,
        "concurrent service results diverged from the sequential reference"
    );
    assert_eq!(
        e.aggregation_runs, e.distinct_trees,
        "duplicates must never re-run aggregation"
    );

    println!("\nEvery duplicate tree is a cache hit: the batch pays one aggregation per");
    println!("distinct structure, and the worker pool spreads those builds across cores.");

    json::emit_and_announce(
        "portfolio",
        &Json::obj([
            ("experiment", "portfolio".into()),
            ("smoke", smoke.into()),
            ("jobs", e.jobs.into()),
            ("distinct_trees", e.distinct_trees.into()),
            ("workers", e.workers.into()),
            (
                "single_worker_wall_seconds",
                Json::secs(e.single_worker_wall),
            ),
            ("multi_worker_wall_seconds", Json::secs(e.multi_worker_wall)),
            ("build_seconds", Json::secs(e.build_time)),
            ("query_seconds", Json::secs(e.query_time)),
            ("cache_hits", e.cache_hits.into()),
            ("cache_misses", e.cache_misses.into()),
            ("aggregation_runs", e.aggregation_runs.into()),
            ("bit_identical", e.bit_identical.into()),
        ]),
    );
}
