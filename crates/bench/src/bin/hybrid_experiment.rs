//! Hybrid static-module experiment: how much state space disappears when the
//! static crown of a tree is BDD-solved and only the dynamic cores keep their
//! I/O-IMC state spaces.
//!
//! Run with `cargo run --release -p dftmc-bench --bin hybrid_experiment`
//! (`--smoke` shrinks the static crown for CI; the full run uses a wider one).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let width = if smoke { 9 } else { 12 };
    let e = dftmc_bench::run_hybrid_experiment(width).expect("the hybrid analyses");

    println!("== hybrid backend: BDD crown over state-space cores ==\n");
    println!(
        "tree: {} static basic events + 1 cold-spare pair",
        e.static_width
    );
    println!(
        "decomposition: {} core(s), {} crown elements, {} core elements",
        e.cores, e.crown_elements, e.core_elements
    );
    println!();
    println!("closed-model states");
    println!("  pure state space : {}", e.compositional_states);
    println!("  hybrid cores     : {}", e.hybrid_states);
    println!("  reduction        : {:.1}x", e.reduction_factor);
    println!();
    println!(
        "max |unreliability difference| over the mission-time grid: {:.3e}",
        e.max_curve_diff
    );
    println!(
        "pure   session: build {}, query {}",
        dftmc_bench::timing::format_duration(e.compositional_timings.build),
        dftmc_bench::timing::format_duration(e.compositional_timings.query)
    );
    println!(
        "hybrid session: build {}, query {}",
        dftmc_bench::timing::format_duration(e.hybrid_timings.build),
        dftmc_bench::timing::format_duration(e.hybrid_timings.query)
    );

    // The two promises the experiment exists to keep, checked on every run.
    assert!(
        e.reduction_factor >= 10.0,
        "state reduction {:.1}x fell below the promised 10x",
        e.reduction_factor
    );
    assert!(
        e.max_curve_diff <= 1e-12,
        "hybrid curve diverges from the state-space curve by {}",
        e.max_curve_diff
    );

    json::emit_and_announce(
        "hybrid",
        &Json::obj([
            ("experiment", "hybrid".into()),
            ("smoke", smoke.into()),
            ("static_width", e.static_width.into()),
            ("compositional_states", e.compositional_states.into()),
            ("hybrid_states", e.hybrid_states.into()),
            ("reduction_factor", e.reduction_factor.into()),
            ("cores", e.cores.into()),
            ("crown_elements", e.crown_elements.into()),
            ("core_elements", e.core_elements.into()),
            ("max_curve_diff", e.max_curve_diff.into()),
            (
                "compositional_build_seconds",
                Json::secs(e.compositional_timings.build),
            ),
            (
                "compositional_query_seconds",
                Json::secs(e.compositional_timings.query),
            ),
            ("hybrid_build_seconds", Json::secs(e.hybrid_timings.build)),
            ("hybrid_query_seconds", Json::secs(e.hybrid_timings.query)),
        ]),
    );
}
