//! Experiments E3/E4: regenerates the cascaded-PAND results of Section 5.2 and
//! Figure 9.
//!
//! Run with `cargo run --release -p dftmc-bench --bin cps_experiment`
//! (`--smoke` is accepted for CI uniformity; the experiment is already small).

#![forbid(unsafe_code)]

use dftmc_bench::json::{self, Json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let e = dftmc_bench::run_cps_experiment().expect("the CPS analyses");
    println!("== E3/E4: cascaded PAND system (Section 5.2, Figures 8/9) ==\n");
    println!("{:<38} {:>12} {:>12}", "metric", "paper", "measured");
    let row = |name: &str, c: &dftmc_bench::Comparison| {
        println!("{:<38} {:>12} {:>12}", name, c.paper.unwrap(), c.measured);
    };
    println!(
        "{:<38} {:>12} {:>12.5}",
        "unreliability at t=1",
        e.unreliability.paper.unwrap(),
        e.unreliability.measured
    );
    row("compositional peak states", &e.peak_states);
    row("compositional peak transitions", &e.peak_transitions);
    row("monolithic states", &e.monolithic_states);
    row("monolithic transitions", &e.monolithic_transitions);
    println!();
    println!(
        "Figure 9: one AND module aggregates to {} states (order of identical failures is irrelevant)",
        e.module_a_states
    );
    println!();
    println!(
        "session phases: build {} (one aggregation), query {}",
        dftmc_bench::timing::format_duration(e.timings.build),
        dftmc_bench::timing::format_duration(e.timings.query)
    );

    let comparison = |c: &dftmc_bench::Comparison| {
        Json::obj([
            ("paper", c.paper.map(Json::Num).unwrap_or(Json::Null)),
            ("measured", c.measured.into()),
        ])
    };
    json::emit_and_announce(
        "cps",
        &Json::obj([
            ("experiment", "cps".into()),
            ("smoke", smoke.into()),
            ("unreliability", comparison(&e.unreliability)),
            ("peak_states", comparison(&e.peak_states)),
            ("peak_transitions", comparison(&e.peak_transitions)),
            ("monolithic_states", comparison(&e.monolithic_states)),
            (
                "monolithic_transitions",
                comparison(&e.monolithic_transitions),
            ),
            ("module_a_states", e.module_a_states.into()),
            ("build_seconds", Json::secs(e.timings.build)),
            ("query_seconds", Json::secs(e.timings.query)),
        ]),
    );
}
