//! A small, dependency-free wall-clock benchmarking harness.
//!
//! The container image carries no external crates, so the benches in `benches/`
//! cannot use Criterion.  This module provides the minimum they need: run a
//! closure a fixed number of times after a warm-up, record total/mean/min, and
//! print an aligned table row.  The benches are registered with
//! `harness = false`, so `cargo bench -p dftmc-bench` simply executes their
//! `main` functions.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The timing record of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Name of the benchmark (printed in the first column).
    pub name: String,
    /// Number of measured iterations (the warm-up iteration is excluded).
    pub iters: u32,
    /// Total wall-clock time over all measured iterations.
    pub total: Duration,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<48} {:>12} {:>12} {:>8}",
            self.name,
            format_duration(self.mean),
            format_duration(self.min),
            self.iters
        )
    }
}

/// Formats a duration with an SI prefix suited to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Prints the table header matching [`Sample`]'s `Display` columns.
pub fn print_header(title: &str) {
    println!("== {title} ==\n");
    println!(
        "{:<48} {:>12} {:>12} {:>8}",
        "benchmark", "mean", "min", "iters"
    );
    println!("{}", "-".repeat(84));
}

/// Runs `f` once as a warm-up and then `iters` measured times, returning the
/// timing record.  The closure's result is passed through [`black_box`] so the
/// optimiser cannot discard the computation.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "at least one iteration is required");
    black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    Sample {
        name: name.to_owned(),
        iters,
        total,
        mean: total / iters,
        min,
    }
}

/// Runs [`bench()`] and prints the sample as a table row, returning it for further
/// inspection.
pub fn report<T>(name: &str, iters: u32, f: impl FnMut() -> T) -> Sample {
    let sample = bench(name, iters, f);
    println!("{sample}");
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations() {
        let mut calls = 0u32;
        let sample = bench("noop", 5, || calls += 1);
        // One warm-up call plus five measured calls.
        assert_eq!(calls, 6);
        assert_eq!(sample.iters, 5);
        assert!(sample.min <= sample.mean);
        assert!(sample.total >= sample.min);
    }

    #[test]
    fn durations_format_with_suitable_units() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert!(format_duration(Duration::from_micros(250)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(250)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(12)).ends_with(" s"));
    }
}
