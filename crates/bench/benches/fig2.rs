//! Benchmark E1 — the Figure 2 pipeline (compose, hide, aggregate) on elementary
//! models, measuring the cost of the three core I/O-IMC operations.

use dftmc_bench::timing::{print_header, report};
use ioimc::bisim::minimize;
use ioimc::compose::compose;
use ioimc::hide::hide;
use ioimc::{Action, IoImc, IoImcBuilder};

fn chain(name: &str, stages: usize, rate: f64, input: Option<Action>, output: Action) -> IoImc {
    let mut b = IoImcBuilder::new(name);
    let states = b.add_states(stages + 2);
    b.initial(states[0]);
    let mut current = 0;
    if let Some(input) = input {
        b.input(states[0], input, states[1]);
        current = 1;
    }
    for i in current..stages + current {
        if i + 1 < states.len() {
            b.markovian(states[i], rate, states[i + 1]);
        }
    }
    b.output(states[stages + current.min(1)], output, states[stages + 1]);
    b.build().expect("valid chain model")
}

fn main() {
    let a = Action::new("bench_fig2_a");
    let b_sig = Action::new("bench_fig2_b");
    let left = chain("A", 3, 1.3, None, a);
    let right = chain("B", 3, 1.3, Some(a), b_sig);

    print_header("E1: Figure 2 pipeline");

    report("fig2/compose", 30, || {
        compose(&left, &right).expect("composable")
    });

    let composed = compose(&left, &right).expect("composable");
    report("fig2/hide", 30, || hide(&composed, &[a]).expect("hides"));

    let hidden = hide(&composed, &[a]).expect("hides");
    report("fig2/aggregate", 30, || minimize(&hidden));

    report("fig2/full-pipeline", 30, || {
        let composed = compose(&left, &right).expect("composable");
        let hidden = hide(&composed, &[a]).expect("hides");
        minimize(&hidden)
    });
}
