//! Benchmark E1 — the Figure 2 pipeline (compose, hide, aggregate) on elementary
//! models, measuring the cost of the three core I/O-IMC operations.

use criterion::{criterion_group, criterion_main, Criterion};
use ioimc::bisim::minimize;
use ioimc::compose::compose;
use ioimc::hide::hide;
use ioimc::{Action, IoImc, IoImcBuilder};
use std::hint::black_box;

fn chain(name: &str, stages: usize, rate: f64, input: Option<Action>, output: Action) -> IoImc {
    let mut b = IoImcBuilder::new(name);
    let states = b.add_states(stages + 2);
    b.initial(states[0]);
    let mut current = 0;
    if let Some(input) = input {
        b.input(states[0], input, states[1]);
        current = 1;
    }
    for i in current..stages + current {
        if i + 1 < states.len() {
            b.markovian(states[i], rate, states[i + 1]);
        }
    }
    b.output(states[stages + current.min(1)], output, states[stages + 1]);
    b.build().expect("valid chain model")
}

fn bench_fig2(c: &mut Criterion) {
    let a = Action::new("bench_fig2_a");
    let b_sig = Action::new("bench_fig2_b");
    let left = chain("A", 3, 1.3, None, a);
    let right = chain("B", 3, 1.3, Some(a), b_sig);

    c.bench_function("fig2/compose", |bench| {
        bench.iter(|| compose(black_box(&left), black_box(&right)).expect("composable"))
    });

    let composed = compose(&left, &right).expect("composable");
    c.bench_function("fig2/hide", |bench| {
        bench.iter(|| hide(black_box(&composed), &[a]).expect("hides"))
    });

    let hidden = hide(&composed, &[a]).expect("hides");
    c.bench_function("fig2/aggregate", |bench| {
        bench.iter(|| minimize(black_box(&hidden)))
    });

    c.bench_function("fig2/full-pipeline", |bench| {
        bench.iter(|| {
            let composed = compose(black_box(&left), black_box(&right)).expect("composable");
            let hidden = hide(&composed, &[a]).expect("hides");
            minimize(&hidden)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig2
}
criterion_main!(benches);
