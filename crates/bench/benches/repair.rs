//! Benchmark E8 — the repair extension (Section 7.2): unavailability analysis of
//! repairable static trees of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dft::{DftBuilder, Dormancy};
use dft_core::analysis::{unavailability, AnalysisOptions};
use std::hint::black_box;

fn repairable_voting(n: usize) -> dft::Dft {
    let mut b = DftBuilder::new();
    let events: Vec<_> = (0..n)
        .map(|i| {
            b.repairable_basic_event(&format!("R{i}"), 0.5, Dormancy::Hot, 5.0)
                .expect("valid BE")
        })
        .collect();
    let k = ((n + 1) / 2) as u32;
    let top = b.voting_gate("system", k, &events).expect("valid gate");
    b.build(top).expect("wellformed DFT")
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair/unavailability");
    for n in [2usize, 3, 4] {
        let dft = repairable_voting(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dft, |bench, dft| {
            bench.iter(|| unavailability(black_box(dft), &AnalysisOptions::default()).expect("analysis"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair
}
criterion_main!(benches);
