//! Benchmark E8 — the repair extension (Section 7.2): unavailability analysis of
//! repairable static trees of growing size, split into the session build and the
//! steady-state / first-passage queries.

use dft_core::analysis::AnalysisOptions;
use dft_core::engine::Analyzer;
use dftmc_bench::repairable_voting;
use dftmc_bench::timing::{print_header, report};

fn main() {
    print_header("E8: repairable voting systems");

    for n in [2usize, 3, 4] {
        let dft = repairable_voting(n, 0.5, 5.0);
        report(&format!("repair/{n}-components/build"), 10, || {
            Analyzer::new(&dft, AnalysisOptions::default()).expect("build")
        });
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).expect("build");
        report(
            &format!("repair/{n}-components/query-unavailability"),
            10,
            || analyzer.unavailability().expect("query"),
        );
        report(&format!("repair/{n}-components/query-mttf"), 10, || {
            analyzer.mttf().expect("query")
        });
    }
}
