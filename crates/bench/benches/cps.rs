//! Benchmark E3/E4 — the cascaded PAND system (Section 5.2): the modularity
//! showcase where compositional aggregation beats the monolithic chain by more
//! than an order of magnitude in state count.  Build and query phases are
//! measured separately; the curve query shows the session amortising its build.

// This bench deliberately measures the deprecated one-shot wrapper against
// the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dft_core::analysis::{aggregated_model, unreliability, AnalysisOptions, Method};
use dft_core::casestudies::cps;
use dft_core::engine::Analyzer;
use dftmc_bench::single_and_module;
use dftmc_bench::timing::{print_header, report};

fn main() {
    let dft = cps();
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions {
        method: Method::Monolithic,
        ..AnalysisOptions::default()
    };
    let sweep: Vec<f64> = (1..=25).map(|i| i as f64 * 0.2).collect();

    print_header("E3/E4: cascaded PAND system");

    report("cps/compositional/build", 10, || {
        Analyzer::new(&dft, compositional.clone()).expect("build")
    });
    let analyzer = Analyzer::new(&dft, compositional.clone()).expect("build");
    report("cps/compositional/query-point", 10, || {
        analyzer.unreliability(1.0).expect("query")
    });
    report("cps/compositional/query-curve-25pts", 10, || {
        analyzer.unreliability_curve(&sweep).expect("query")
    });
    report("cps/compositional/one-shot-legacy", 10, || {
        unreliability(&dft, 1.0, &compositional).expect("analysis")
    });

    report("cps/monolithic/build", 10, || {
        Analyzer::new(&dft, monolithic.clone()).expect("build")
    });
    let mono = Analyzer::new(&dft, monolithic.clone()).expect("build");
    report("cps/monolithic/query-point", 10, || {
        mono.unreliability(1.0).expect("query")
    });

    // Figure 9: aggregating one AND module on its own.
    let module = single_and_module(4, 1.0);
    report("cps/module-a-aggregation", 10, || {
        aggregated_model(&module).expect("aggregation")
    });
}
