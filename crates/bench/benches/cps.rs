//! Benchmark E3/E4 — the cascaded PAND system (Section 5.2): the modularity
//! showcase where compositional aggregation beats the monolithic chain by more
//! than an order of magnitude in state count.

use criterion::{criterion_group, criterion_main, Criterion};
use dft_core::analysis::{aggregated_model, unreliability, AnalysisOptions, Method};
use dft_core::baseline::monolithic_ctmc;
use dft_core::casestudies::cps;
use dftmc_bench::single_and_module;
use std::hint::black_box;

fn bench_cps(c: &mut Criterion) {
    let dft = cps();
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() };

    c.bench_function("cps/compositional-unreliability", |bench| {
        bench.iter(|| unreliability(black_box(&dft), 1.0, &compositional).expect("analysis"))
    });
    c.bench_function("cps/monolithic-unreliability", |bench| {
        bench.iter(|| unreliability(black_box(&dft), 1.0, &monolithic).expect("analysis"))
    });
    c.bench_function("cps/monolithic-state-space-generation", |bench| {
        bench.iter(|| monolithic_ctmc(black_box(&dft)).expect("generation"))
    });

    // Figure 9: aggregating one AND module on its own.
    let module = single_and_module(4, 1.0);
    c.bench_function("cps/module-a-aggregation", |bench| {
        bench.iter(|| aggregated_model(black_box(&module)).expect("aggregation"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cps
}
criterion_main!(benches);
