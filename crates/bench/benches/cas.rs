//! Benchmark E2 — the cardiac assist system (Section 5.1): compositional
//! aggregation versus the monolithic baseline, end to end (model generation plus
//! unreliability at mission time 1).

use criterion::{criterion_group, criterion_main, Criterion};
use dft_core::analysis::{unreliability, AnalysisOptions, Method};
use dft_core::baseline::monolithic_ctmc;
use dft_core::casestudies::cas;
use std::hint::black_box;

fn bench_cas(c: &mut Criterion) {
    let dft = cas();
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() };

    c.bench_function("cas/compositional-unreliability", |bench| {
        bench.iter(|| unreliability(black_box(&dft), 1.0, &compositional).expect("analysis"))
    });
    c.bench_function("cas/monolithic-unreliability", |bench| {
        bench.iter(|| unreliability(black_box(&dft), 1.0, &monolithic).expect("analysis"))
    });
    c.bench_function("cas/monolithic-state-space-generation", |bench| {
        bench.iter(|| monolithic_ctmc(black_box(&dft)).expect("generation"))
    });
    c.bench_function("cas/dft-to-ioimc-community", |bench| {
        bench.iter(|| dft_core::convert::convert(black_box(&dft)).expect("conversion"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cas
}
criterion_main!(benches);
