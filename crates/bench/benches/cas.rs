//! Benchmark E2 — the cardiac assist system (Section 5.1).
//!
//! The session engine splits every analysis into a **build** phase (conversion +
//! compositional aggregation, or monolithic chain generation) and a **query**
//! phase (uniformisation against the cached model); this bench measures the two
//! phases separately for both methods, plus the legacy one-shot entry point that
//! pays for both on every call.

// This bench deliberately measures the deprecated one-shot wrapper against
// the session engine; see `dft_core::analysis` for the migration.
#![allow(deprecated)]
use dft_core::analysis::{unreliability, AnalysisOptions, Method};
use dft_core::casestudies::cas;
use dft_core::engine::Analyzer;
use dftmc_bench::timing::{print_header, report};

fn main() {
    let dft = cas();
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions {
        method: Method::Monolithic,
        ..AnalysisOptions::default()
    };
    let sweep: Vec<f64> = (1..=25).map(|i| i as f64 * 0.2).collect();

    print_header("E2: cardiac assist system");

    report("cas/compositional/build", 20, || {
        Analyzer::new(&dft, compositional.clone()).expect("build")
    });
    let analyzer = Analyzer::new(&dft, compositional.clone()).expect("build");
    report("cas/compositional/query-point", 20, || {
        analyzer.unreliability(1.0).expect("query")
    });
    report("cas/compositional/query-curve-25pts", 20, || {
        analyzer.unreliability_curve(&sweep).expect("query")
    });
    report("cas/compositional/one-shot-legacy", 20, || {
        unreliability(&dft, 1.0, &compositional).expect("analysis")
    });

    report("cas/monolithic/build", 20, || {
        Analyzer::new(&dft, monolithic.clone()).expect("build")
    });
    let mono = Analyzer::new(&dft, monolithic.clone()).expect("build");
    report("cas/monolithic/query-point", 20, || {
        mono.unreliability(1.0).expect("query")
    });
    report("cas/monolithic/query-curve-25pts", 20, || {
        mono.unreliability_curve(&sweep).expect("query")
    });

    report("cas/dft-to-ioimc-community", 20, || {
        dft_core::convert::convert(&dft).expect("conversion")
    });
}
