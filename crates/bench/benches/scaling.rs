//! Benchmark E9 — scaling behaviour (the discussion closing Section 5.2): the
//! cascaded-PAND family with growing module width (modular, compositional
//! aggregation shines) and the highly connected family (little independent
//! structure, the advantage shrinks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dft_core::analysis::{unreliability, AnalysisOptions, Method};
use dft_core::casestudies::cascaded_pand;
use dftmc_bench::highly_connected;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions { method: Method::Monolithic, ..AnalysisOptions::default() };

    let mut group = c.benchmark_group("scaling/cascaded-pand");
    for width in [2usize, 3, 4] {
        let dft = cascaded_pand(width, 1.0);
        group.bench_with_input(
            BenchmarkId::new("compositional", width),
            &dft,
            |bench, dft| {
                bench.iter(|| unreliability(black_box(dft), 1.0, &compositional).expect("analysis"))
            },
        );
        group.bench_with_input(BenchmarkId::new("monolithic", width), &dft, |bench, dft| {
            bench.iter(|| unreliability(black_box(dft), 1.0, &monolithic).expect("analysis"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/highly-connected");
    for n in [3usize, 4, 5] {
        let dft = highly_connected(n, 1.0);
        group.bench_with_input(
            BenchmarkId::new("compositional", n),
            &dft,
            |bench, dft| {
                bench.iter(|| unreliability(black_box(dft), 1.0, &compositional).expect("analysis"))
            },
        );
        group.bench_with_input(BenchmarkId::new("monolithic", n), &dft, |bench, dft| {
            bench.iter(|| unreliability(black_box(dft), 1.0, &monolithic).expect("analysis"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
