//! Benchmark E9 — scaling behaviour (the discussion closing Section 5.2): the
//! cascaded-PAND family with growing module width (modular, compositional
//! aggregation shines) and the highly connected family (little independent
//! structure, the advantage shrinks).  Each point measures the session build and
//! a 10-point mission-time sweep against it.

use dft_core::analysis::{AnalysisOptions, Method};
use dft_core::casestudies::cascaded_pand;
use dft_core::engine::Analyzer;
use dftmc_bench::highly_connected;
use dftmc_bench::timing::{print_header, report};

fn sweep() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.25).collect()
}

fn bench_family(label: &str, dfts: &[(usize, dft::Dft)]) {
    let compositional = AnalysisOptions::default();
    let monolithic = AnalysisOptions {
        method: Method::Monolithic,
        ..AnalysisOptions::default()
    };
    let times = sweep();
    for (size, dft) in dfts {
        report(&format!("{label}/{size}/compositional-build"), 10, || {
            Analyzer::new(dft, compositional.clone()).expect("build")
        });
        let analyzer = Analyzer::new(dft, compositional.clone()).expect("build");
        report(
            &format!("{label}/{size}/compositional-sweep-10pts"),
            10,
            || analyzer.unreliability_curve(&times).expect("query"),
        );
        report(&format!("{label}/{size}/monolithic-build"), 10, || {
            Analyzer::new(dft, monolithic.clone()).expect("build")
        });
        let mono = Analyzer::new(dft, monolithic.clone()).expect("build");
        report(
            &format!("{label}/{size}/monolithic-sweep-10pts"),
            10,
            || mono.unreliability_curve(&times).expect("query"),
        );
    }
}

fn main() {
    print_header("E9: scaling families");

    let cascaded: Vec<(usize, dft::Dft)> = [2usize, 3, 4]
        .iter()
        .map(|&w| (w, cascaded_pand(w, 1.0)))
        .collect();
    bench_family("scaling/cascaded-pand", &cascaded);

    let connected: Vec<(usize, dft::Dft)> = [3usize, 4, 5]
        .iter()
        .map(|&n| (n, highly_connected(n, 1.0)))
        .collect();
    bench_family("scaling/highly-connected", &connected);
}
