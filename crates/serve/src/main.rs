//! `dftmc-serve` — a dependency-free HTTP front end over the shared model
//! store.  See the crate docs ([`dftmc_serve`]) for the endpoint table.
//!
//! ```text
//! dftmc-serve --addr 127.0.0.1:7171 --store /var/cache/dftmc
//! ```
//!
//! Point several processes (on one machine or a shared filesystem) at the
//! same `--store` directory and they form a fleet: the first to analyze a
//! tree pays for aggregation, every other process loads the closed model
//! from disk (`aggregation_runs == 0`).

#![forbid(unsafe_code)]

use dftmc_serve::server::{Server, ServerOptions};
use std::io::Write;
use std::time::Duration;

const USAGE: &str = "\
dftmc-serve: HTTP front end for the DFT analysis service

USAGE:
  dftmc-serve [OPTIONS]

OPTIONS:
  --addr ADDR          bind address (default 127.0.0.1:7171; port 0 = OS-chosen)
  --store DIR          shared model store directory (fleet mode)
  --workers N          analysis worker threads (default: available parallelism)
  --http-threads N     HTTP connection threads (default 4)
  --queue-depth N      accepted connections waiting for a thread (default 64)
  --max-jobs N         in-flight jobs before 429 (default 256)
  --max-done N         finished reports retained for GET /result (default 1024)
  --max-body BYTES     request body limit (default 1048576)
  --read-timeout SECS  per-connection socket timeout (default 10)
  --help               print this help
";

fn fail(message: &str) -> ! {
    eprintln!("dftmc-serve: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> ServerOptions {
    let mut options = ServerOptions {
        addr: "127.0.0.1:7171".to_owned(),
        ..ServerOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let Some(value) = args.next() else {
            fail(&format!("flag {flag} needs a value"));
        };
        match flag.as_str() {
            "--addr" => options.addr = value,
            "--store" => options.service = options.service.clone().store(value),
            "--workers" => options.service.workers = parse_count(&flag, &value),
            "--http-threads" => options.http_threads = parse_count(&flag, &value),
            "--queue-depth" => options.queue_depth = parse_count(&flag, &value),
            "--max-jobs" => options.max_jobs = parse_count(&flag, &value),
            "--max-done" => options.max_done = parse_count(&flag, &value),
            "--max-body" => options.limits.max_body_bytes = parse_count(&flag, &value),
            "--read-timeout" => {
                options.limits.read_timeout =
                    Duration::from_secs(parse_count(&flag, &value) as u64);
            }
            _ => fail(&format!("unknown flag {flag}")),
        }
    }
    options
}

fn parse_count(flag: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => fail(&format!("{flag} wants a positive integer, got {value:?}")),
    }
}

fn main() {
    let options = parse_args();
    let server = match Server::start(options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dftmc-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The smoke harness parses this line to learn an OS-chosen port; keep the
    // format stable and flush past any pipe buffering.
    println!("dftmc-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    let drained = server.join();
    println!("dftmc-serve: graceful shutdown, drained {drained} in-flight job(s)");
}
