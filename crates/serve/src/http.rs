//! A total, panic-free HTTP/1.1 request parser and response writer.
//!
//! This module is a trust boundary: its input is raw bytes off a socket, so
//! it is held to the same bar as the model codec ([xlint]'s decode rules —
//! no panics, no direct indexing, no `as` integer casts).  Parsing is
//! *incremental*: [`parse_request`] returns `Ok(None)` while the buffer is
//! still incomplete, a typed [`ParseError`] when the bytes can never become
//! a valid request, and the parsed [`Request`] once head and body are fully
//! buffered.  Every dimension is bounded by [`HttpLimits`] before any
//! allocation proportional to attacker input happens.
//!
//! The protocol subset is deliberately small — exactly what a job-submission
//! API needs: `HTTP/1.0` / `HTTP/1.1`, one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies only
//! (`Transfer-Encoding` is rejected with `501`).
//!
//! [xlint]: ../../xlint/index.html

use std::fmt;
use std::time::Duration;

/// Hard bounds on what the server will read from one connection.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum size of the request head (request line + headers + CRLFCRLF).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` the server accepts.
    pub max_body_bytes: usize,
    /// Socket read/write timeout; a connection idle longer than this is
    /// dropped (counted, never blocking a server thread forever).
    pub read_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a byte buffer can never become a valid request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// No end-of-head within [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// `Content-Length` exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
    /// Structurally invalid head (bad request line, bad header syntax, …).
    Malformed(&'static str),
    /// A well-formed request line for a protocol this server does not speak.
    UnsupportedVersion,
    /// `Content-Length` is present but not a plain decimal byte count.
    InvalidContentLength,
    /// `Transfer-Encoding` (chunked uploads etc.) is not supported.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The HTTP status code the error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::Malformed(_) | ParseError::InvalidContentLength => 400,
            ParseError::UnsupportedVersion => 505,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::HeadTooLarge => write!(f, "request head exceeds the size limit"),
            ParseError::BodyTooLarge => write!(f, "request body exceeds the size limit"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are spoken"),
            ParseError::InvalidContentLength => write!(f, "invalid Content-Length"),
            ParseError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "Transfer-Encoding is not supported; send a Content-Length body"
                )
            }
        }
    }
}

/// The parsed request head: everything before the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target (`/status/42`), as sent.
    pub target: String,
    /// Declared body length (0 when no `Content-Length` header is present).
    pub content_length: usize,
    /// Bytes the head occupies in the buffer, terminator included; the body
    /// starts at this offset.
    pub head_len: usize,
}

/// A complete parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …).
    pub method: String,
    /// The request target (`/status/42`).
    pub target: String,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Parses the request head out of a (possibly still growing) buffer.
///
/// Returns `Ok(None)` while the head terminator has not arrived yet and the
/// buffer is still within [`HttpLimits::max_head_bytes`].
///
/// # Errors
///
/// Any [`ParseError`]; see the variants for the conditions.
pub fn parse_head(
    bytes: &[u8],
    limits: &HttpLimits,
) -> std::result::Result<Option<RequestHead>, ParseError> {
    let searched = bytes.len().min(limits.max_head_bytes);
    let window = bytes.get(..searched).unwrap_or(bytes);
    let Some(at) = window.windows(4).position(|w| w == b"\r\n\r\n") else {
        if bytes.len() >= limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    let head_len = at.saturating_add(4);
    let head_bytes = bytes.get(..at).ok_or(ParseError::Malformed("head slice"))?;
    let head = std::str::from_utf8(head_bytes)
        .map_err(|_| ParseError::Malformed("head is not valid UTF-8"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(ParseError::Malformed("empty request head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?;
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("request line has extra fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("method is not an uppercase token"));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(ParseError::Malformed("target is not an absolute path"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion);
    }

    let mut content_length: Option<usize> = None;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header line without ':'"))?;
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseError::InvalidContentLength)?;
            // Duplicate Content-Length headers smell like request smuggling;
            // accept them only when they agree.
            if content_length.is_some_and(|seen| seen != parsed) {
                return Err(ParseError::InvalidContentLength);
            }
            content_length = Some(parsed);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }

    Ok(Some(RequestHead {
        method: method.to_owned(),
        target: target.to_owned(),
        content_length,
        head_len,
    }))
}

/// Parses a complete request (head + body) out of a buffer.
///
/// Returns `Ok(None)` while more bytes are needed — the server keeps reading
/// and calls again.  This is the function the fuzz campaign drives: for any
/// byte input it must return without panicking, in time proportional to the
/// input length.
///
/// # Errors
///
/// Any [`ParseError`]; see the variants for the conditions.
pub fn parse_request(
    bytes: &[u8],
    limits: &HttpLimits,
) -> std::result::Result<Option<Request>, ParseError> {
    let Some(head) = parse_head(bytes, limits)? else {
        return Ok(None);
    };
    let end = head
        .head_len
        .checked_add(head.content_length)
        .ok_or(ParseError::BodyTooLarge)?;
    let Some(body) = bytes.get(head.head_len..end) else {
        return Ok(None);
    };
    Ok(Some(Request {
        method: head.method,
        target: head.target,
        body: body.to_vec(),
    }))
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes one complete `Connection: close` JSON response.
pub fn response(status: u16, body: &str) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nhey!";
        let req = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/submit");
        assert_eq!(req.body, b"hey!");
    }

    #[test]
    fn incomplete_buffers_ask_for_more() {
        let raw = b"POST /submit HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf";
        assert_eq!(parse_request(raw, &limits()).unwrap(), None);
        assert_eq!(parse_request(b"GET /metr", &limits()).unwrap(), None);
        assert_eq!(parse_request(b"", &limits()).unwrap(), None);
    }

    #[test]
    fn rejects_oversized_heads_and_bodies() {
        let mut tight = limits();
        tight.max_head_bytes = 32;
        let raw = b"GET /a-target-longer-than-the-head-limit HTTP/1.1\r\n\r\n";
        assert_eq!(parse_request(raw, &tight), Err(ParseError::HeadTooLarge));

        let raw = b"POST /submit HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let mut tiny = limits();
        tiny.max_body_bytes = 16;
        assert_eq!(parse_request(raw, &tiny), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn rejects_malformed_heads_with_typed_errors() {
        let cases: [(&[u8], ParseError); 7] = [
            (
                b"GET\r\n\r\n",
                ParseError::Malformed("missing request target"),
            ),
            (
                b"get /x HTTP/1.1\r\n\r\n",
                ParseError::Malformed("method is not an uppercase token"),
            ),
            (
                b"GET x HTTP/1.1\r\n\r\n",
                ParseError::Malformed("target is not an absolute path"),
            ),
            (b"GET /x HTTP/2\r\n\r\n", ParseError::UnsupportedVersion),
            (
                b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
                ParseError::Malformed("header line without ':'"),
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                ParseError::InvalidContentLength,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                ParseError::UnsupportedTransferEncoding,
            ),
        ];
        for (raw, want) in cases {
            assert_eq!(parse_request(raw, &limits()), Err(want), "{raw:?}");
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n";
        assert_eq!(
            parse_request(raw, &limits()),
            Err(ParseError::InvalidContentLength)
        );
        // Agreeing duplicates are tolerated.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        assert!(parse_request(raw, &limits()).unwrap().is_some());
    }

    #[test]
    fn responses_carry_length_and_close() {
        let raw = response(200, "{\"ok\":true}");
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_statuses_map_to_http_codes() {
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
        assert_eq!(ParseError::Malformed("x").status(), 400);
        assert_eq!(ParseError::UnsupportedVersion.status(), 505);
        assert_eq!(ParseError::UnsupportedTransferEncoding.status(), 501);
    }
}
