//! A minimal blocking HTTP/1.1 client for the `Connection: close` dialect the
//! server speaks.  One request per connection, response read to EOF.
//!
//! This exists for the integration tests, the CI smoke binary and the bench
//! loadgen — it is *not* a general HTTP client (no keep-alive, no chunked
//! bodies, no redirects), exactly mirroring what the server emits.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP exchange: connect, send `method path` with `body`, read to EOF.
/// Returns the status code and the parsed JSON body ([`Json::Null`] when the
/// body is empty or not JSON).
///
/// # Errors
///
/// I/O errors from connect/read/write, or a malformed status line.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<(u16, Json)> {
    request_with_timeout(addr, method, path, body, Duration::from_secs(30))
}

/// [`request`] with an explicit per-socket timeout.
///
/// # Errors
///
/// I/O errors from connect/read/write, or a malformed status line.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw response into (status, parsed JSON body).
fn parse_response(raw: &[u8]) -> io::Result<(u16, Json)> {
    let malformed = || io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response");
    let text = std::str::from_utf8(raw).map_err(|_| malformed())?;
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(malformed)?;
    let status_line = head.lines().next().ok_or_else(malformed)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(malformed)?;
    let body = crate::json::parse(payload).unwrap_or(Json::Null);
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_servers_response() {
        let raw = crate::http::response(202, "{\"id\":1}");
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 202);
        assert_eq!(body.render(), "{\"id\":1}");

        // A non-JSON body degrades to Null instead of an error.
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n".to_vec();
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 204);
        assert!(matches!(body, Json::Null));

        assert!(parse_response(b"garbage").is_err());
    }
}
