//! Server-side counters and the `/metrics` document.
//!
//! The service already accounts for itself (`queue_stats()`, `cache_stats()`,
//! `store_stats()`); this module adds the HTTP-side counters and renders the
//! whole picture as one JSON object, so a fleet operator can watch queue
//! depth, cache temperature and — crucially for a *shared* store directory —
//! degradation signals like `store.write_errors` from outside the process.

use crate::json::Json;
use dft_core::service::{CacheStats, HybridStats, QueueStats};
use dft_core::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// HTTP-layer counters, updated by the connection loop and the router.
#[derive(Debug, Default)]
pub struct HttpCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections rejected with `503` because the bounded connection queue
    /// was full (accept-time backpressure).
    pub rejected_connections: AtomicU64,
    /// Requests answered, any status.
    pub requests: AtomicU64,
    /// Requests refused with `4xx`/`5xx` before reaching the service
    /// (parse errors, unknown routes, bad JSON…).
    pub bad_requests: AtomicU64,
    /// Submissions refused with `429` because the job registry was full.
    pub throttled: AtomicU64,
    /// Connections dropped for I/O reasons (timeouts, resets) before a
    /// response could be written.
    pub dropped_connections: AtomicU64,
}

/// Job-layer counters, updated by the registry as reports are harvested.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Jobs and sweeps accepted (`202`).
    pub submitted: AtomicU64,
    /// Jobs and sweeps whose report has been harvested.
    pub completed: AtomicU64,
    /// Jobs that died with a worker panic (harvest found a closed channel).
    pub failed: AtomicU64,
    /// Sum of build-phase time over harvested jobs, in nanoseconds.
    pub build_nanos: AtomicU64,
    /// Sum of query-phase time over harvested jobs, in nanoseconds.
    pub query_nanos: AtomicU64,
    /// Aggregation runs actually executed by harvested jobs (0 for every
    /// cache or store hit — the fleet-warmth signal).
    pub aggregation_runs: AtomicU64,
}

/// One bump of a counter.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds a duration to a nanosecond counter (saturating; 584 years of build
/// time can round down).
pub fn add_time(counter: &AtomicU64, d: Duration) {
    let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    counter.fetch_add(nanos, Ordering::Relaxed);
}

fn num(counter: &AtomicU64) -> Json {
    // u64 renders as a hex string (fingerprint convention); counters are
    // plain numbers, safely below f64's exact-integer range in any real run.
    json_count(counter.load(Ordering::Relaxed))
}

fn seconds(counter: &AtomicU64) -> Json {
    Json::secs(Duration::from_nanos(counter.load(Ordering::Relaxed)))
}

fn count(value: usize) -> Json {
    Json::from(value)
}

/// A u64 counter as a JSON number (`From<u64>` renders fingerprints as hex
/// strings instead; counters and ids want plain numbers).  Public because the
/// router — which may not use `as` casts — renders ids through it.
pub fn json_count(value: u64) -> Json {
    Json::Num(value as f64)
}

/// Renders the full `/metrics` document.
///
/// `pending` is the number of jobs currently sitting in the registry
/// (submitted, not yet harvested); `store` is `None` for a storeless server
/// and must render as JSON `null` so a scraper can tell "no store" from
/// "store with zero traffic".
#[allow(clippy::too_many_arguments)] // one parameter per /metrics section, wired from a single call site
pub fn render(
    uptime: Duration,
    http: &HttpCounters,
    jobs: &JobCounters,
    pending: usize,
    queue: QueueStats,
    cache: CacheStats,
    hybrid: HybridStats,
    store: Option<StoreStats>,
) -> Json {
    Json::obj([
        ("uptime_seconds", Json::secs(uptime)),
        (
            "http",
            Json::obj([
                ("connections", num(&http.connections)),
                ("rejected_connections", num(&http.rejected_connections)),
                ("requests", num(&http.requests)),
                ("bad_requests", num(&http.bad_requests)),
                ("throttled", num(&http.throttled)),
                ("dropped_connections", num(&http.dropped_connections)),
            ]),
        ),
        (
            "jobs",
            Json::obj([
                ("submitted", num(&jobs.submitted)),
                ("completed", num(&jobs.completed)),
                ("failed", num(&jobs.failed)),
                ("pending", count(pending)),
                ("build_seconds", seconds(&jobs.build_nanos)),
                ("query_seconds", seconds(&jobs.query_nanos)),
                ("aggregation_runs", num(&jobs.aggregation_runs)),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("submitted", json_count(queue.submitted)),
                ("completed", json_count(queue.completed)),
                ("pending", count(queue.pending)),
                ("parked", json_count(queue.parked)),
                ("released", json_count(queue.released)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", count(cache.hits)),
                ("misses", count(cache.misses)),
                ("evictions", count(cache.evictions)),
                ("entries", count(cache.entries)),
                ("parametric_hits", count(cache.parametric_hits)),
                ("parametric_misses", count(cache.parametric_misses)),
                ("parametric_evictions", count(cache.parametric_evictions)),
                ("parametric_entries", count(cache.parametric_entries)),
            ]),
        ),
        (
            "hybrid",
            Json::obj([
                ("builds", count(hybrid.builds)),
                ("fallbacks", count(hybrid.fallbacks)),
                ("cores", count(hybrid.cores)),
                ("crown_elements", count(hybrid.crown_elements)),
                ("core_elements", count(hybrid.core_elements)),
            ]),
        ),
        (
            "store",
            match store {
                None => Json::Null,
                Some(s) => Json::obj([
                    ("hits", json_count(s.hits)),
                    ("misses", json_count(s.misses)),
                    ("rejected", json_count(s.rejected)),
                    ("writes", json_count(s.writes)),
                    ("write_errors", json_count(s.write_errors)),
                    ("read_bytes", json_count(s.read_bytes)),
                    ("write_bytes", json_count(s.write_bytes)),
                ]),
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_observability_key() {
        let http = HttpCounters::default();
        let jobs = JobCounters::default();
        bump(&http.requests);
        bump(&jobs.submitted);
        add_time(&jobs.build_nanos, Duration::from_millis(1500));
        let doc = render(
            Duration::from_secs(2),
            &http,
            &jobs,
            3,
            QueueStats::default(),
            CacheStats::default(),
            HybridStats {
                builds: 2,
                fallbacks: 1,
                cores: 4,
                crown_elements: 9,
                core_elements: 6,
            },
            Some(StoreStats {
                write_errors: 7,
                ..StoreStats::default()
            }),
        )
        .render();
        // The degraded-store signals the issue calls out must be visible.
        assert!(doc.contains("\"write_errors\":7"));
        assert!(doc.contains("\"parametric_evictions\":0"));
        assert!(doc.contains("\"build_seconds\":1.5"));
        assert!(doc.contains("\"pending\":3"));
        // The hybrid-backend reduction counters must be visible too.
        assert!(doc.contains("\"fallbacks\":1"));
        assert!(doc.contains("\"crown_elements\":9"));
        assert!(doc.contains("\"core_elements\":6"));

        // A storeless server renders `null`, not a zeroed object.
        let doc = render(
            Duration::ZERO,
            &http,
            &jobs,
            0,
            QueueStats::default(),
            CacheStats::default(),
            HybridStats::default(),
            None,
        )
        .render();
        assert!(doc.contains("\"store\":null"));
    }
}
