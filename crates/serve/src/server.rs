//! The TCP server: a bounded accept/worker layer over the [`Router`].
//!
//! One *accept* thread pushes connections into a bounded queue; a small pool
//! of *HTTP threads* pops them, reads one request each (incrementally, under
//! [`HttpLimits`]), routes it, writes the response and closes.  The analysis
//! itself never runs on an HTTP thread — the router only enqueues jobs on the
//! service's own worker pool — so slow aggregations never starve the wire.
//!
//! Backpressure is layered and always explicit:
//!
//! 1. connection queue full → immediate `503` at accept time;
//! 2. job registry full → `429` from the router;
//! 3. socket timeouts ([`HttpLimits::read_timeout`]) → the connection is
//!    dropped and counted, never parked forever.
//!
//! Graceful shutdown (`POST /shutdown`, or [`Server::shutdown`]): the accept
//! loop closes, already-accepted connections are still served, then
//! [`Registry::drain`](crate::registry::Registry::drain) blocks until every
//! accepted job has delivered — with a store configured this is what
//! guarantees in-flight work is persisted for the next process — and
//! [`Server::join`] returns.

use crate::http::{self, HttpLimits};
use crate::json::Json;
use crate::metrics::bump;
use crate::router::Router;
use dft_core::service::{AnalysisService, ServiceOptions};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Number of HTTP threads (connection readers/writers — *not* analysis
    /// workers; those are [`ServiceOptions::workers`]).
    pub http_threads: usize,
    /// Accepted connections waiting for an HTTP thread beyond this are
    /// refused with `503`.
    pub queue_depth: usize,
    /// In-flight jobs beyond this are refused with `429`.
    pub max_jobs: usize,
    /// Finished reports retained for `GET /result` (oldest evicted first).
    pub max_done: usize,
    /// Byte/time limits on each connection.
    pub limits: HttpLimits,
    /// Options of the backing [`AnalysisService`] (worker count, cache
    /// capacity, shared store directory).
    pub service: ServiceOptions,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_owned(),
            http_threads: 4,
            queue_depth: 64,
            max_jobs: 256,
            max_done: 1024,
            limits: HttpLimits::default(),
            service: ServiceOptions::default(),
        }
    }
}

/// State shared by the accept thread and the HTTP threads.
#[derive(Debug)]
struct Shared {
    router: Router,
    limits: HttpLimits,
    queue_depth: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flags shutdown (idempotently), wakes the HTTP threads and unblocks
    /// the accept loop with a self-connection.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.available.notify_all();
        // The accept thread sits in a blocking accept(); a throwaway
        // connection is the dependency-free way to wake it.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; see the [module docs](self).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: thread::JoinHandle<()>,
    http_threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and the HTTP threads, and returns.
    /// The analysis pool spawns lazily on the first submission, as always.
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn start(options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let service = AnalysisService::new(options.service.clone());
        let shared = Arc::new(Shared {
            router: Router::new(service, options.max_jobs, options.max_done),
            limits: options.limits.clone(),
            queue_depth: options.queue_depth.max(1),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dftmc-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let http_threads = (0..options.http_threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dftmc-serve-http-{i}"))
                    .spawn(move || http_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(Server {
            shared,
            addr,
            accept,
            http_threads,
        })
    }

    /// The bound address (the OS-chosen port when the options said port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router (for in-process inspection in tests and the loadgen).
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// Begins a graceful shutdown, exactly like `POST /shutdown`.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has shut down (via `POST /shutdown` or
    /// [`shutdown`](Self::shutdown)), drains the job registry — every
    /// accepted job completes, and persists when a store is configured —
    /// and returns how many in-flight jobs the drain waited for.
    pub fn join(self) -> usize {
        let _ = self.accept.join();
        for t in self.http_threads {
            let _ = t.join();
        }
        let drained = self.shared.router.registry().drain();
        // Dropping `shared` here drops the router and with it the service:
        // its own drop-drain joins the analysis workers deterministically.
        drained
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a raced late client); the
                    // listener closes when this loop returns.
                    return;
                }
                bump(&shared.router.http_counters().connections);
                let mut queue = shared.queue.lock().expect("connection queue lock");
                if queue.len() >= shared.queue_depth {
                    drop(queue);
                    bump(&shared.router.http_counters().rejected_connections);
                    refuse(stream, shared);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshakes) must
                // not kill the listener.
            }
        }
    }
}

/// Writes an immediate `503` — the bounded-queue overflow path.  Best-effort:
/// the client may already be gone.
fn refuse(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.limits.read_timeout));
    let body = Json::obj([("error", "server is at capacity; retry later".into())]).render();
    let _ = stream.write_all(&http::response(503, &body));
}

fn http_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("connection queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                // Keep serving queued connections through a drain; exit only
                // once the queue is empty *and* shutdown is flagged.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("connection queue lock");
            }
        };
        let Some(stream) = stream else { return };
        if serve_connection(shared, stream) {
            shared.begin_shutdown();
        }
    }
}

/// Serves one connection (one request, one response, close).  Returns `true`
/// when the routed request asked for shutdown.
fn serve_connection(shared: &Shared, mut stream: TcpStream) -> bool {
    let limits = &shared.limits;
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.read_timeout));

    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let (response, shutdown) = loop {
        match http::parse_request(&buffer, limits) {
            Ok(Some(request)) => {
                let reply = shared.router.handle(&request);
                break (http::response(reply.status, &reply.body), reply.shutdown);
            }
            Err(e) => {
                // The request never reached the router; count it here.
                bump(&shared.router.http_counters().bad_requests);
                let body = Json::obj([("error", Json::Str(e.to_string()))]).render();
                break (http::response(e.status(), &body), false);
            }
            Ok(None) => match stream.read(&mut chunk) {
                Ok(0) | Err(_) => {
                    // EOF or timeout before a complete request arrived.
                    bump(&shared.router.http_counters().dropped_connections);
                    return false;
                }
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            },
        }
    };
    if stream
        .write_all(&response)
        .and_then(|()| stream.flush())
        .is_err()
    {
        bump(&shared.router.http_counters().dropped_connections);
    }
    shutdown
}
