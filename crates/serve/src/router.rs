//! Request routing over the shared request layer.
//!
//! The HTTP surface does **no request parsing of its own**: every submission
//! body is deserialized by [`AnalysisRequest::from_json`] — the same code the
//! `dftmc` CLI and library callers use — and executed through
//! [`AnalysisService::submit_request`], so replies are bit-identical to the
//! equivalent library calls.  This module only maps transport concerns
//! (verbs, paths, status codes, the job registry) and renders reports back to
//! JSON.
//!
//! Like [`http`](crate::http), this module sits on the trust boundary — its
//! input is an attacker-controlled request body.  The request layer is held
//! to the decode bar on our behalf: typed [`RequestError`]s, no panics, with
//! explicit caps on every client-controlled dimension (measure count, curve
//! length, sweep size) *before* any expensive work is enqueued.
//!
//! # Endpoints
//!
//! **`POST /submit`** — body (see [`dft_core::request`] for the full schema):
//!
//! ```json
//! {
//!   "galileo": "toplevel \"Top\"; ...",
//!   "measures": [
//!     {"type": "unreliability", "time": 1.0},
//!     {"type": "curve", "times": [0.5, 1.0]},
//!     {"type": "unavailability"},
//!     {"type": "mttf"}
//!   ],
//!   "method": "compositional",
//!   "epsilon": 1e-9
//! }
//! ```
//!
//! `method` and `epsilon` are optional; the tree may arrive as `"galileo"`
//! text or as a `"tree"` object in the dftlib JSON interchange
//! ([`dft::json_format`]), and `"queries"` may carry query lines
//! (`"unreliability 1.0"`, …) instead of or alongside `"measures"`.  Replies
//! `202` with `{"id": n, "status": "pending"}`, or `429` when the registry
//! is full.
//!
//! **`POST /sweep`** — same body plus a sweep: a `"sweep"` object (either
//! `{"scales": [0.5, 1.0, 2.0]}`, `{"element": "P", "kind": "failure",
//! "values": [0.5, 1.0]}`, or `{"query": "sweep lambda(P) in 0.5..2.0 step
//! 0.1"}`) or a sweep query line.  The symbolic spec is resolved *inside*
//! the service ([`SweepSpec`](dft_core::SweepSpec)), so the HTTP layer never
//! builds a model.  Each endpoint insists on its own shape: a sweep posted
//! to `/submit` or a sweep-less body posted to `/sweep` is a `400`.
//!
//! **`GET /status/{id}`** — `{"id", "status": "pending" | "done" | "failed"}`.
//!
//! **`GET /result/{id}`** — `202` while pending, `404` for unknown ids,
//! `200` with the full report once done (see [`Router`] for the layout;
//! fingerprints render as 16-digit hex strings, durations as seconds).
//!
//! **`GET /metrics`** — see [`crate::metrics`].
//!
//! **`POST /shutdown`** — begins a graceful drain: the reply reports how many
//! jobs are still in flight, the server stops accepting connections, every
//! accepted job completes (and, with a store, persists) before exit.

use crate::http::Request;
use crate::json::{self, Json};
use crate::metrics::{self, bump, json_count, HttpCounters};
use crate::registry::{Lookup, Registry};
use dft_core::service::{AnalysisService, RequestHandle, RequestOutcome};
use dft_core::{AnalysisRequest, JobReport, MeasureResult, RequestError, SweepReport};
use std::time::Instant;

// The submission caps live with the shared request layer; re-exported here
// because they are part of the HTTP API's documented contract.
pub use dft_core::request::{MAX_CURVE_POINTS, MAX_MEASURES, MAX_SWEEP_VALUES};

/// A routed response, ready for [`http::response`](crate::http::response).
#[derive(Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// `true` for `POST /shutdown`: the server should drain and exit after
    /// writing this reply.
    pub shutdown: bool,
}

fn reply(status: u16, body: &Json) -> Reply {
    Reply {
        status,
        body: body.render(),
        shutdown: false,
    }
}

fn error_reply(status: u16, message: &str) -> Reply {
    reply(status, &Json::obj([("error", message.into())]))
}

/// A client-visible failure: the status code and the `error` message.
struct ApiError {
    status: u16,
    message: String,
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 400,
        message: message.into(),
    }
}

type ApiResult<T> = std::result::Result<T, ApiError>;

/// The application layer: owns the [`AnalysisService`], the job
/// [`Registry`] and the HTTP counters, and maps parsed requests to replies.
/// Everything here is `&self` — the server shares one router across its
/// connection threads.
#[derive(Debug)]
pub struct Router {
    service: AnalysisService,
    registry: Registry,
    http: HttpCounters,
    started: Instant,
}

impl Router {
    /// A router over `service` admitting at most `max_jobs` in-flight jobs
    /// and retaining at most `max_done` finished reports.
    pub fn new(service: AnalysisService, max_jobs: usize, max_done: usize) -> Router {
        Router {
            service,
            registry: Registry::new(max_jobs, max_done),
            http: HttpCounters::default(),
            started: Instant::now(),
        }
    }

    /// The HTTP-layer counters (the accept loop bumps the connection-level
    /// ones; the router bumps the request-level ones).
    pub fn http_counters(&self) -> &HttpCounters {
        &self.http
    }

    /// The job registry (exposed for the drain on shutdown).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Routes one parsed request to a reply, updating the request counters.
    pub fn handle(&self, request: &Request) -> Reply {
        bump(&self.http.requests);
        let reply = self.route(request);
        if reply.status == 429 {
            bump(&self.http.throttled);
        } else if reply.status >= 400 {
            bump(&self.http.bad_requests);
        }
        reply
    }

    fn route(&self, request: &Request) -> Reply {
        let target = request.target.as_str();
        match (request.method.as_str(), target) {
            ("POST", "/submit") => self.submit(request, false),
            ("POST", "/sweep") => self.submit(request, true),
            ("GET", "/metrics") => reply(200, &self.metrics_document()),
            ("GET", "/healthz") => reply(200, &Json::obj([("ok", true.into())])),
            ("POST", "/shutdown") => Reply {
                status: 200,
                body: Json::obj([
                    ("draining", Json::from(self.registry.pending())),
                    ("status", "draining".into()),
                ])
                .render(),
                shutdown: true,
            },
            ("GET", _) if target.starts_with("/status/") => {
                self.lookup(target.trim_start_matches("/status/"), false)
            }
            ("GET", _) if target.starts_with("/result/") => {
                self.lookup(target.trim_start_matches("/result/"), true)
            }
            // Known paths with the wrong verb are 405, unknown paths 404.
            (_, "/submit" | "/sweep" | "/shutdown" | "/metrics" | "/healthz") => {
                error_reply(405, "method not allowed on this endpoint")
            }
            (_, _) if target.starts_with("/status/") || target.starts_with("/result/") => {
                error_reply(405, "method not allowed on this endpoint")
            }
            _ => error_reply(404, "no such endpoint"),
        }
    }

    fn submit(&self, request: &Request, sweep: bool) -> Reply {
        match self.try_submit(request, sweep) {
            Ok(id) => reply(
                202,
                &Json::obj([("id", json_count(id)), ("status", "pending".into())]),
            ),
            Err(e) => error_reply(e.status, &e.message),
        }
    }

    fn try_submit(&self, request: &Request, sweep: bool) -> ApiResult<u64> {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| bad("request body is not valid UTF-8"))?;
        let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON body: {e}")))?;
        let parsed = AnalysisRequest::from_json(&doc).map_err(request_error)?;
        // Each endpoint insists on its own shape, so a client that meant the
        // other one gets a typed 400 instead of a silently ignored sweep.
        if sweep && parsed.sweep.is_none() {
            return Err(bad(
                "missing object field 'sweep' ({\"scales\": …} or {\"element\": …})",
            ));
        }
        if !sweep && parsed.sweep.is_some() {
            return Err(bad("this request carries a sweep; POST it to /sweep"));
        }
        let throttled = || ApiError {
            status: 429,
            message: "too many in-flight jobs; retry after fetching results".to_owned(),
        };
        let id = match self.service.submit_request(parsed) {
            RequestHandle::Sweep(handle) => self.registry.add_sweep(handle),
            RequestHandle::Job(handle) => self.registry.add_job(handle),
        };
        id.ok_or_else(throttled)
    }

    fn lookup(&self, raw_id: &str, want_result: bool) -> Reply {
        let Ok(id) = raw_id.parse::<u64>() else {
            return error_reply(400, "job ids are decimal integers");
        };
        let status_doc =
            |status: &str| Json::obj([("id", json_count(id)), ("status", status.into())]);
        match self.registry.lookup(id) {
            Lookup::Unknown => error_reply(404, "unknown job id (never issued, or evicted)"),
            Lookup::Failed if want_result => {
                error_reply(500, "the job failed: its worker panicked before reporting")
            }
            Lookup::Failed => reply(200, &status_doc("failed")),
            Lookup::Pending if want_result => reply(202, &status_doc("pending")),
            Lookup::Pending => reply(200, &status_doc("pending")),
            Lookup::Job(report) if want_result => reply(200, &render_job(id, &report)),
            Lookup::Sweep(report) if want_result => reply(200, &render_sweep(id, &report)),
            Lookup::Job(_) | Lookup::Sweep(_) => reply(200, &status_doc("done")),
        }
    }

    fn metrics_document(&self) -> Json {
        metrics::render(
            self.started.elapsed(),
            &self.http,
            self.registry.counters(),
            self.registry.pending(),
            self.service.queue_stats(),
            self.service.cache_stats(),
            self.service.hybrid_stats(),
            self.service.store_stats(),
        )
    }
}

/// Every [`RequestError`] is a client error: the request was malformed or
/// oversized, so it maps to a 400 with the typed message as the body.
fn request_error(e: RequestError) -> ApiError {
    bad(e.to_string())
}

fn render_results(
    results: &std::result::Result<Vec<MeasureResult>, dft_core::Error>,
) -> (String, Json) {
    match results {
        Ok(results) => (
            "results".to_owned(),
            Json::Arr(results.iter().map(render_result).collect()),
        ),
        Err(e) => ("error".to_owned(), Json::Str(e.to_string())),
    }
}

fn render_result(result: &MeasureResult) -> Json {
    Json::obj([(
        "points",
        Json::Arr(result.points().iter().map(render_point).collect()),
    )])
}

fn render_point(point: &dft_core::MeasurePoint) -> Json {
    let (lower, upper) = point.bounds();
    Json::obj([
        ("time", point.time().map_or(Json::Null, Json::Num)),
        ("value", point.value().into()),
        ("lower", lower.into()),
        ("upper", upper.into()),
        ("nondeterministic", point.is_nondeterministic().into()),
    ])
}

/// The report fields of a finished job, in the order `GET /result/{id}`
/// renders them.  Public because the `dftmc` CLI builds its result document
/// from the same fields — one renderer, so both surfaces stay bit-identical.
pub fn job_fields(report: &JobReport) -> Vec<(String, Json)> {
    let (results_key, results) = render_results(&report.results);
    vec![
        ("fingerprint".to_owned(), report.fingerprint.into()),
        ("cache_hit".to_owned(), report.cache_hit.into()),
        (
            "aggregation_runs".to_owned(),
            report.aggregation_runs.into(),
        ),
        ("build_seconds".to_owned(), Json::secs(report.build)),
        ("query_seconds".to_owned(), Json::secs(report.query)),
        (results_key, results),
    ]
}

/// The report fields of a finished sweep, in the order `GET /result/{id}`
/// renders them; see [`job_fields`].
pub fn sweep_fields(report: &SweepReport) -> Vec<(String, Json)> {
    let stats = &report.stats;
    let points = report
        .points
        .iter()
        .map(|point| {
            let (results_key, results) = render_results(&point.results);
            Json::Obj(vec![
                (
                    "valuation_fingerprint".to_owned(),
                    point.valuation_fingerprint.into(),
                ),
                ("cache_hit".to_owned(), point.cache_hit.into()),
                (
                    "instantiate_seconds".to_owned(),
                    Json::secs(point.instantiate),
                ),
                ("query_seconds".to_owned(), Json::secs(point.query)),
                (results_key, results),
            ])
        })
        .collect();
    vec![
        (
            "stats".to_owned(),
            Json::obj([
                ("valuations", stats.valuations.into()),
                ("cache_hits", stats.cache_hits.into()),
                ("cache_misses", stats.cache_misses.into()),
                ("parametric_cache_hit", stats.parametric_cache_hit.into()),
                ("aggregation_runs", stats.aggregation_runs.into()),
                ("build_seconds", Json::secs(stats.build_time)),
                ("instantiate_seconds", Json::secs(stats.instantiate_time)),
                ("query_seconds", Json::secs(stats.query_time)),
                ("wall_seconds", Json::secs(stats.wall_time)),
            ]),
        ),
        ("points".to_owned(), Json::Arr(points)),
    ]
}

/// The report fields of either request outcome; dispatches to
/// [`job_fields`]/[`sweep_fields`].
pub fn outcome_fields(outcome: &RequestOutcome) -> Vec<(String, Json)> {
    match outcome {
        RequestOutcome::Job(report) => job_fields(report),
        RequestOutcome::Sweep(report) => sweep_fields(report),
    }
}

fn render_job(id: u64, report: &JobReport) -> Json {
    let mut entries = vec![
        ("id".to_owned(), json_count(id)),
        ("status".to_owned(), "done".into()),
    ];
    entries.extend(job_fields(report));
    Json::Obj(entries)
}

fn render_sweep(id: u64, report: &SweepReport) -> Json {
    let mut entries = vec![
        ("id".to_owned(), json_count(id)),
        ("status".to_owned(), "done".into()),
    ];
    entries.extend(sweep_fields(report));
    Json::Obj(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::service::ServiceOptions;

    fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
        match doc {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
        match field(doc, key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn num_field(doc: &Json, key: &str) -> Option<f64> {
        match field(doc, key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    fn router() -> Router {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        Router::new(service, 8, 8)
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            target: target.to_owned(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            body: Vec::new(),
        }
    }

    const TREE: &str = "toplevel \"Top\";\n\"Top\" and \"A\" \"B\";\n\"A\" lambda=1.0 dorm=0.0;\n\"B\" lambda=2.0 dorm=0.0;\n";

    fn submit_body() -> String {
        let doc = Json::obj([
            ("galileo", TREE.into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
        ]);
        doc.render()
    }

    fn wait_done(router: &Router, id: u64) -> Json {
        loop {
            let reply = router.handle(&get(&format!("/result/{id}")));
            match reply.status {
                202 => std::thread::yield_now(),
                200 => return json::parse(&reply.body).unwrap(),
                other => panic!("unexpected status {other}: {}", reply.body),
            }
        }
    }

    #[test]
    fn submit_status_result_roundtrip() {
        let router = router();
        let reply = router.handle(&post("/submit", &submit_body()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let doc = json::parse(&reply.body).unwrap();
        assert_eq!(num_field(&doc, "id"), Some(1.0));

        let done = wait_done(&router, 1);
        assert_eq!(str_field(&done, "status"), Some("done"));
        let status = router.handle(&get("/status/1"));
        assert_eq!(status.status, 200);
        // The result survives repeated fetches.
        assert_eq!(router.handle(&get("/result/1")).status, 200);
    }

    #[test]
    fn unknown_routes_and_verbs_are_typed() {
        let router = router();
        assert_eq!(router.handle(&get("/nope")).status, 404);
        assert_eq!(router.handle(&get("/submit")).status, 405);
        assert_eq!(router.handle(&post("/metrics", "")).status, 405);
        assert_eq!(router.handle(&get("/status/xyz")).status, 400);
        assert_eq!(router.handle(&get("/status/99")).status, 404);
        assert_eq!(router.handle(&get("/result/99")).status, 404);
    }

    #[test]
    fn bad_bodies_are_400_with_an_error_message() {
        let router = router();
        for body in [
            "",
            "{",
            "{}",
            "{\"galileo\": 3}",
            "{\"galileo\": \"nonsense\", \"measures\": []}",
            &Json::obj([("galileo", TREE.into())]).render(),
            &Json::obj([
                ("galileo", TREE.into()),
                (
                    "measures",
                    Json::Arr(vec![Json::obj([("type", "nope".into())])]),
                ),
            ])
            .render(),
            &Json::obj([
                ("galileo", TREE.into()),
                ("measures", Json::Arr(Vec::new())),
                ("epsilon", (-1.0).into()),
            ])
            .render(),
        ] {
            let reply = router.handle(&post("/submit", body));
            assert_eq!(reply.status, 400, "{body} -> {}", reply.body);
            assert!(reply.body.contains("error"), "{}", reply.body);
        }
    }

    #[test]
    fn full_registry_throttles_with_429() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        let router = Router::new(service, 0, 8);
        let reply = router.handle(&post("/submit", &submit_body()));
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert_eq!(
            router
                .http_counters()
                .throttled
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn sweep_specs_are_parsed_and_resolved() {
        let router = router();
        let doc = Json::obj([
            ("galileo", TREE.into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
            (
                "sweep",
                Json::obj([(
                    "scales",
                    Json::Arr(vec![0.5.into(), 1.0.into(), 2.0.into()]),
                )]),
            ),
        ]);
        let reply = router.handle(&post("/sweep", &doc.render()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let done = wait_done(&router, 1);
        let Some(Json::Arr(points)) = field(&done, "points") else {
            panic!("no points in {}", reply.body);
        };
        assert_eq!(points.len(), 3);

        // A sweep without a spec is a 400, not a panic.
        let doc = Json::obj([
            ("galileo", TREE.into()),
            ("measures", Json::Arr(Vec::new())),
        ]);
        assert_eq!(router.handle(&post("/sweep", &doc.render())).status, 400);
    }

    #[test]
    fn endpoints_insist_on_their_own_shape() {
        let router = router();
        // A sweep posted to /submit is rejected, not silently ignored.
        let doc = Json::obj([
            ("galileo", TREE.into()),
            ("measures", Json::Arr(Vec::new())),
            (
                "sweep",
                Json::obj([("scales", Json::Arr(vec![1.0.into()]))]),
            ),
        ]);
        let reply = router.handle(&post("/submit", &doc.render()));
        assert_eq!(reply.status, 400, "{}", reply.body);
        assert!(reply.body.contains("/sweep"), "{}", reply.body);
    }

    #[test]
    fn query_lines_and_sweep_queries_are_accepted() {
        let router = router();
        // The CLI grammar works over HTTP too: measures and the sweep both
        // arrive as query lines.
        let doc = Json::obj([
            ("galileo", TREE.into()),
            (
                "queries",
                Json::Arr(vec![
                    "unreliability 1.0".into(),
                    "sweep scale in 0.5..2.0 step 0.5".into(),
                ]),
            ),
        ]);
        let reply = router.handle(&post("/sweep", &doc.render()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let done = wait_done(&router, 1);
        let Some(Json::Arr(points)) = field(&done, "points") else {
            panic!("no points in {}", reply.body);
        };
        assert_eq!(points.len(), 4);
    }

    #[test]
    fn metrics_and_health_answer() {
        let router = router();
        let health = router.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let metrics = router.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body).unwrap();
        assert!(field(&doc, "queue").is_some());
        assert!(field(&doc, "cache").is_some());

        let shutdown = router.handle(&post("/shutdown", ""));
        assert_eq!(shutdown.status, 200);
        assert!(shutdown.shutdown);
    }

    #[test]
    fn hybrid_jobs_surface_reduction_counters_in_metrics() {
        // A static-heavy tree: one spare pair carries the dynamism, a 3-wide
        // AND rides above it as a static module the hybrid backend collapses.
        let tree = "toplevel \"Top\";\n\
                    \"Top\" or \"Dyn\" \"Static\";\n\
                    \"Dyn\" wsp \"P\" \"S\";\n\
                    \"Static\" and \"X\" \"Y\" \"Z\";\n\
                    \"P\" lambda=1.0 dorm=0.0;\n\
                    \"S\" lambda=1.0 dorm=0.0;\n\
                    \"X\" lambda=0.5 dorm=0.0;\n\
                    \"Y\" lambda=0.5 dorm=0.0;\n\
                    \"Z\" lambda=0.5 dorm=0.0;\n";
        let router = router();
        let doc = Json::obj([
            ("galileo", tree.into()),
            ("method", "hybrid".into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
        ]);
        let reply = router.handle(&post("/submit", &doc.render()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let done = wait_done(&router, 1);
        assert_eq!(str_field(&done, "status"), Some("done"));

        let metrics = router.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body).unwrap();
        let hybrid = field(&doc, "hybrid").expect("metrics carry a hybrid section");
        assert_eq!(num_field(hybrid, "builds"), Some(1.0));
        assert_eq!(num_field(hybrid, "fallbacks"), Some(0.0));
        // One core (the spare pair) plus a collapsed static crown.
        assert_eq!(num_field(hybrid, "cores"), Some(1.0));
        assert!(num_field(hybrid, "crown_elements").unwrap() > 0.0);
        assert!(num_field(hybrid, "core_elements").unwrap() > 0.0);
    }
}
