//! Request routing and the API's JSON schemas.
//!
//! Like [`http`](crate::http), this module sits on the trust boundary — its
//! input is an attacker-controlled request body — so it is held to the decode
//! bar: typed errors, no panics, no indexing, with explicit caps on every
//! client-controlled dimension (measure count, curve length, sweep size)
//! *before* any expensive work is enqueued.
//!
//! # Endpoints
//!
//! **`POST /submit`** — body:
//!
//! ```json
//! {
//!   "galileo": "toplevel \"Top\"; ...",
//!   "measures": [
//!     {"type": "unreliability", "time": 1.0},
//!     {"type": "curve", "times": [0.5, 1.0]},
//!     {"type": "unavailability"},
//!     {"type": "mttf"}
//!   ],
//!   "method": "compositional",
//!   "epsilon": 1e-9
//! }
//! ```
//!
//! `method` and `epsilon` are optional.  Replies `202` with
//! `{"id": n, "status": "pending"}`, or `429` when the registry is full.
//!
//! **`POST /sweep`** — same body plus a `"sweep"` object, either
//! `{"scales": [0.5, 1.0, 2.0]}` (every failure rate scaled) or
//! `{"element": "P", "kind": "failure", "values": [0.5, 1.0]}` (one named
//! rate swept).  The symbolic spec is resolved *inside* the service
//! ([`SweepSpec`]), so the HTTP layer never builds a model.
//!
//! **`GET /status/{id}`** — `{"id", "status": "pending" | "done" | "failed"}`.
//!
//! **`GET /result/{id}`** — `202` while pending, `404` for unknown ids,
//! `200` with the full report once done (see [`Router`] for the layout;
//! fingerprints render as 16-digit hex strings, durations as seconds).
//!
//! **`GET /metrics`** — see [`crate::metrics`].
//!
//! **`POST /shutdown`** — begins a graceful drain: the reply reports how many
//! jobs are still in flight, the server stops accepting connections, every
//! accepted job completes (and, with a store, persists) before exit.

use crate::http::Request;
use crate::json::{self, Json};
use crate::metrics::{self, bump, json_count, HttpCounters};
use crate::registry::{Lookup, Registry};
use dft_core::service::{AnalysisJob, AnalysisService, SweepSpec};
use dft_core::{
    AnalysisOptions, JobReport, Measure, MeasureResult, Method, ParamKind, SweepReport,
};
use std::time::Instant;

/// Most measures a single submission may request.
pub const MAX_MEASURES: usize = 64;
/// Most time points one curve measure may request.
pub const MAX_CURVE_POINTS: usize = 4096;
/// Most values one sweep may request.
pub const MAX_SWEEP_VALUES: usize = 4096;

/// A routed response, ready for [`http::response`](crate::http::response).
#[derive(Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// `true` for `POST /shutdown`: the server should drain and exit after
    /// writing this reply.
    pub shutdown: bool,
}

fn reply(status: u16, body: &Json) -> Reply {
    Reply {
        status,
        body: body.render(),
        shutdown: false,
    }
}

fn error_reply(status: u16, message: &str) -> Reply {
    reply(status, &Json::obj([("error", message.into())]))
}

/// A client-visible failure: the status code and the `error` message.
struct ApiError {
    status: u16,
    message: String,
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 400,
        message: message.into(),
    }
}

type ApiResult<T> = std::result::Result<T, ApiError>;

/// The application layer: owns the [`AnalysisService`], the job
/// [`Registry`] and the HTTP counters, and maps parsed requests to replies.
/// Everything here is `&self` — the server shares one router across its
/// connection threads.
#[derive(Debug)]
pub struct Router {
    service: AnalysisService,
    registry: Registry,
    http: HttpCounters,
    started: Instant,
}

impl Router {
    /// A router over `service` admitting at most `max_jobs` in-flight jobs
    /// and retaining at most `max_done` finished reports.
    pub fn new(service: AnalysisService, max_jobs: usize, max_done: usize) -> Router {
        Router {
            service,
            registry: Registry::new(max_jobs, max_done),
            http: HttpCounters::default(),
            started: Instant::now(),
        }
    }

    /// The HTTP-layer counters (the accept loop bumps the connection-level
    /// ones; the router bumps the request-level ones).
    pub fn http_counters(&self) -> &HttpCounters {
        &self.http
    }

    /// The job registry (exposed for the drain on shutdown).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Routes one parsed request to a reply, updating the request counters.
    pub fn handle(&self, request: &Request) -> Reply {
        bump(&self.http.requests);
        let reply = self.route(request);
        if reply.status == 429 {
            bump(&self.http.throttled);
        } else if reply.status >= 400 {
            bump(&self.http.bad_requests);
        }
        reply
    }

    fn route(&self, request: &Request) -> Reply {
        let target = request.target.as_str();
        match (request.method.as_str(), target) {
            ("POST", "/submit") => self.submit(request, false),
            ("POST", "/sweep") => self.submit(request, true),
            ("GET", "/metrics") => reply(200, &self.metrics_document()),
            ("GET", "/healthz") => reply(200, &Json::obj([("ok", true.into())])),
            ("POST", "/shutdown") => Reply {
                status: 200,
                body: Json::obj([
                    ("draining", Json::from(self.registry.pending())),
                    ("status", "draining".into()),
                ])
                .render(),
                shutdown: true,
            },
            ("GET", _) if target.starts_with("/status/") => {
                self.lookup(target.trim_start_matches("/status/"), false)
            }
            ("GET", _) if target.starts_with("/result/") => {
                self.lookup(target.trim_start_matches("/result/"), true)
            }
            // Known paths with the wrong verb are 405, unknown paths 404.
            (_, "/submit" | "/sweep" | "/shutdown" | "/metrics" | "/healthz") => {
                error_reply(405, "method not allowed on this endpoint")
            }
            (_, _) if target.starts_with("/status/") || target.starts_with("/result/") => {
                error_reply(405, "method not allowed on this endpoint")
            }
            _ => error_reply(404, "no such endpoint"),
        }
    }

    fn submit(&self, request: &Request, sweep: bool) -> Reply {
        match self.try_submit(request, sweep) {
            Ok(id) => reply(
                202,
                &Json::obj([("id", json_count(id)), ("status", "pending".into())]),
            ),
            Err(e) => error_reply(e.status, &e.message),
        }
    }

    fn try_submit(&self, request: &Request, sweep: bool) -> ApiResult<u64> {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| bad("request body is not valid UTF-8"))?;
        let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON body: {e}")))?;
        let galileo = str_field(&doc, "galileo")
            .ok_or_else(|| bad("missing string field 'galileo' (the tree in Galileo syntax)"))?;
        let dft =
            dft::galileo::parse(galileo).map_err(|e| bad(format!("invalid Galileo tree: {e}")))?;
        let options = parse_options(&doc)?;
        let measures = parse_measures(&doc)?;
        let throttled = || ApiError {
            status: 429,
            message: "too many in-flight jobs; retry after fetching results".to_owned(),
        };
        let id = if sweep {
            let spec = parse_sweep_spec(&doc)?;
            let handle = self.service.submit_sweep_spec(dft, options, measures, spec);
            self.registry.add_sweep(handle)
        } else {
            let handle = self
                .service
                .submit(AnalysisJob::new(dft, options, measures));
            self.registry.add_job(handle)
        };
        id.ok_or_else(throttled)
    }

    fn lookup(&self, raw_id: &str, want_result: bool) -> Reply {
        let Ok(id) = raw_id.parse::<u64>() else {
            return error_reply(400, "job ids are decimal integers");
        };
        let status_doc =
            |status: &str| Json::obj([("id", json_count(id)), ("status", status.into())]);
        match self.registry.lookup(id) {
            Lookup::Unknown => error_reply(404, "unknown job id (never issued, or evicted)"),
            Lookup::Failed if want_result => {
                error_reply(500, "the job failed: its worker panicked before reporting")
            }
            Lookup::Failed => reply(200, &status_doc("failed")),
            Lookup::Pending if want_result => reply(202, &status_doc("pending")),
            Lookup::Pending => reply(200, &status_doc("pending")),
            Lookup::Job(report) if want_result => reply(200, &render_job(id, &report)),
            Lookup::Sweep(report) if want_result => reply(200, &render_sweep(id, &report)),
            Lookup::Job(_) | Lookup::Sweep(_) => reply(200, &status_doc("done")),
        }
    }

    fn metrics_document(&self) -> Json {
        metrics::render(
            self.started.elapsed(),
            &self.http,
            self.registry.counters(),
            self.registry.pending(),
            self.service.queue_stats(),
            self.service.cache_stats(),
            self.service.hybrid_stats(),
            self.service.store_stats(),
        )
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match field(doc, key) {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

fn num_field(doc: &Json, key: &str) -> Option<f64> {
    match field(doc, key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// A numeric array field, with a cap enforced before collection.
fn num_array(doc: &Json, key: &str, cap: usize) -> ApiResult<Option<Vec<f64>>> {
    let Some(value) = field(doc, key) else {
        return Ok(None);
    };
    let Json::Arr(items) = value else {
        return Err(bad(format!("field '{key}' must be an array of numbers")));
    };
    if items.len() > cap {
        return Err(bad(format!(
            "field '{key}' has {} entries; the limit is {cap}",
            items.len()
        )));
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Json::Num(n) => out.push(*n),
            _ => return Err(bad(format!("field '{key}' must contain only numbers"))),
        }
    }
    Ok(Some(out))
}

fn parse_options(doc: &Json) -> ApiResult<AnalysisOptions> {
    let mut options = AnalysisOptions::default();
    match field(doc, "method") {
        None => {}
        Some(Json::Str(s)) if s == "compositional" => options.method = Method::Compositional,
        Some(Json::Str(s)) if s == "monolithic" => options.method = Method::Monolithic,
        Some(Json::Str(s)) if s == "hybrid" => options.method = Method::Hybrid,
        Some(_) => {
            return Err(bad(
                "field 'method' must be \"compositional\", \"monolithic\" or \"hybrid\"",
            ))
        }
    }
    match field(doc, "epsilon") {
        None => {}
        Some(Json::Num(e)) if e.is_finite() && *e > 0.0 => options.epsilon = *e,
        Some(_) => return Err(bad("field 'epsilon' must be a positive finite number")),
    }
    Ok(options)
}

fn parse_measures(doc: &Json) -> ApiResult<Vec<Measure>> {
    let Some(Json::Arr(items)) = field(doc, "measures") else {
        return Err(bad("missing array field 'measures'"));
    };
    if items.len() > MAX_MEASURES {
        return Err(bad(format!(
            "{} measures requested; the limit is {MAX_MEASURES}",
            items.len()
        )));
    }
    items.iter().map(parse_measure).collect()
}

fn parse_measure(doc: &Json) -> ApiResult<Measure> {
    let kind =
        str_field(doc, "type").ok_or_else(|| bad("every measure needs a string field 'type'"))?;
    match kind {
        "unreliability" => {
            let time = num_field(doc, "time")
                .ok_or_else(|| bad("measure 'unreliability' needs a numeric 'time'"))?;
            Ok(Measure::Unreliability(time))
        }
        "curve" => {
            let times = num_array(doc, "times", MAX_CURVE_POINTS)?
                .ok_or_else(|| bad("measure 'curve' needs a numeric array 'times'"))?;
            Ok(Measure::UnreliabilityCurve(times))
        }
        "unavailability" => Ok(Measure::Unavailability),
        "mttf" => Ok(Measure::Mttf),
        other => Err(bad(format!(
            "unknown measure type '{other}' (expected unreliability, curve, unavailability or mttf)"
        ))),
    }
}

fn parse_sweep_spec(doc: &Json) -> ApiResult<SweepSpec> {
    let spec = field(doc, "sweep")
        .ok_or_else(|| bad("missing object field 'sweep' ({\"scales\": …} or {\"element\": …})"))?;
    if let Some(scales) = num_array(spec, "scales", MAX_SWEEP_VALUES)? {
        return Ok(SweepSpec::FailureScales(scales));
    }
    if let Some(element) = str_field(spec, "element") {
        let kind = match str_field(spec, "kind") {
            None | Some("failure") => ParamKind::Failure,
            Some("repair") => ParamKind::Repair,
            Some(other) => {
                return Err(bad(format!(
                    "unknown sweep kind '{other}' (expected \"failure\" or \"repair\")"
                )))
            }
        };
        let values = num_array(spec, "values", MAX_SWEEP_VALUES)?
            .ok_or_else(|| bad("an element sweep needs a numeric array 'values'"))?;
        return Ok(SweepSpec::Element {
            element: element.to_owned(),
            kind,
            values,
        });
    }
    Err(bad(
        "field 'sweep' must carry either 'scales' or 'element' + 'values'",
    ))
}

fn render_results(
    results: &std::result::Result<Vec<MeasureResult>, dft_core::Error>,
) -> (String, Json) {
    match results {
        Ok(results) => (
            "results".to_owned(),
            Json::Arr(results.iter().map(render_result).collect()),
        ),
        Err(e) => ("error".to_owned(), Json::Str(e.to_string())),
    }
}

fn render_result(result: &MeasureResult) -> Json {
    Json::obj([(
        "points",
        Json::Arr(result.points().iter().map(render_point).collect()),
    )])
}

fn render_point(point: &dft_core::MeasurePoint) -> Json {
    let (lower, upper) = point.bounds();
    Json::obj([
        ("time", point.time().map_or(Json::Null, Json::Num)),
        ("value", point.value().into()),
        ("lower", lower.into()),
        ("upper", upper.into()),
        ("nondeterministic", point.is_nondeterministic().into()),
    ])
}

fn render_job(id: u64, report: &JobReport) -> Json {
    let (results_key, results) = render_results(&report.results);
    Json::Obj(vec![
        ("id".to_owned(), json_count(id)),
        ("status".to_owned(), "done".into()),
        ("fingerprint".to_owned(), report.fingerprint.into()),
        ("cache_hit".to_owned(), report.cache_hit.into()),
        (
            "aggregation_runs".to_owned(),
            report.aggregation_runs.into(),
        ),
        ("build_seconds".to_owned(), Json::secs(report.build)),
        ("query_seconds".to_owned(), Json::secs(report.query)),
        (results_key, results),
    ])
}

fn render_sweep(id: u64, report: &SweepReport) -> Json {
    let stats = &report.stats;
    let points = report
        .points
        .iter()
        .map(|point| {
            let (results_key, results) = render_results(&point.results);
            Json::Obj(vec![
                (
                    "valuation_fingerprint".to_owned(),
                    point.valuation_fingerprint.into(),
                ),
                ("cache_hit".to_owned(), point.cache_hit.into()),
                (
                    "instantiate_seconds".to_owned(),
                    Json::secs(point.instantiate),
                ),
                ("query_seconds".to_owned(), Json::secs(point.query)),
                (results_key, results),
            ])
        })
        .collect();
    Json::obj([
        ("id", json_count(id)),
        ("status", "done".into()),
        (
            "stats",
            Json::obj([
                ("valuations", stats.valuations.into()),
                ("cache_hits", stats.cache_hits.into()),
                ("cache_misses", stats.cache_misses.into()),
                ("parametric_cache_hit", stats.parametric_cache_hit.into()),
                ("aggregation_runs", stats.aggregation_runs.into()),
                ("build_seconds", Json::secs(stats.build_time)),
                ("instantiate_seconds", Json::secs(stats.instantiate_time)),
                ("query_seconds", Json::secs(stats.query_time)),
                ("wall_seconds", Json::secs(stats.wall_time)),
            ]),
        ),
        ("points", Json::Arr(points)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::service::ServiceOptions;

    fn router() -> Router {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        Router::new(service, 8, 8)
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            target: target.to_owned(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            body: Vec::new(),
        }
    }

    const TREE: &str = "toplevel \"Top\";\n\"Top\" and \"A\" \"B\";\n\"A\" lambda=1.0 dorm=0.0;\n\"B\" lambda=2.0 dorm=0.0;\n";

    fn submit_body() -> String {
        let doc = Json::obj([
            ("galileo", TREE.into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
        ]);
        doc.render()
    }

    fn wait_done(router: &Router, id: u64) -> Json {
        loop {
            let reply = router.handle(&get(&format!("/result/{id}")));
            match reply.status {
                202 => std::thread::yield_now(),
                200 => return json::parse(&reply.body).unwrap(),
                other => panic!("unexpected status {other}: {}", reply.body),
            }
        }
    }

    #[test]
    fn submit_status_result_roundtrip() {
        let router = router();
        let reply = router.handle(&post("/submit", &submit_body()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let doc = json::parse(&reply.body).unwrap();
        assert_eq!(num_field(&doc, "id"), Some(1.0));

        let done = wait_done(&router, 1);
        assert_eq!(str_field(&done, "status"), Some("done"));
        let status = router.handle(&get("/status/1"));
        assert_eq!(status.status, 200);
        // The result survives repeated fetches.
        assert_eq!(router.handle(&get("/result/1")).status, 200);
    }

    #[test]
    fn unknown_routes_and_verbs_are_typed() {
        let router = router();
        assert_eq!(router.handle(&get("/nope")).status, 404);
        assert_eq!(router.handle(&get("/submit")).status, 405);
        assert_eq!(router.handle(&post("/metrics", "")).status, 405);
        assert_eq!(router.handle(&get("/status/xyz")).status, 400);
        assert_eq!(router.handle(&get("/status/99")).status, 404);
        assert_eq!(router.handle(&get("/result/99")).status, 404);
    }

    #[test]
    fn bad_bodies_are_400_with_an_error_message() {
        let router = router();
        for body in [
            "",
            "{",
            "{}",
            "{\"galileo\": 3}",
            "{\"galileo\": \"nonsense\", \"measures\": []}",
            &Json::obj([("galileo", TREE.into())]).render(),
            &Json::obj([
                ("galileo", TREE.into()),
                (
                    "measures",
                    Json::Arr(vec![Json::obj([("type", "nope".into())])]),
                ),
            ])
            .render(),
            &Json::obj([
                ("galileo", TREE.into()),
                ("measures", Json::Arr(Vec::new())),
                ("epsilon", (-1.0).into()),
            ])
            .render(),
        ] {
            let reply = router.handle(&post("/submit", body));
            assert_eq!(reply.status, 400, "{body} -> {}", reply.body);
            assert!(reply.body.contains("error"), "{}", reply.body);
        }
    }

    #[test]
    fn full_registry_throttles_with_429() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        let router = Router::new(service, 0, 8);
        let reply = router.handle(&post("/submit", &submit_body()));
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert_eq!(
            router
                .http_counters()
                .throttled
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn sweep_specs_are_parsed_and_resolved() {
        let router = router();
        let doc = Json::obj([
            ("galileo", TREE.into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
            (
                "sweep",
                Json::obj([(
                    "scales",
                    Json::Arr(vec![0.5.into(), 1.0.into(), 2.0.into()]),
                )]),
            ),
        ]);
        let reply = router.handle(&post("/sweep", &doc.render()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let done = wait_done(&router, 1);
        let Some(Json::Arr(points)) = field(&done, "points") else {
            panic!("no points in {}", reply.body);
        };
        assert_eq!(points.len(), 3);

        // A sweep without a spec is a 400, not a panic.
        let doc = Json::obj([
            ("galileo", TREE.into()),
            ("measures", Json::Arr(Vec::new())),
        ]);
        assert_eq!(router.handle(&post("/sweep", &doc.render())).status, 400);
    }

    #[test]
    fn metrics_and_health_answer() {
        let router = router();
        let health = router.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let metrics = router.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body).unwrap();
        assert!(field(&doc, "queue").is_some());
        assert!(field(&doc, "cache").is_some());

        let shutdown = router.handle(&post("/shutdown", ""));
        assert_eq!(shutdown.status, 200);
        assert!(shutdown.shutdown);
    }

    #[test]
    fn hybrid_jobs_surface_reduction_counters_in_metrics() {
        // A static-heavy tree: one spare pair carries the dynamism, a 3-wide
        // AND rides above it as a static module the hybrid backend collapses.
        let tree = "toplevel \"Top\";\n\
                    \"Top\" or \"Dyn\" \"Static\";\n\
                    \"Dyn\" wsp \"P\" \"S\";\n\
                    \"Static\" and \"X\" \"Y\" \"Z\";\n\
                    \"P\" lambda=1.0 dorm=0.0;\n\
                    \"S\" lambda=1.0 dorm=0.0;\n\
                    \"X\" lambda=0.5 dorm=0.0;\n\
                    \"Y\" lambda=0.5 dorm=0.0;\n\
                    \"Z\" lambda=0.5 dorm=0.0;\n";
        let router = router();
        let doc = Json::obj([
            ("galileo", tree.into()),
            ("method", "hybrid".into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
        ]);
        let reply = router.handle(&post("/submit", &doc.render()));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let done = wait_done(&router, 1);
        assert_eq!(str_field(&done, "status"), Some("done"));

        let metrics = router.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body).unwrap();
        let hybrid = field(&doc, "hybrid").expect("metrics carry a hybrid section");
        assert_eq!(num_field(hybrid, "builds"), Some(1.0));
        assert_eq!(num_field(hybrid, "fallbacks"), Some(0.0));
        // One core (the spare pair) plus a collapsed static crown.
        assert_eq!(num_field(hybrid, "cores"), Some(1.0));
        assert!(num_field(hybrid, "crown_elements").unwrap() > 0.0);
        assert!(num_field(hybrid, "core_elements").unwrap() > 0.0);
    }
}
