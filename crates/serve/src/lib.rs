//! Fleet mode: a dependency-free HTTP/1.1 front end over the shared
//! analysis service.
//!
//! The compositional engine is a warm, persistent service — worker pool,
//! LRU session cache, cross-process [`ModelStore`](dft_core::ModelStore) —
//! but until this crate it could only be driven from Rust code in the same
//! process.  `dftmc-serve` puts it on the wire: a small HTTP/1.1 server
//! built on nothing but `std::net`, so N server processes pointing at one
//! store directory behave as one warm fleet (a model aggregated by any
//! process is a disk read for every other).
//!
//! # Endpoints
//!
//! | Endpoint | Body | Reply |
//! |---|---|---|
//! | `POST /submit` | Galileo tree + measures | `202 {"id", "status"}` |
//! | `POST /sweep` | tree + measures + sweep spec | `202 {"id", "status"}` |
//! | `GET /status/{id}` | — | `{"id", "status"}` |
//! | `GET /result/{id}` | — | the full report, once done |
//! | `GET /metrics` | — | queue/cache/store counters |
//! | `GET /healthz` | — | `{"ok": true}` |
//! | `POST /shutdown` | — | graceful drain, then exit |
//!
//! See [`router`] for the request/response JSON schemas.
//!
//! # Trust boundary
//!
//! Everything that parses network bytes lives in [`http`], [`json`] and
//! [`router`], which are held to the workspace's decode bar (xlint rules
//! `panic`/`index`/`cast`): total, typed-error, panic-free, and size-limited
//! ([`http::HttpLimits`]).  Backpressure is explicit — a bounded connection
//! queue (503 on overflow at accept time), a bounded in-flight job registry
//! (429 once full), and per-connection read/write timeouts — so a slow or
//! hostile client cannot wedge the analysis pool.

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod router;
pub mod server;
