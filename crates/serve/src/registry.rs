//! The id-keyed job registry: the bridge between stateless HTTP exchanges
//! and the service's in-flight handles.
//!
//! `POST /submit` returns immediately with an id; the handle lives here until
//! a later `GET /status/{id}` or `GET /result/{id}` harvests its report.
//! The registry is the server's backpressure valve: submissions beyond
//! [`Registry::new`]'s `max_pending` are refused (the router turns that into
//! `429`), so a flood of clients saturates the queue to a known depth instead
//! of growing it without bound.  Completed reports are retained up to
//! `max_done` entries (oldest evicted first) so results can be fetched more
//! than once but an unfetched backlog cannot leak memory.
//!
//! A worker panic must not take the HTTP thread with it: harvesting goes
//! through `catch_unwind`, and a job whose channel died becomes a `Failed`
//! entry (rendered as `500` by the router) instead of a propagated panic.

use crate::metrics::{add_time, bump, JobCounters};
use dft_core::service::{JobHandle, JobReport, SweepHandle, SweepReport};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One registry slot.
#[derive(Debug)]
enum Entry {
    PendingJob(JobHandle),
    PendingSweep(SweepHandle),
    DoneJob(Box<JobReport>),
    DoneSweep(Box<SweepReport>),
    /// The worker executing the job panicked; the report never arrived.
    Failed,
}

/// What a lookup found; reports are cloned out so the registry keeps serving
/// repeated `GET /result` calls until the entry is evicted.
#[derive(Debug)]
pub enum Lookup {
    /// The id was never issued (or its entry has been evicted).
    Unknown,
    /// Submitted, not finished yet.
    Pending,
    /// A finished single job.
    Job(Box<JobReport>),
    /// A finished sweep.
    Sweep(Box<SweepReport>),
    /// The job died with a worker panic.
    Failed,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    entries: HashMap<u64, Entry>,
    /// Completed ids in completion order, for `max_done` eviction.
    done_order: VecDeque<u64>,
    pending: usize,
}

/// The id-keyed job registry; see the [module docs](self).
#[derive(Debug)]
pub struct Registry {
    max_pending: usize,
    max_done: usize,
    counters: JobCounters,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry admitting at most `max_pending` unfinished jobs and
    /// retaining at most `max_done` completed reports.
    pub fn new(max_pending: usize, max_done: usize) -> Registry {
        Registry {
            max_pending,
            max_done,
            counters: JobCounters::default(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The job-layer counters (for `/metrics`).
    pub fn counters(&self) -> &JobCounters {
        &self.counters
    }

    /// Number of submitted-but-unharvested jobs.
    pub fn pending(&self) -> usize {
        self.inner.lock().expect("registry lock").pending
    }

    /// Registers a submitted job; `None` means the registry is full (429).
    pub fn add_job(&self, handle: JobHandle) -> Option<u64> {
        self.add(Entry::PendingJob(handle))
    }

    /// Registers a submitted sweep; `None` means the registry is full (429).
    pub fn add_sweep(&self, handle: SweepHandle) -> Option<u64> {
        self.add(Entry::PendingSweep(handle))
    }

    fn add(&self, entry: Entry) -> Option<u64> {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.pending >= self.max_pending {
            return None;
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.entries.insert(id, entry);
        inner.pending += 1;
        drop(inner);
        bump(&self.counters.submitted);
        Some(id)
    }

    /// Looks `id` up, harvesting its report first if the job has finished in
    /// the meantime.
    pub fn lookup(&self, id: u64) -> Lookup {
        let mut inner = self.inner.lock().expect("registry lock");
        self.harvest(&mut inner, id);
        match inner.entries.get(&id) {
            None => Lookup::Unknown,
            Some(Entry::PendingJob(_) | Entry::PendingSweep(_)) => Lookup::Pending,
            Some(Entry::DoneJob(report)) => Lookup::Job(report.clone()),
            Some(Entry::DoneSweep(report)) => Lookup::Sweep(report.clone()),
            Some(Entry::Failed) => Lookup::Failed,
        }
    }

    /// Polls a pending entry without blocking and, if its report arrived,
    /// replaces it with the done form, updates the counters and applies the
    /// `max_done` retention cap.
    fn harvest(&self, inner: &mut Inner, id: u64) {
        let done = match inner.entries.get_mut(&id) {
            Some(Entry::PendingJob(handle)) => {
                // try_result panics when the worker died; contain that to the
                // entry (AssertUnwindSafe: on unwind the whole entry is
                // replaced below, so no partially-updated handle survives).
                match catch_unwind(AssertUnwindSafe(|| handle.try_result().cloned())) {
                    Ok(None) => return,
                    Ok(Some(report)) => {
                        self.account_job(&report);
                        Entry::DoneJob(Box::new(report))
                    }
                    Err(_) => {
                        bump(&self.counters.failed);
                        Entry::Failed
                    }
                }
            }
            Some(Entry::PendingSweep(handle)) => {
                match catch_unwind(AssertUnwindSafe(|| handle.try_result().cloned())) {
                    Ok(None) => return,
                    Ok(Some(report)) => {
                        self.account_sweep(&report);
                        Entry::DoneSweep(Box::new(report))
                    }
                    Err(_) => {
                        bump(&self.counters.failed);
                        Entry::Failed
                    }
                }
            }
            _ => return,
        };
        inner.entries.insert(id, done);
        inner.pending -= 1;
        inner.done_order.push_back(id);
        while inner.done_order.len() > self.max_done {
            if let Some(evicted) = inner.done_order.pop_front() {
                inner.entries.remove(&evicted);
            }
        }
    }

    fn account_job(&self, report: &JobReport) {
        bump(&self.counters.completed);
        add_time(&self.counters.build_nanos, report.build);
        add_time(&self.counters.query_nanos, report.query);
        self.counters.aggregation_runs.fetch_add(
            u64::try_from(report.aggregation_runs).unwrap_or(u64::MAX),
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    fn account_sweep(&self, report: &SweepReport) {
        bump(&self.counters.completed);
        add_time(&self.counters.build_nanos, report.stats.build_time);
        add_time(
            &self.counters.query_nanos,
            report.stats.instantiate_time + report.stats.query_time,
        );
        self.counters.aggregation_runs.fetch_add(
            u64::try_from(report.stats.aggregation_runs).unwrap_or(u64::MAX),
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Blocks until every pending job has delivered its report (the graceful
    /// shutdown path: accepted work completes — and, with a store configured,
    /// persists — before the process exits).  Returns how many were drained.
    ///
    /// The handles are moved out of the lock first, so jobs finishing during
    /// the drain never contend with a held registry lock.
    pub fn drain(&self) -> usize {
        let pending: Vec<(u64, Entry)> = {
            let mut inner = self.inner.lock().expect("registry lock");
            let mut ids: Vec<u64> = inner
                .entries
                .iter()
                .filter(|(_, e)| matches!(e, Entry::PendingJob(_) | Entry::PendingSweep(_)))
                .map(|(id, _)| *id)
                .collect();
            // Ids are issued in submission order; draining in that order keeps
            // the done-eviction FIFO deterministic (the map iterates randomly).
            ids.sort_unstable();
            ids.into_iter()
                .filter_map(|id| inner.entries.remove(&id).map(|e| (id, e)))
                .collect()
        };
        let drained = pending.len();
        for (id, entry) in pending {
            let done = match entry {
                Entry::PendingJob(handle) => {
                    match catch_unwind(AssertUnwindSafe(|| handle.wait())) {
                        Ok(report) => {
                            self.account_job(&report);
                            Entry::DoneJob(Box::new(report))
                        }
                        Err(_) => {
                            bump(&self.counters.failed);
                            Entry::Failed
                        }
                    }
                }
                Entry::PendingSweep(handle) => {
                    match catch_unwind(AssertUnwindSafe(|| handle.wait())) {
                        Ok(report) => {
                            self.account_sweep(&report);
                            Entry::DoneSweep(Box::new(report))
                        }
                        Err(_) => {
                            bump(&self.counters.failed);
                            Entry::Failed
                        }
                    }
                }
                done => done,
            };
            let mut inner = self.inner.lock().expect("registry lock");
            inner.entries.insert(id, done);
            inner.pending -= 1;
            inner.done_order.push_back(id);
            while inner.done_order.len() > self.max_done {
                if let Some(evicted) = inner.done_order.pop_front() {
                    inner.entries.remove(&evicted);
                }
            }
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};
    use dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
    use dft_core::{AnalysisOptions, Measure};

    fn tree(rate: f64) -> dft::Dft {
        let mut b = DftBuilder::new();
        let p = b.basic_event("P", rate, Dormancy::Hot).unwrap();
        let s = b.basic_event("S", rate, Dormancy::Cold).unwrap();
        let top = b.spare_gate("Top", &[p, s]).unwrap();
        b.build(top).unwrap()
    }

    fn submit(service: &AnalysisService) -> JobHandle {
        service.submit(AnalysisJob::new(
            tree(1.0),
            AnalysisOptions::default(),
            vec![Measure::Mttf],
        ))
    }

    #[test]
    fn ids_are_sequential_and_capped_by_max_pending() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        let registry = Registry::new(2, 8);
        assert_eq!(registry.add_job(submit(&service)), Some(1));
        assert_eq!(registry.add_job(submit(&service)), Some(2));
        // Full: the third submission is refused until one completes.
        assert!(registry.add_job(submit(&service)).is_none());
        assert_eq!(registry.pending(), 2);

        registry.drain();
        assert_eq!(registry.pending(), 0);
        assert!(matches!(registry.lookup(1), Lookup::Job(_)));
        assert!(matches!(registry.lookup(2), Lookup::Job(_)));
        assert!(matches!(registry.lookup(99), Lookup::Unknown));
        assert_eq!(registry.add_job(submit(&service)), Some(3));
        registry.drain();
    }

    #[test]
    fn done_entries_are_evicted_oldest_first() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        let registry = Registry::new(8, 2);
        let ids: Vec<u64> = (0..3)
            .map(|_| registry.add_job(submit(&service)).unwrap())
            .collect();
        registry.drain();
        assert!(matches!(registry.lookup(ids[0]), Lookup::Unknown));
        assert!(matches!(registry.lookup(ids[1]), Lookup::Job(_)));
        assert!(matches!(registry.lookup(ids[2]), Lookup::Job(_)));
    }

    #[test]
    fn lookups_harvest_and_reports_survive_repeated_fetches() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        });
        let registry = Registry::new(8, 8);
        let id = registry.add_job(submit(&service)).unwrap();
        // Poll until the harvest observes the report.
        loop {
            match registry.lookup(id) {
                Lookup::Pending => std::thread::yield_now(),
                Lookup::Job(report) => {
                    assert!(report.results.is_ok());
                    break;
                }
                other => panic!("unexpected lookup: {other:?}"),
            }
        }
        assert!(matches!(registry.lookup(id), Lookup::Job(_)));
        assert_eq!(registry.pending(), 0);
        assert_eq!(
            registry
                .counters()
                .completed
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }
}
