//! CI smoke for fleet mode: two `dftmc-serve` *processes*, one shared store.
//!
//! 1. Start server A on a scratch store directory, submit the CAS case study
//!    over HTTP and check the unreliability is bit-identical to an in-process
//!    [`Analyzer`] on the same tree.
//! 2. Submit a second job and immediately `POST /shutdown`: the graceful
//!    drain must complete that in-flight job (and persist its model) before
//!    the process exits 0.
//! 3. Start server B on the *same* store directory and submit the same tree:
//!    the report must say `aggregation_runs == 0` (the model came off disk)
//!    and `/metrics` must show `store.hits > 0`.
//! 4. Submit a static-heavy tree with `"method": "hybrid"` and check the
//!    hybrid backend's reduction counters surface in `/metrics`.
//!
//! The harness finds the `dftmc-serve` binary next to its own executable, so
//! run it via `cargo run --release -p dftmc-serve --bin serve_smoke` after a
//! build of the package.

#![forbid(unsafe_code)]

use dft_core::analysis::AnalysisOptions;
use dft_core::engine::Analyzer;
use dftmc_serve::client;
use dftmc_serve::json::Json;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn field(doc: &Json, key: &str) -> Option<Json> {
    match doc {
        Json::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone()),
        _ => None,
    }
}

fn num(doc: &Json, key: &str) -> f64 {
    match field(doc, key) {
        Some(Json::Num(n)) => n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// `results[0].points[0].value` of a `/result/{id}` document.
fn result_value(doc: &Json) -> f64 {
    let first = |value: Json| match value {
        Json::Arr(items) => items.into_iter().next().expect("non-empty array"),
        other => panic!("expected an array, got {other:?}"),
    };
    let measure = first(field(doc, "results").expect("results present"));
    let point = first(field(&measure, "points").expect("points present"));
    num(&point, "value")
}

/// One running `dftmc-serve` child with its parsed listen address.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
}

fn start_server(binary: &Path, store: &Path) -> ServerProcess {
    let mut child = Command::new(binary)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--store",
            &store.display().to_string(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("dftmc-serve spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("the server prints its listen line")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("dftmc-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse::<SocketAddr>()
        .expect("banner carries a socket address");
    // Keep draining stdout in the background so the child never blocks on a
    // full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServerProcess { child, addr }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let (status, doc) = client::request(addr, "POST", "/submit", body).expect("submit I/O");
    assert_eq!(status, 202, "submit refused: {}", doc.render());
    num(&doc, "id") as u64
}

fn wait_result(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    let path = format!("/result/{id}");
    loop {
        let (status, doc) = client::request(addr, "GET", &path, "").expect("result I/O");
        match status {
            200 => return doc,
            202 => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("result fetch failed ({other}): {}", doc.render()),
        }
    }
}

fn main() {
    let binary = std::env::current_exe()
        .expect("own path")
        .with_file_name("dftmc-serve");
    assert!(
        binary.exists(),
        "{} not found; build the dftmc-serve package first",
        binary.display()
    );
    let store = std::env::temp_dir().join(format!("dftmc-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let tree = dft_core::casestudies::cas();
    let body = Json::obj([
        ("galileo", Json::Str(dft::galileo::to_galileo(&tree))),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
    ])
    .render();
    let reference = Analyzer::new(&tree, AnalysisOptions::default())
        .expect("in-process reference builds")
        .unreliability(1.0)
        .expect("in-process reference queries")
        .value();

    // --- Process A: cold store -------------------------------------------
    println!("[1/4] cold server: submit CAS over HTTP, check bit-identity");
    let a = start_server(&binary, &store);
    let id = submit(a.addr, &body);
    let report = wait_result(a.addr, id);
    let value = result_value(&report);
    assert_eq!(
        value.to_bits(),
        reference.to_bits(),
        "HTTP value {value} != in-process {reference}"
    );
    assert!(
        num(&report, "aggregation_runs") > 0.0,
        "the first process must aggregate: {}",
        report.render()
    );

    println!("[2/4] shutdown with an in-flight job: the drain must finish it");
    let in_flight = submit(a.addr, &body);
    assert!(in_flight > id);
    let (status, doc) = client::request(a.addr, "POST", "/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200, "{}", doc.render());
    let mut child = a.child;
    let exit = child.wait().expect("server A exits");
    assert!(exit.success(), "server A exited with {exit:?}");

    // --- Process B: same store directory ---------------------------------
    println!("[3/4] warm server on the same store: zero aggregations");
    let b = start_server(&binary, &store);
    let id = submit(b.addr, &body);
    let report = wait_result(b.addr, id);
    assert_eq!(
        result_value(&report).to_bits(),
        reference.to_bits(),
        "warm value diverged"
    );
    assert_eq!(
        num(&report, "aggregation_runs"),
        0.0,
        "a warm store must serve the model without aggregating: {}",
        report.render()
    );

    let (status, metrics) = client::request(b.addr, "GET", "/metrics", "").expect("metrics I/O");
    assert_eq!(status, 200);
    let store_stats = field(&metrics, "store").expect("store section present");
    assert!(
        !matches!(store_stats, Json::Null),
        "a store-backed server must render store stats"
    );
    assert!(
        num(&store_stats, "hits") > 0.0,
        "server B never hit the shared store: {}",
        metrics.render()
    );

    // --- Hybrid backend over HTTP -----------------------------------------
    println!("[4/4] hybrid job on a static-heavy tree: reduction counters in /metrics");
    let static_heavy = "toplevel \"Top\";\n\
                        \"Top\" or \"Dyn\" \"Static\";\n\
                        \"Dyn\" wsp \"P\" \"S\";\n\
                        \"Static\" and \"X\" \"Y\" \"Z\";\n\
                        \"P\" lambda=1.0 dorm=0.0;\n\
                        \"S\" lambda=1.0 dorm=0.0;\n\
                        \"X\" lambda=0.5 dorm=0.0;\n\
                        \"Y\" lambda=0.5 dorm=0.0;\n\
                        \"Z\" lambda=0.5 dorm=0.0;\n";
    let hybrid_body = Json::obj([
        ("galileo", static_heavy.into()),
        ("method", "hybrid".into()),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
    ])
    .render();
    let id = submit(b.addr, &hybrid_body);
    let _ = wait_result(b.addr, id);
    let (status, metrics) = client::request(b.addr, "GET", "/metrics", "").expect("metrics I/O");
    assert_eq!(status, 200);
    let hybrid = field(&metrics, "hybrid").expect("hybrid section present");
    assert_eq!(num(&hybrid, "builds"), 1.0, "{}", metrics.render());
    assert_eq!(num(&hybrid, "fallbacks"), 0.0, "{}", metrics.render());
    assert!(
        num(&hybrid, "crown_elements") > 0.0 && num(&hybrid, "core_elements") > 0.0,
        "the static crown never collapsed: {}",
        metrics.render()
    );

    let (status, _) = client::request(b.addr, "POST", "/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200);
    let mut child = b.child;
    let exit = child.wait().expect("server B exits");
    assert!(exit.success(), "server B exited with {exit:?}");

    let _ = std::fs::remove_dir_all(&store);
    println!("serve_smoke: PASS (fleet-warm across processes, graceful drain, bit-identical)");
}
