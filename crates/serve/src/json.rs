//! Re-export of the workspace JSON module.
//!
//! The dependency-free [`Json`] value type, parser and `BENCH_*` emitter
//! moved to the leaf `dft` crate (as [`dft::json`]) so the tree interchange
//! format ([`dft::json_format`]) can build on it.  This shim keeps the
//! historical `dftmc_serve::json` path (and `dftmc_bench::json`, which
//! re-exports it in turn) working unchanged.

pub use dft::json::*;
