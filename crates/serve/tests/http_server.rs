//! End-to-end tests over real TCP: a [`Server`] on an ephemeral port, the
//! crate's own [`client`], and bit-identity against the in-process engines.

use dft_core::analysis::AnalysisOptions;
use dft_core::engine::{Analyzer, ParametricAnalyzer};
use dft_core::service::ServiceOptions;
use dftmc_serve::client;
use dftmc_serve::http::HttpLimits;
use dftmc_serve::json::Json;
use dftmc_serve::server::{Server, ServerOptions};
use std::net::SocketAddr;
use std::time::Duration;

fn small_options() -> ServerOptions {
    ServerOptions {
        http_threads: 2,
        service: ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        },
        ..ServerOptions::default()
    }
}

fn field(doc: &Json, key: &str) -> Option<Json> {
    match doc {
        Json::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone()),
        _ => None,
    }
}

fn num(doc: &Json, key: &str) -> f64 {
    match field(doc, key) {
        Some(Json::Num(n)) => n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

fn cas_body() -> String {
    Json::obj([
        (
            "galileo",
            Json::Str(dft::galileo::to_galileo(&dft_core::casestudies::cas())),
        ),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
    ])
    .render()
}

fn submit(addr: SocketAddr, path: &str, body: &str) -> u64 {
    let (status, doc) = client::request(addr, "POST", path, body).unwrap();
    assert_eq!(status, 202, "{}", doc.render());
    num(&doc, "id") as u64
}

fn wait_result(addr: SocketAddr, id: u64) -> Json {
    let path = format!("/result/{id}");
    for _ in 0..30_000 {
        let (status, doc) = client::request(addr, "GET", &path, "").unwrap();
        match status {
            200 => return doc,
            202 => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("result fetch failed ({other}): {}", doc.render()),
        }
    }
    panic!("job {id} never finished");
}

/// `results[i].points[0]` of a result document.
fn point(doc: &Json, i: usize) -> Json {
    let Some(Json::Arr(results)) = field(doc, "results") else {
        panic!("no results in {}", doc.render());
    };
    let Some(Json::Arr(points)) = field(&results[i], "points") else {
        panic!("no points in {}", doc.render());
    };
    points[0].clone()
}

#[test]
fn submitted_jobs_answer_bit_identically_to_the_analyzer() {
    let server = Server::start(small_options()).unwrap();
    let addr = server.local_addr();

    let id = submit(addr, "/submit", &cas_body());
    let report = wait_result(addr, id);
    let value = num(&point(&report, 0), "value");

    let reference = Analyzer::new(&dft_core::casestudies::cas(), AnalysisOptions::default())
        .unwrap()
        .unreliability(1.0)
        .unwrap()
        .value();
    assert_eq!(
        value.to_bits(),
        reference.to_bits(),
        "HTTP {value} != in-process {reference}"
    );
    // Status flips to done and the result survives repeated fetches.
    let (status, doc) = client::request(addr, "GET", &format!("/status/{id}"), "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(field(&doc, "status"), Some(Json::Str("done".to_owned())));
    assert_eq!(
        client::request(addr, "GET", &format!("/result/{id}"), "")
            .unwrap()
            .0,
        200
    );

    server.shutdown();
    server.join();
}

#[test]
fn sweeps_resolve_specs_and_match_the_parametric_engine() {
    let server = Server::start(small_options()).unwrap();
    let addr = server.local_addr();

    let scales = [0.5, 1.0, 2.0];
    let body = Json::obj([
        (
            "galileo",
            Json::Str(dft::galileo::to_galileo(&dft_core::casestudies::cas())),
        ),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("type", "unreliability".into()),
                ("time", 1.0.into()),
            ])]),
        ),
        (
            "sweep",
            Json::obj([(
                "scales",
                Json::Arr(scales.iter().map(|&s| s.into()).collect()),
            )]),
        ),
    ])
    .render();
    let id = submit(addr, "/sweep", &body);
    let report = wait_result(addr, id);
    let Some(Json::Arr(points)) = field(&report, "points") else {
        panic!("no points in {}", report.render());
    };
    assert_eq!(points.len(), scales.len());

    let parametric =
        ParametricAnalyzer::new(&dft_core::casestudies::cas(), AnalysisOptions::default()).unwrap();
    for (point_doc, &scale) in points.iter().zip(&scales) {
        let Some(Json::Arr(results)) = field(point_doc, "results") else {
            panic!("sweep point carries no results: {}", point_doc.render());
        };
        let Some(Json::Arr(point_list)) = field(&results[0], "points") else {
            panic!("no inner points");
        };
        let value = num(&point_list[0], "value");
        let reference = parametric
            .instantiate(&parametric.params().scaled_valuation(scale))
            .unwrap()
            .unreliability(1.0)
            .unwrap()
            .value();
        assert_eq!(
            value.to_bits(),
            reference.to_bits(),
            "scale {scale}: HTTP {value} != parametric {reference}"
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn protocol_errors_map_to_typed_statuses() {
    let server = Server::start(ServerOptions {
        limits: HttpLimits {
            max_body_bytes: 512,
            ..HttpLimits::default()
        },
        ..small_options()
    })
    .unwrap();
    let addr = server.local_addr();

    assert_eq!(client::request(addr, "GET", "/nope", "").unwrap().0, 404);
    assert_eq!(client::request(addr, "GET", "/submit", "").unwrap().0, 405);
    assert_eq!(
        client::request(addr, "POST", "/submit", "{not json")
            .unwrap()
            .0,
        400
    );
    assert_eq!(
        client::request(addr, "GET", "/result/12345", "").unwrap().0,
        404
    );
    // A body over the configured limit is refused at the HTTP layer.
    let oversized = "x".repeat(600);
    assert_eq!(
        client::request(addr, "POST", "/submit", &oversized)
            .unwrap()
            .0,
        413
    );
    // Unparsable garbage instead of a request head.
    let (status, _) = client::request(addr, "NOT A METHOD", "/x", "").unwrap();
    assert_eq!(status, 400);

    let bad = server
        .router()
        .http_counters()
        .bad_requests
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(bad >= 5, "bad requests must be counted, got {bad}");

    server.shutdown();
    server.join();
}

#[test]
fn full_registries_throttle_submissions() {
    let server = Server::start(ServerOptions {
        max_jobs: 0,
        ..small_options()
    })
    .unwrap();
    let addr = server.local_addr();

    let (status, doc) = client::request(addr, "POST", "/submit", &cas_body()).unwrap();
    assert_eq!(status, 429, "{}", doc.render());
    assert_eq!(
        server
            .router()
            .http_counters()
            .throttled
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    server.shutdown();
    server.join();
}

#[test]
fn metrics_report_the_full_document_over_http() {
    let server = Server::start(small_options()).unwrap();
    let addr = server.local_addr();

    let id = submit(addr, "/submit", &cas_body());
    wait_result(addr, id);
    let (status, doc) = client::request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    for section in ["http", "jobs", "queue", "cache"] {
        assert!(field(&doc, section).is_some(), "{section} missing");
    }
    // Storeless server: the store section is null, not absent.
    assert_eq!(field(&doc, "store"), Some(Json::Null));
    let jobs = field(&doc, "jobs").unwrap();
    assert_eq!(num(&jobs, "completed"), 1.0);
    assert!(num(&jobs, "aggregation_runs") >= 1.0);

    server.shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_drains_and_persists_in_flight_jobs() {
    let store = std::env::temp_dir().join(format!("dftmc-serve-test-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let server = Server::start(ServerOptions {
        service: ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        }
        .store(&store),
        ..small_options()
    })
    .unwrap();
    let addr = server.local_addr();

    // Submit and immediately ask for shutdown: the job is still in flight.
    let id = submit(addr, "/submit", &cas_body());
    let (status, doc) = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        field(&doc, "status"),
        Some(Json::Str("draining".to_owned()))
    );
    server.join();
    assert!(id >= 1);

    // The drain persisted the model: a fresh server on the same store serves
    // the same tree without aggregating.
    let warm = Server::start(ServerOptions {
        service: ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        }
        .store(&store),
        ..small_options()
    })
    .unwrap();
    let id = submit(warm.local_addr(), "/submit", &cas_body());
    let report = wait_result(warm.local_addr(), id);
    assert_eq!(
        num(&report, "aggregation_runs"),
        0.0,
        "the drained store must serve the model: {}",
        report.render()
    );
    warm.shutdown();
    warm.join();

    let _ = std::fs::remove_dir_all(&store);
}
