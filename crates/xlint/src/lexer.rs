//! A hand-rolled, dependency-free token-level lexer for Rust source.
//!
//! The rule engine ([`crate::rules`]) needs just enough lexical structure to
//! reason about *code* without being fooled by *text*: a `wait_timeout`
//! mentioned in a doc comment, an `unwrap` inside a string literal, or a
//! lifetime `'a` mistaken for an unterminated character literal must never
//! produce findings.  The lexer therefore handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), emitted as [`TokenKind::Comment`] so the allow-annotation
//!   scanner can read them while every rule skips them;
//! * string-ish literals: `"…"` with escapes, byte strings `b"…"`, raw strings
//!   `r"…"` / `r#"…"#` with any number of hashes (and their `br` variants);
//! * the `'a` lifetime vs `'a'` character-literal ambiguity (including escaped
//!   chars like `'\''` and multi-byte chars like `'é'`);
//! * raw identifiers (`r#match`), numeric literals with suffixes/exponents,
//!   and plain punctuation.
//!
//! Everything the rules match on — method names, macro bangs, `as` casts,
//! bracket nesting — is visible as a flat [`Token`] stream with line numbers.

/// What a token is; the payload text lives in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`), *without* a
    /// closing quote.
    Lifetime,
    /// A character or byte literal (`'x'`, `'\n'`, `b'0'`).
    Char,
    /// A string literal of any flavour (`"…"`, `b"…"`, `r#"…"#`).
    Str,
    /// A numeric literal (`0`, `0xff_u64`, `1.5e-3`).
    Num,
    /// One punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A line or block comment, full text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes a whole source file into a flat token stream.
///
/// The lexer is total: any byte sequence produces *some* token stream (an
/// unterminated literal simply runs to the end of input), so the linter can
/// never panic on weird-but-compiling source, and malformed source is the
/// compiler's problem, not ours.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Lexer {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, "b".to_owned());
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.char_literal(line, "b'".to_owned());
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// A `"`-delimited string with `\` escapes; the opening prefix (`b`) has
    /// already been consumed into `text`.
    fn string(&mut self, line: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Is the cursor at `r"`, `r#…#"`, `br"` or `br#…#"`?  (`r#ident` raw
    /// identifiers have exactly one hash followed by a non-quote, so they
    /// fall through to [`ident`](Self::ident).)
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the r (or b)
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        self.peek(i + hashes) == Some('"')
    }

    fn raw_string(&mut self, line: u32) {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push('b');
            self.bump();
        }
        text.push('r');
        self.bump();
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump();
        // Scan for `"` followed by `hashes` hashes.
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    text.push('#');
                    self.bump();
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime/label): after
    /// the quote, a backslash always means a char literal; otherwise it is a
    /// char literal exactly when the character after the next one closes it.
    fn quote(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => self.char_literal(line, "'".to_owned()),
            Some(c) if self.peek(1) == Some('\'') && c != '\'' => {
                self.char_literal(line, "'".to_owned())
            }
            Some(c) if is_ident_start(c) => {
                let mut text = "'".to_owned();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::Lifetime, text, line);
            }
            _ => {
                // `'(`, `''` and friends: not valid Rust; emit punctuation so
                // the stream stays total.
                self.push(TokenKind::Punct('\''), "'".to_owned(), line);
            }
        }
    }

    /// The body of a char/byte literal after its opening quote (already in
    /// `text`): consume an optional escape and everything up to the `'`.
    fn char_literal(&mut self, line: u32, mut text: String) {
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Covers digits, hex, suffixes and the `e` of exponents.
                text.push(c);
                self.bump();
                // An exponent sign directly after e/E belongs to the number.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    // Only in decimal floats; hex literals (0x1e+2) don't reach
                    // here with a digit after the sign in this codebase.
                    if !text.starts_with("0x") && !text.starts_with("0X") {
                        text.push(self.bump().unwrap_or('+'));
                    }
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` but not `0..n` (range) and not a second dot.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier prefix `r#`.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            text.push_str("r#");
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = kinds("x // unwrap() wait_timeout\ny");
        assert_eq!(toks[0], (TokenKind::Ident, "x".to_owned()));
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert_eq!(toks[2], (TokenKind::Ident, "y".to_owned()));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn strings_swallow_escapes_and_code_lookalikes() {
        let toks = kinds(r#"let s = "a.unwrap() \" still a string";"#);
        let strings: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strings.len(), 1);
        assert!(strings[0].1.contains("unwrap"));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"contains "quotes" and \ slashes"# + br##"more"##"###);
        let strings: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strings.len(), 2);
        assert!(strings[0].1.contains("quotes"));
        assert!(strings[1].1.contains("more"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; let q = '\''; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn multibyte_char_literal() {
        let toks = kinds("let c = 'é'; let l: &'static str = \"s\";");
        assert!(toks.iter().any(|t| t.0 == TokenKind::Char && t.1 == "'é'"));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Lifetime && t.1 == "'static"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"b"bytes" b'\n' b'0'"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
        assert_eq!(toks[2].0, TokenKind::Char);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#match + r#\"raw str\"#");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".to_owned()));
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..bytes.len() 1.5e-3 0xff_u64");
        assert_eq!(toks[0], (TokenKind::Num, "0".to_owned()));
        assert_eq!(toks[1], (TokenKind::Punct('.'), ".".to_owned()));
        assert_eq!(toks[2], (TokenKind::Punct('.'), ".".to_owned()));
        assert!(toks.iter().any(|t| t.1 == "1.5e-3"));
        assert!(toks.iter().any(|t| t.1 == "0xff_u64"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("\"never closed");
        lex("r#\"never closed");
        lex("/* never closed");
        lex("'");
    }
}
