//! `xlint` — a dependency-free, token-level static-analysis pass over this
//! workspace's own sources.
//!
//! The workspace holds several safety-critical guarantees purely by
//! convention: untrusted-byte decoders return typed errors instead of
//! panicking, the service coordinates through exactly one lock at a time,
//! and no crate uses `unsafe`.  `xlint` turns those conventions into a merge
//! gate.  It is deliberately *not* a general Rust linter: it knows this
//! repository's layout ([`rules::classify`]) and checks exactly the
//! invariants the design documents claim.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p xlint            # lints the enclosing workspace
//! cargo run -p xlint -- <dir>   # lints an explicit source root
//! ```
//!
//! The exit status is non-zero when any finding survives suppression.  The
//! report prints every `// xlint: allow(<rule>) -- <reason>` annotation with
//! its reason so exceptions stay visible; see [`rules::RULES`] for the rule
//! catalogue and [`rules`] for the annotation grammar.
//!
//! The implementation is two layers with no dependencies beyond `std`:
//!
//! * [`lexer`] — a hand-rolled total lexer for Rust source.  It understands
//!   line and nested block comments, string/char/byte/raw-string literals,
//!   lifetimes versus char literals, and raw identifiers — enough to never
//!   mistake text in comments or strings for code, which is the failure mode
//!   that makes `grep`-based checks useless.
//! * [`rules`] — the scoped rule engine: file classification, `#[test]` /
//!   `#[cfg(test)]` masking, the allow-annotation parser, and the individual
//!   rules.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{Allow, Finding, SourceFile};

/// The outcome of linting a source tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Files inspected.
    pub files: usize,
    /// Tokens lexed across all files.
    pub tokens: usize,
    /// Findings that survived allow suppression (including unused allows).
    pub findings: Vec<Finding>,
    /// Every parsed allow annotation, used or not.
    pub allows: Vec<Allow>,
}

impl Report {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every `.rs` file under `root`'s `src/`, `crates/` and `tests/`
/// directories and returns the aggregate report.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rust_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    let mut all_findings = Vec::new();
    for path in files {
        let source = fs::read_to_string(&path)?;
        let rel = relative_display(root, &path);
        let file = SourceFile::new(rel, &source);
        report.files += 1;
        report.tokens += file.tokens.len();
        let (allows, bad) = rules::collect_allows(&file);
        all_findings.extend(bad);
        all_findings.extend(rules::check(&file));
        report.allows.extend(allows);
    }

    rules::suppress(&mut all_findings, &mut report.allows);
    for a in report.allows.iter().filter(|a| !a.used) {
        all_findings.push(Finding {
            rule: "unused-allow",
            path: a.path.clone(),
            line: a.line,
            message: format!("allow({}) suppresses nothing; remove it", a.rule),
        });
    }
    all_findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report.findings = all_findings;
    Ok(report)
}

/// Renders the report in the format the CI log shows.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "xlint: {} files, {} tokens\n",
        report.files, report.tokens
    ));
    for (id, summary) in rules::RULES {
        let hits = report.findings.iter().filter(|f| f.rule == *id).count();
        let allows = report.allows.iter().filter(|a| a.rule == *id).count();
        out.push_str(&format!(
            "  rule {id:<13} {:<4} {summary} ({hits} findings, {allows} allows)\n",
            if hits == 0 { "ok" } else { "FAIL" },
        ));
    }
    if !report.allows.is_empty() {
        out.push_str(&format!("allows in effect: {}\n", report.allows.len()));
        for a in &report.allows {
            out.push_str(&format!(
                "  {}:{} allow({}) -- {}\n",
                a.path, a.line, a.rule, a.reason
            ));
        }
    }
    if report.findings.is_empty() {
        out.push_str("xlint: clean\n");
    } else {
        out.push_str(&format!("findings: {}\n", report.findings.len()));
        for f in &report.findings {
            out.push_str(&format!(
                "  {}:{} [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "xlint: FAIL ({} findings)\n",
            report.findings.len()
        ));
    }
    out
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_the_enclosing_workspace_cleanly() {
        // The repository itself must satisfy its own linter; this is the
        // same check CI runs via `cargo run -p xlint`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).expect("workspace sources are readable");
        assert!(
            report.files > 20,
            "walker found only {} files",
            report.files
        );
        assert!(
            report.clean(),
            "workspace has lint findings:\n{}",
            render(&report)
        );
    }
}
