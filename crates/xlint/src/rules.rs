//! The scoped rule engine: which rule applies to which file, and how each
//! rule reads the token stream.
//!
//! Every rule checks a *convention the workspace already holds* and turns it
//! from folklore into a merge gate.  The rules are deliberately token-level:
//! no type information, no name resolution — which keeps the linter
//! dependency-free and fast, at the cost of being syntactic.  Where syntax is
//! not enough, the `// xlint: allow(<rule>) -- <reason>` escape hatch records
//! the exception *with its justification*, and the report counts and prints
//! every use so exceptions stay visible instead of accumulating silently.
//!
//! # The allow annotation
//!
//! ```text
//! // xlint: allow(cast) -- usize to u64 widening is lossless on every supported target
//! w.u64(v as u64);
//! ```
//!
//! An annotation suppresses findings of the named rule on its own line
//! (trailing style) and on the next code line (preceding style).  The reason
//! after `--` is mandatory; a malformed annotation is itself a finding
//! (`allow-syntax`), and an annotation that suppresses nothing is a finding
//! too (`unused-allow`), so stale exceptions cannot outlive the code they
//! excused.

use crate::lexer::{Token, TokenKind};

/// A rule identifier; see [`RULES`] for the catalogue.
pub type RuleId = &'static str;

/// The rule catalogue: `(id, summary)` for the report header.
///
/// * **`panic`** — *panic-freedom in untrusted-input decode paths.*  The
///   decoders that accept bytes from outside the process — the model codec
///   (`ioimc::codec`), the Galileo parser (`dft::galileo`), the store frame
///   (`dft_core::store`) and the bench JSON parser (`dftmc_bench::json`) —
///   must report corruption as typed errors, never unwind.  This rule flags
///   `.unwrap()` / `.expect()` (and `_err` variants) plus the panicking
///   macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`
///   and friends) in the non-test code of those files.
/// * **`index`** — *no direct indexing or slicing in the same decode files.*
///   `bytes[i]` and `&bytes[a..b]` panic on out-of-range input, which is
///   exactly what untrusted bytes produce; use `get`/`split_first`/iterators
///   so truncation surfaces as `None` and becomes a typed error.
/// * **`cast`** — *no `as` integer casts in codec code where `try_from`
///   belongs.*  An `as` cast silently truncates, turning a corrupt length
///   into a wrong-but-plausible value; `try_from` turns it into an error.
///   Allowed (with a reason) only for conversions that are provably
///   infallible on every supported target.
/// * **`lock-nesting`** — *one lock at a time in `dft_core::service`.*  The
///   service coordinates its worker pool through a single Mutex+Condvar
///   queue; acquiring a second `.lock()` while one guard is live is the
///   deadlock shape the design rules out.  Scope-tracked per function.
/// * **`busy-poll`** — *no `wait_timeout` in `dft_core::service`.*  The old
///   scoped pool papered over a lost-wakeup race with a 1 ms `wait_timeout`
///   poll; the queue's invariant is that every work-making transition
///   notifies under the lock, so a timeout wait is always a regression.
/// * **`forbid-unsafe`** — *`#![forbid(unsafe_code)]` in every crate root.*
///   The workspace is 100% safe Rust; `forbid` (unlike `deny`) cannot be
///   overridden further down the tree, and the lint makes sure no new crate
///   or bin forgets the attribute.
/// * **`allow-syntax`** / **`unused-allow`** — the escape hatch's own
///   hygiene: a reason is mandatory, and annotations must suppress something.
pub const RULES: &[(RuleId, &str)] = &[
    (
        "panic",
        "no unwrap/expect/panic! in untrusted-input decode paths",
    ),
    (
        "index",
        "no direct indexing/slicing in untrusted-input decode paths",
    ),
    ("cast", "no `as` integer casts in codec code (use try_from)"),
    (
        "lock-nesting",
        "no nested .lock() scopes in dft_core::service",
    ),
    ("busy-poll", "no wait_timeout polling in dft_core::service"),
    (
        "forbid-unsafe",
        "#![forbid(unsafe_code)] present in every crate root",
    ),
    (
        "allow-syntax",
        "xlint allow annotations carry a rule and a reason",
    ),
    (
        "unused-allow",
        "every allow annotation suppresses at least one finding",
    ),
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A parsed `// xlint: allow(<rule>) -- <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being excused.
    pub rule: String,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Workspace-relative path of the annotation.
    pub path: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Lines this annotation suppresses (its own, plus the next code line).
    pub covers: Vec<u32>,
    /// Set when the annotation suppressed at least one finding.
    pub used: bool,
}

/// Which rule families apply to a file; decided by [`classify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileRules {
    /// `panic` + `index` + `cast`: the file is an untrusted-byte decoder.
    pub decode: bool,
    /// `lock-nesting` + `busy-poll`: the file is part of the service.
    pub lock: bool,
    /// `forbid-unsafe`: the file is a crate root.
    pub crate_root: bool,
}

/// The untrusted-byte decoder files the panic-freedom rules cover.
/// Everything reaching these modules comes off a disk or a socket — the
/// `dftmc-serve` HTTP parser and router read raw network bytes — so their
/// non-test code must be textually panic-free.
pub const DECODE_FILES: &[&str] = &[
    "crates/ioimc/src/codec.rs",
    "crates/dft/src/galileo.rs",
    "crates/dft/src/json.rs",
    "crates/dft/src/json_format.rs",
    "crates/core/src/store.rs",
    "crates/core/src/request.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/router.rs",
];

/// Maps a workspace-relative path (forward slashes) to its rule set.
pub fn classify(path: &str) -> FileRules {
    let mut rules = FileRules::default();
    if DECODE_FILES.contains(&path) {
        rules.decode = true;
    }
    if path.starts_with("crates/core/src/service") {
        rules.lock = true;
    }
    let crate_root = path == "src/lib.rs"
        || (path.starts_with("crates/")
            && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs")))
        || path.contains("/src/bin/");
    if crate_root && path.ends_with(".rs") {
        rules.crate_root = true;
    }
    rules
}

/// A lexed source file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The rule families that apply.
    pub rules: FileRules,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is `true` when token `i` belongs to `#[test]` /
    /// `#[cfg(test)]` code, which the decode and lock rules skip.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` and computes the test mask.
    pub fn new(path: String, source: &str) -> SourceFile {
        let tokens = crate::lexer::lex(source);
        let test_mask = mask_test_code(&tokens);
        let rules = classify(&path);
        SourceFile {
            path,
            rules,
            tokens,
            test_mask,
        }
    }

    /// Indices of non-comment tokens, optionally excluding test code.
    fn code_indices(&self, include_tests: bool) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| self.tokens[i].kind != TokenKind::Comment)
            .filter(|&i| include_tests || !self.test_mask[i])
            .collect()
    }

    fn finding(&self, rule: RuleId, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.clone(),
            line,
            message,
        }
    }
}

/// Marks every token belonging to an item annotated `#[test]` or
/// `#[cfg(test)]` (the two forms this workspace uses for test code).  The
/// attribute must match exactly — `#[cfg(not(test))]` and friends are *not*
/// skipped, so the rules stay conservative.
fn mask_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let at = |k: usize| -> Option<&Token> { code.get(k).map(|&i| &tokens[i]) };

    let mut k = 0usize;
    while k < code.len() {
        if let Some(end) = test_attribute_end(&at, k) {
            // Mark from the attribute through the end of the annotated item
            // (consuming any further attributes in between).
            let start = code[k];
            let mut j = end;
            while let Some(next_end) = test_attribute_end(&at, j).or_else(|| {
                // A non-test attribute between the test attribute and the
                // item is part of the same item.
                attribute_end(&at, j)
            }) {
                j = next_end;
            }
            let item_end = item_end(&at, j);
            let last = code
                .get(item_end.saturating_sub(1))
                .copied()
                .unwrap_or(start);
            for (i, m) in mask.iter_mut().enumerate() {
                if i >= start && i <= last {
                    *m = true;
                }
            }
            k = item_end;
        } else {
            k += 1;
        }
    }
    mask
}

/// If the code tokens starting at `k` spell `#[test]` or `#[cfg(test)]`,
/// returns the code index one past the closing `]`.
fn test_attribute_end<'a>(at: &impl Fn(usize) -> Option<&'a Token>, k: usize) -> Option<usize> {
    if !(at(k)?.is_punct('#') && at(k + 1)?.is_punct('[')) {
        return None;
    }
    if at(k + 2)?.is_ident("test") && at(k + 3)?.is_punct(']') {
        return Some(k + 4);
    }
    if at(k + 2)?.is_ident("cfg")
        && at(k + 3)?.is_punct('(')
        && at(k + 4)?.is_ident("test")
        && at(k + 5)?.is_punct(')')
        && at(k + 6)?.is_punct(']')
    {
        return Some(k + 7);
    }
    None
}

/// If the code tokens starting at `k` are any outer attribute `#[…]`,
/// returns the code index one past the closing `]`.
fn attribute_end<'a>(at: &impl Fn(usize) -> Option<&'a Token>, k: usize) -> Option<usize> {
    if !(at(k)?.is_punct('#') && at(k + 1)?.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut j = k + 1;
    while let Some(t) = at(j) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// The code index one past the item starting at `k`: either past the matching
/// `}` of the first top-level `{`, or past the first top-level `;`.
fn item_end<'a>(at: &impl Fn(usize) -> Option<&'a Token>, k: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut brace = 0i64;
    let mut j = k;
    while let Some(t) = at(j) {
        match t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    return j + 1;
                }
            }
            TokenKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                return j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Allow annotations.
// ---------------------------------------------------------------------------

/// Extracts allow annotations (and `allow-syntax` findings for malformed
/// ones) from a file's comments.
pub fn collect_allows(file: &SourceFile) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    let known: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
    for (i, token) in file.tokens.iter().enumerate() {
        if token.kind != TokenKind::Comment {
            continue;
        }
        let body = token.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("xlint") else {
            continue;
        };
        let parsed = parse_allow(rest);
        match parsed {
            Ok((rule, reason)) if known.contains(&rule.as_str()) => {
                // The annotation covers its own line (trailing style) and the
                // next code line (preceding style).
                let mut covers = vec![token.line];
                if let Some(next) = file.tokens[i + 1..]
                    .iter()
                    .find(|t| t.kind != TokenKind::Comment && t.line > token.line)
                {
                    covers.push(next.line);
                }
                allows.push(Allow {
                    rule,
                    reason,
                    path: file.path.clone(),
                    line: token.line,
                    covers,
                    used: false,
                });
            }
            Ok((rule, _)) => findings.push(file.finding(
                "allow-syntax",
                token.line,
                format!("allow names unknown rule '{rule}'"),
            )),
            Err(problem) => findings.push(file.finding(
                "allow-syntax",
                token.line,
                format!("malformed xlint annotation: {problem}"),
            )),
        }
    }
    (allows, findings)
}

/// Parses the tail of an annotation: `: allow(<rule>) -- <reason>`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest
        .strip_prefix(':')
        .ok_or("expected ':' after 'xlint'")?
        .trim();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or("expected 'allow(<rule>)'")?;
    let (rule, rest) = rest
        .split_once(')')
        .ok_or("missing ')' after the rule name")?;
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("--")
        .ok_or("missing '-- <reason>' (a reason is mandatory)")?
        .trim();
    if reason.is_empty() {
        return Err("empty reason after '--'".to_owned());
    }
    Ok((rule.trim().to_owned(), reason.to_owned()))
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

/// Methods that unwind on failure; flagged when called (`.name(`).
const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that unwind; flagged when invoked (`name!`).  `debug_assert!` is
/// deliberately absent — it compiles out of release decoders.
const PANICKY_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Integer types an `as` cast may silently truncate to.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (`let [a, b] = …`, `for x in […]`, `return […]`, …).
const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "if", "else", "match", "return", "break", "continue", "loop",
    "while", "for", "move", "box", "await", "dyn", "impl", "pub", "where", "use", "fn", "static",
    "const", "type", "struct", "enum", "union", "trait", "unsafe", "extern", "crate", "mod",
    "yield",
];

/// Runs every applicable rule over `file` and returns the raw findings
/// (before allow suppression).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if file.rules.decode {
        check_decode(file, &mut findings);
    }
    if file.rules.lock {
        check_locks(file, &mut findings);
    }
    if file.rules.crate_root {
        check_crate_root(file, &mut findings);
    }
    findings
}

/// The `panic`, `index` and `cast` rules over one decoder file.
fn check_decode(file: &SourceFile, findings: &mut Vec<Finding>) {
    let code = file.code_indices(false);
    for (k, &i) in code.iter().enumerate() {
        let t = &file.tokens[i];
        let prev = k
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .map(|&p| &file.tokens[p]);
        let next = code.get(k + 1).map(|&n| &file.tokens[n]);

        if t.kind == TokenKind::Ident {
            let called = next.is_some_and(|n| n.is_punct('('));
            let preceded_by_dot = prev.is_some_and(|p| p.is_punct('.'));
            if preceded_by_dot && called && PANICKY_METHODS.contains(&t.text.as_str()) {
                findings.push(file.finding(
                    "panic",
                    t.line,
                    format!(
                        "`.{}()` panics on failure; decode paths must return typed errors",
                        t.text
                    ),
                ));
            }
            let banged = next.is_some_and(|n| n.is_punct('!'));
            if banged && PANICKY_MACROS.contains(&t.text.as_str()) {
                findings.push(file.finding(
                    "panic",
                    t.line,
                    format!(
                        "`{}!` unwinds; decode paths must return typed errors",
                        t.text
                    ),
                ));
            }
            if t.text == "as"
                && next.is_some_and(|n| {
                    n.kind == TokenKind::Ident && INT_TYPES.contains(&n.text.as_str())
                })
            {
                findings.push(file.finding(
                    "cast",
                    t.line,
                    format!(
                        "`as {}` silently truncates; use try_from so corrupt input fails typed",
                        next.map_or(String::new(), |n| n.text.clone())
                    ),
                ));
            }
        }

        if t.is_punct('[') {
            let postfix = prev.is_some_and(|p| match p.kind {
                TokenKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&p.text.as_str()),
                TokenKind::Punct(c) => matches!(c, ')' | ']' | '?'),
                TokenKind::Str => true,
                _ => false,
            });
            if postfix {
                findings.push(file.finding(
                    "index",
                    t.line,
                    "direct indexing/slicing panics out of range; use get()/iterators".to_owned(),
                ));
            }
        }
    }
}

/// A live `MutexGuard` the lock rule is tracking.
#[derive(Debug)]
struct LiveGuard {
    /// The binding name when the guard came from `let <name> = …lock()…;`.
    name: Option<String>,
    /// Brace depth where the guard was created.
    brace: i64,
    /// Paren/bracket depth where the guard was created (temporaries only).
    paren: i64,
    /// Temporary guards die at the end of their statement; named ones at the
    /// end of their block (or an explicit `drop(name)`).
    temp: bool,
    /// A `{` opened at the guard's depth while it was live (`if let … = m.lock() {`):
    /// the guard now lives to that block's `}`.
    block_opened: bool,
}

/// The `lock-nesting` and `busy-poll` rules over one service file.
///
/// Scope tracking is an over-approximation: a guard bound with `let` is
/// considered live until its block closes or it is explicitly `drop`ped; an
/// unbound guard until the end of its statement.  That is exactly the
/// compiler's drop order for the patterns the service uses, and anything
/// fancier should be rewritten to one of those patterns anyway.
fn check_locks(file: &SourceFile, findings: &mut Vec<Finding>) {
    let code = file.code_indices(false);
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut brace = 0i64;
    let mut paren = 0i64;
    // Code index (into `code`) where the current statement started.
    let mut stmt_start = 0usize;

    for (k, &i) in code.iter().enumerate() {
        let t = &file.tokens[i];
        match t.kind {
            TokenKind::Ident if t.text == "wait_timeout" => {
                findings.push(
                    file.finding(
                        "busy-poll",
                        t.line,
                        "wait_timeout reintroduces polling; every wakeup must come from notify"
                            .to_owned(),
                    ),
                );
            }
            TokenKind::Ident if t.text == "lock" => {
                let prev = k
                    .checked_sub(1)
                    .and_then(|p| code.get(p))
                    .map(|&p| &file.tokens[p]);
                let next = code.get(k + 1).map(|&n| &file.tokens[n]);
                if prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('(')) {
                    if let Some(held) = guards.first() {
                        let holder = held
                            .name
                            .clone()
                            .unwrap_or_else(|| "an unnamed guard".to_owned());
                        findings.push(file.finding(
                            "lock-nesting",
                            t.line,
                            format!(
                                ".lock() while `{holder}` is still held; nested acquisition deadlocks"
                            ),
                        ));
                    }
                    guards.push(new_guard(file, &code, stmt_start, k, brace, paren));
                }
            }
            TokenKind::Ident if t.text == "drop" => {
                // `drop(name)` / `mem::drop(name)` releases a named guard.
                let name = code
                    .get(k + 2)
                    .map(|&n| &file.tokens[n])
                    .filter(|t| t.kind == TokenKind::Ident)
                    .filter(|_| {
                        code.get(k + 1)
                            .is_some_and(|&n| file.tokens[n].is_punct('('))
                    })
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct('{') => {
                for g in &mut guards {
                    if g.temp && g.brace == brace {
                        g.block_opened = true;
                    }
                }
                brace += 1;
                stmt_start = k + 1;
            }
            TokenKind::Punct('}') => {
                brace -= 1;
                guards.retain(|g| {
                    if g.temp {
                        // Temporaries die when their statement's block closes,
                        // or when the block they headed (`if let`) closes.
                        g.brace <= brace && !(g.block_opened && g.brace == brace)
                    } else {
                        g.brace <= brace
                    }
                });
                stmt_start = k + 1;
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !(g.temp && g.brace == brace && paren <= g.paren));
                stmt_start = k + 1;
            }
            _ => {}
        }
    }
}

/// Builds the guard record for a `.lock(` at code index `lock_at`, inside the
/// statement starting at `stmt_start`.
///
/// A `let` statement pins the guard in its binding only when the initializer
/// *ends* at the lock expression (possibly through an `unwrap`/`expect`
/// chain): `let g = m.lock().unwrap();`.  When further methods are chained —
/// `let n = m.lock().unwrap().len();` — the guard is a temporary consumed
/// within the statement, and the binding holds something else entirely.
fn new_guard(
    file: &SourceFile,
    code: &[usize],
    stmt_start: usize,
    lock_at: usize,
    brace: i64,
    paren: i64,
) -> LiveGuard {
    let tok = |k: usize| code.get(k).map(|&i| &file.tokens[i]);
    if tok(stmt_start).is_some_and(|t| t.is_ident("let")) && binds_guard(file, code, lock_at) {
        let mut k = stmt_start + 1;
        if tok(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let name = tok(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
        return LiveGuard {
            name,
            brace,
            paren,
            temp: false,
            block_opened: false,
        };
    }
    LiveGuard {
        name: None,
        brace,
        paren,
        temp: true,
        block_opened: false,
    }
}

/// True when the expression around the `.lock(` at code index `lock_at` ends
/// right after the lock (plus any `?` / `.unwrap()` / `.expect("…")` chain),
/// i.e. the enclosing `let` really binds the guard.
fn binds_guard(file: &SourceFile, code: &[usize], lock_at: usize) -> bool {
    let tok = |k: usize| code.get(k).map(|&i| &file.tokens[i]);
    // Step past the matching `)` of the lock() call itself.
    let mut k = lock_at + 1;
    let mut depth = 0i64;
    loop {
        match tok(k) {
            Some(t) if t.is_punct('(') => depth += 1,
            Some(t) if t.is_punct(')') => {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            Some(_) => {}
            None => return false,
        }
        k += 1;
    }
    // Consume any `?` and `.unwrap()` / `.expect(…)` links.
    loop {
        if tok(k).is_some_and(|t| t.is_punct('?')) {
            k += 1;
            continue;
        }
        let chained = tok(k).is_some_and(|t| t.is_punct('.'))
            && tok(k + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && PANICKY_METHODS.contains(&t.text.as_str())
            })
            && tok(k + 2).is_some_and(|t| t.is_punct('('));
        if !chained {
            break;
        }
        let mut depth = 0i64;
        k += 2;
        loop {
            match tok(k) {
                Some(t) if t.is_punct('(') => depth += 1,
                Some(t) if t.is_punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                Some(_) => {}
                None => return false,
            }
            k += 1;
        }
    }
    tok(k).is_none_or(|t| t.is_punct(';'))
}

/// The `forbid-unsafe` rule: the crate root must carry
/// `#![forbid(unsafe_code)]`.
fn check_crate_root(file: &SourceFile, findings: &mut Vec<Finding>) {
    let code = file.code_indices(true);
    let tok = |k: usize| code.get(k).map(|&i| &file.tokens[i]);
    let mut found = false;
    for k in 0..code.len() {
        if tok(k).is_some_and(|t| t.is_punct('#'))
            && tok(k + 1).is_some_and(|t| t.is_punct('!'))
            && tok(k + 2).is_some_and(|t| t.is_punct('['))
            && tok(k + 3).is_some_and(|t| t.is_ident("forbid"))
            && tok(k + 4).is_some_and(|t| t.is_punct('('))
            && tok(k + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && tok(k + 6).is_some_and(|t| t.is_punct(')'))
            && tok(k + 7).is_some_and(|t| t.is_punct(']'))
        {
            found = true;
            break;
        }
    }
    if !found {
        findings.push(file.finding(
            "forbid-unsafe",
            1,
            "crate root is missing #![forbid(unsafe_code)]".to_owned(),
        ));
    }
}

/// Applies allow suppression in place: findings covered by a matching
/// annotation are removed and the annotation is marked used.
pub fn suppress(findings: &mut Vec<Finding>, allows: &mut [Allow]) {
    findings.retain(|f| {
        for a in allows.iter_mut() {
            if a.rule == f.rule && a.path == f.path && a.covers.contains(&f.line) {
                a.used = true;
                return false;
            }
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, source: &str) -> SourceFile {
        SourceFile::new(path.to_owned(), source)
    }

    fn decode_findings(source: &str) -> Vec<Finding> {
        check(&file("crates/ioimc/src/codec.rs", source))
    }

    fn lock_findings(source: &str) -> Vec<Finding> {
        check(&file("crates/core/src/service/queue.rs", source))
    }

    #[test]
    fn classification_matches_the_layout() {
        assert!(classify("crates/ioimc/src/codec.rs").decode);
        assert!(classify("crates/dft/src/json.rs").decode);
        assert!(classify("crates/dft/src/json_format.rs").decode);
        assert!(classify("crates/core/src/request.rs").decode);
        assert!(classify("crates/serve/src/http.rs").decode);
        assert!(classify("crates/serve/src/router.rs").decode);
        assert!(!classify("crates/serve/src/json.rs").decode);
        assert!(!classify("crates/serve/src/server.rs").decode);
        assert!(!classify("crates/ioimc/src/model.rs").decode);
        assert!(classify("crates/core/src/service/queue.rs").lock);
        assert!(classify("crates/core/src/service/mod.rs").lock);
        assert!(!classify("crates/core/src/store.rs").lock);
        assert!(classify("src/lib.rs").crate_root);
        assert!(classify("crates/xlint/src/main.rs").crate_root);
        assert!(classify("crates/bench/src/bin/bench_diff.rs").crate_root);
        assert!(!classify("crates/core/src/engine.rs").crate_root);
    }

    #[test]
    fn panic_rule_flags_methods_and_macros() {
        let found = decode_findings("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); }");
        assert_eq!(found.iter().filter(|f| f.rule == "panic").count(), 3);
    }

    #[test]
    fn panic_rule_skips_lookalikes() {
        // unwrap_or is non-panicking; `expect` as a field or plain ident is
        // not a call; comments and strings are not code.
        let found = decode_findings(
            "fn f() { x.unwrap_or(0); let expect = 1; // unwrap()\n let s = \"panic!\"; }",
        );
        assert!(found.iter().all(|f| f.rule != "panic"), "{found:?}");
    }

    #[test]
    fn panic_rule_skips_test_code() {
        let found = decode_findings(
            "#[cfg(test)] mod tests { fn f() { x.unwrap(); } }\n#[test]\nfn t() { y.expect(\"e\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn index_rule_flags_postfix_brackets_only() {
        let found = decode_findings("fn f() { let a = xs[0]; let b = &ys[1..]; }");
        assert_eq!(found.iter().filter(|f| f.rule == "index").count(), 2);
        let clean = decode_findings(
            "fn f(v: [u8; 4]) { let [a, b] = pair; let w = [0u8; 8]; let t: Vec<[u8; 2]> = vec![]; }",
        );
        assert!(clean.iter().all(|f| f.rule != "index"), "{clean:?}");
    }

    #[test]
    fn cast_rule_flags_int_casts_only() {
        let found = decode_findings("fn f() { let a = x as u32; let b = y as f64; }");
        let casts: Vec<_> = found.iter().filter(|f| f.rule == "cast").collect();
        assert_eq!(casts.len(), 1);
    }

    #[test]
    fn lock_rule_flags_nesting_and_busy_polling() {
        let found = lock_findings(
            "fn f(&self) { let a = self.x.lock().unwrap(); let b = self.y.lock().unwrap(); }",
        );
        assert_eq!(found.iter().filter(|f| f.rule == "lock-nesting").count(), 1);
        let found = lock_findings("fn f(&self) { c.wait_timeout(g, MS); }");
        assert_eq!(found.iter().filter(|f| f.rule == "busy-poll").count(), 1);
    }

    #[test]
    fn lock_rule_accepts_sequential_scopes() {
        // Temporary guard dies at the semicolon; named guard dies at its
        // block; drop() releases early.
        let clean = lock_findings(
            "fn f(&self) { self.x.lock().unwrap().push(1); self.y.lock().unwrap().push(2); }\n\
             fn g(&self) { { let a = self.x.lock().unwrap(); } let b = self.y.lock().unwrap(); }\n\
             fn h(&self) { let a = self.x.lock().unwrap(); drop(a); let b = self.y.lock().unwrap(); }",
        );
        assert!(clean.iter().all(|f| f.rule != "lock-nesting"), "{clean:?}");
    }

    #[test]
    fn let_of_collected_lock_contents_is_a_temporary() {
        // The binding holds the collected Vec, not the guard, which dies at
        // the semicolon — so the second lock is sequential, not nested.
        let clean = lock_findings(
            "fn f(&self) { let v: Vec<u32> = self.x.lock().unwrap().iter().copied().collect(); \
             let g = self.y.lock().unwrap(); g.push(v.len()); }",
        );
        assert!(clean.iter().all(|f| f.rule != "lock-nesting"), "{clean:?}");
    }

    #[test]
    fn lock_rule_sees_through_inner_blocks() {
        let found = lock_findings(
            "fn f(&self) { let a = self.x.lock().unwrap(); { let b = self.y.lock().unwrap(); } }",
        );
        assert_eq!(found.iter().filter(|f| f.rule == "lock-nesting").count(), 1);
    }

    #[test]
    fn busy_poll_in_comments_is_fine() {
        let clean = lock_findings("// the old wait_timeout busy-poll is gone\nfn f() {}");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn forbid_unsafe_detected() {
        let missing = check(&file("crates/dft/src/lib.rs", "//! docs\npub fn f() {}"));
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "forbid-unsafe");
        let present = check(&file(
            "crates/dft/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}",
        ));
        assert!(present.is_empty());
    }

    #[test]
    fn allows_parse_suppress_and_count() {
        let f = file(
            "crates/ioimc/src/codec.rs",
            "fn f() {\n    // xlint: allow(panic) -- provably infallible here\n    x.unwrap();\n    y.unwrap();\n}",
        );
        let (mut allows, bad) = collect_allows(&f);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "panic");
        assert_eq!(allows[0].reason, "provably infallible here");
        let mut findings = check(&f);
        assert_eq!(findings.len(), 2);
        suppress(&mut findings, &mut allows);
        // Only the annotated line is excused.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
        assert!(allows[0].used);
    }

    #[test]
    fn trailing_allows_cover_their_own_line() {
        let f = file(
            "crates/ioimc/src/codec.rs",
            "fn f() {\n    x.unwrap(); // xlint: allow(panic) -- trailing style\n}",
        );
        let (mut allows, _) = collect_allows(&f);
        let mut findings = check(&f);
        suppress(&mut findings, &mut allows);
        assert!(findings.is_empty());
        assert!(allows[0].used);
    }

    #[test]
    fn malformed_allows_are_findings() {
        for bad in [
            "// xlint: allow(panic)",           // no reason
            "// xlint: allow(panic) --",        // empty reason
            "// xlint: allow panic -- r",       // missing parens
            "// xlint: allow(not_a_rule) -- r", // unknown rule
            "// xlint allow(panic) -- r",       // missing colon
        ] {
            let f = file("crates/ioimc/src/codec.rs", &format!("{bad}\nfn f() {{}}"));
            let (allows, findings) = collect_allows(&f);
            assert!(allows.is_empty(), "{bad}");
            assert_eq!(findings.len(), 1, "{bad}");
            assert_eq!(findings[0].rule, "allow-syntax", "{bad}");
        }
    }
}
