//! CLI driver: lint the enclosing workspace (or an explicit root) and exit
//! non-zero on findings.  See the crate docs for the rule catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    match xlint::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", xlint::render(&report));
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xlint: cannot read {}: {err}", root.display());
            ExitCode::FAILURE
        }
    }
}
