//! JSON tree interchange, compatible with the dftlib/SAFEST schema.
//!
//! dftlib (and the SAFEST GUI built on it) exchanges DFTs as JSON documents of
//! the shape
//!
//! ```json
//! {
//!   "toplevel": "2",
//!   "nodes": [
//!     { "data": { "id": "0", "name": "A", "type": "be", "rate": "0.5",
//!                 "dorm": "1", "repair": "0" }, "group": "nodes" },
//!     { "data": { "id": "1", "name": "B", "type": "be", "rate": "0.5",
//!                 "dorm": "1" }, "group": "nodes" },
//!     { "data": { "id": "2", "name": "T", "type": "and",
//!                 "children": ["0", "1"] }, "group": "nodes" }
//!   ]
//! }
//! ```
//!
//! where ids and numeric attributes are carried as strings (dftlib does this so
//! rates can later become symbolic parameters).  [`encode`] produces exactly
//! this shape; [`decode`] additionally tolerates plain JSON numbers for
//! `rate`/`dorm`/`repair`/`voting`, numeric ids, a missing `dorm` (hot), and a
//! `repair` of `0` (non-repairable, which is how dftlib spells "no repair").
//! Unknown keys (`position`, `classes`, `parameters`, …) are ignored, so
//! documents exported by SAFEST load unchanged.
//!
//! Gate types are the dftlib names: `and`, `or`, `vot` (threshold in
//! `voting`), `pand`, `spare`, `fdep`, `seq`, plus our `inhibit` extension;
//! basic events are `be` (written) or `be_exp` (accepted).  FDEP and inhibit
//! gates list the trigger/condition as the first child, matching the Galileo
//! convention.
//!
//! This module parses untrusted bytes and is held to the workspace decode bar
//! (xlint `panic`/`index`/`cast` rules): total, typed-error, panic-free.
//! Round-tripping is exact: rates are rendered with Rust's shortest-round-trip
//! formatting and parsed back bit-identically.

use crate::builder::DftBuilder;
use crate::element::{Dormancy, Element, GateKind};
use crate::json::{self, Json};
use crate::tree::Dft;
use crate::{Error, Result};
use std::collections::HashMap;

fn err(message: String) -> Error {
    Error::Json { message }
}

/// Encodes a DFT as a dftlib-schema JSON value.
///
/// Node ids are the element indices rendered as decimal strings; nodes appear
/// in element order, so `decode(encode(dft))` preserves ids, names, attributes
/// and input order exactly.
pub fn encode(dft: &Dft) -> Json {
    let nodes: Vec<Json> = dft
        .elements()
        .map(|id| {
            let name = dft.name(id);
            let mut data: Vec<(String, Json)> = vec![
                ("id".to_owned(), Json::Str(id.index().to_string())),
                ("name".to_owned(), Json::Str(name.to_owned())),
            ];
            match dft.element(id) {
                Element::BasicEvent(be) => {
                    data.push(("type".to_owned(), Json::Str("be".to_owned())));
                    data.push(("rate".to_owned(), Json::Str(format!("{}", be.rate))));
                    data.push((
                        "dorm".to_owned(),
                        Json::Str(format!("{}", be.dormancy.factor())),
                    ));
                    if let Some(mu) = be.repair_rate {
                        data.push(("repair".to_owned(), Json::Str(format!("{mu}"))));
                    }
                }
                Element::Gate(gate) => {
                    let type_name = match gate.kind {
                        GateKind::And => "and",
                        GateKind::Or => "or",
                        GateKind::Voting { .. } => "vot",
                        GateKind::Pand => "pand",
                        GateKind::Spare => "spare",
                        GateKind::Fdep => "fdep",
                        GateKind::Seq => "seq",
                        GateKind::Inhibit => "inhibit",
                    };
                    data.push(("type".to_owned(), Json::Str(type_name.to_owned())));
                    if let GateKind::Voting { k } = gate.kind {
                        data.push(("voting".to_owned(), Json::Str(k.to_string())));
                    }
                    let children: Vec<Json> = gate
                        .inputs
                        .iter()
                        .map(|input| Json::Str(input.index().to_string()))
                        .collect();
                    data.push(("children".to_owned(), Json::Arr(children)));
                }
            }
            Json::Obj(vec![
                ("data".to_owned(), Json::Obj(data)),
                ("group".to_owned(), Json::Str("nodes".to_owned())),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "toplevel".to_owned(),
            Json::Str(dft.top().index().to_string()),
        ),
        ("nodes".to_owned(), Json::Arr(nodes)),
    ])
}

/// Renders a DFT as a compact single-line dftlib-schema JSON document.
pub fn to_json(dft: &Dft) -> String {
    encode(dft).render()
}

/// Parses a dftlib-schema JSON document into a DFT.
///
/// # Errors
///
/// Returns [`Error::Json`] for syntactic and schema problems, and the usual
/// construction/validation errors ([`Error::DuplicateName`],
/// [`Error::Cyclic`], arity and wellformedness violations) for semantic ones.
pub fn parse(text: &str) -> Result<Dft> {
    let value = json::parse(text).map_err(err)?;
    decode(&value)
}

/// One node, extracted from the document in the first pass.
#[derive(Debug)]
enum RawNode {
    Gate {
        kind: GateKind,
        children: Vec<String>,
    },
    BasicEvent {
        rate: f64,
        dorm: f64,
        repair: f64,
    },
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Reads an id field: dftlib writes strings, but plain integers are accepted.
fn id_string(value: &Json, what: &str) -> Result<String> {
    match value {
        Json::Str(s) if !s.is_empty() => Ok(s.clone()),
        Json::Num(n) => Ok(format!("{n}")),
        _ => Err(err(format!("{what} must be a string id"))),
    }
}

/// Reads a numeric attribute carried as either a JSON number or a string.
fn number(value: &Json, what: &str) -> Result<f64> {
    match value {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => s
            .trim()
            .parse::<f64>()
            .map_err(|_| err(format!("{what}: cannot parse number '{s}'"))),
        _ => Err(err(format!("{what} must be a number or numeric string"))),
    }
}

/// Reads a voting threshold: a non-negative integer as number or string.
fn threshold(value: &Json, what: &str) -> Result<u32> {
    let text = match value {
        Json::Str(s) => s.trim().to_owned(),
        Json::Num(n) => format!("{n}"),
        _ => return Err(err(format!("{what} must be an integer"))),
    };
    text.parse::<u32>()
        .map_err(|_| err(format!("{what}: '{text}' is not a valid threshold")))
}

/// Decodes a parsed JSON value into a DFT (see the module docs for the schema).
///
/// # Errors
///
/// As for [`parse`].
pub fn decode(value: &Json) -> Result<Dft> {
    let Json::Obj(root) = value else {
        return Err(err("document root must be an object".to_owned()));
    };
    let toplevel = field(root, "toplevel")
        .ok_or_else(|| err("missing 'toplevel'".to_owned()))
        .and_then(|v| id_string(v, "'toplevel'"))?;
    let Some(Json::Arr(nodes)) = field(root, "nodes") else {
        return Err(err("missing 'nodes' array".to_owned()));
    };

    // First pass: pull out (id, name, definition) per node, keeping document
    // order so the second pass can build deterministically.
    let mut defs: Vec<(String, String, RawNode)> = Vec::new();
    let mut by_id: HashMap<String, usize> = HashMap::new();
    for (position, node) in nodes.iter().enumerate() {
        let Json::Obj(entries) = node else {
            return Err(err(format!("node #{position} must be an object")));
        };
        let Some(Json::Obj(data)) = field(entries, "data") else {
            return Err(err(format!("node #{position} has no 'data' object")));
        };
        let id = field(data, "id")
            .ok_or_else(|| err(format!("node #{position} has no 'id'")))
            .and_then(|v| id_string(v, "'id'"))?;
        let name = match field(data, "name") {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            Some(_) => return Err(err(format!("node '{id}': 'name' must be a string"))),
            None => id.clone(),
        };
        let Some(Json::Str(type_name)) = field(data, "type") else {
            return Err(err(format!("node '{id}': missing 'type'")));
        };
        let raw = match type_name.as_str() {
            "be" | "be_exp" => {
                let rate = field(data, "rate")
                    .ok_or_else(|| err(format!("basic event '{id}': missing 'rate'")))
                    .and_then(|v| number(v, &format!("basic event '{id}' rate")))?;
                let dorm = match field(data, "dorm") {
                    Some(v) => number(v, &format!("basic event '{id}' dorm"))?,
                    None => 1.0,
                };
                let repair = match field(data, "repair") {
                    Some(v) => number(v, &format!("basic event '{id}' repair"))?,
                    None => 0.0,
                };
                RawNode::BasicEvent { rate, dorm, repair }
            }
            gate_type => {
                let kind = match gate_type {
                    "and" => GateKind::And,
                    "or" => GateKind::Or,
                    "vot" => {
                        let k = field(data, "voting")
                            .ok_or_else(|| {
                                err(format!("voting gate '{id}': missing 'voting' threshold"))
                            })
                            .and_then(|v| threshold(v, &format!("voting gate '{id}'")))?;
                        GateKind::Voting { k }
                    }
                    "pand" => GateKind::Pand,
                    "spare" | "csp" | "wsp" | "hsp" => GateKind::Spare,
                    "fdep" => GateKind::Fdep,
                    "seq" => GateKind::Seq,
                    "inhibit" => GateKind::Inhibit,
                    other => {
                        return Err(err(format!("node '{id}': unknown type '{other}'")));
                    }
                };
                let Some(Json::Arr(child_values)) = field(data, "children") else {
                    return Err(err(format!("gate '{id}': missing 'children' array")));
                };
                let mut children = Vec::with_capacity(child_values.len());
                for child in child_values {
                    children.push(id_string(child, &format!("gate '{id}' child"))?);
                }
                if children.is_empty() {
                    return Err(err(format!("gate '{id}' has no children")));
                }
                RawNode::Gate { kind, children }
            }
        };
        if by_id.contains_key(&id) {
            return Err(err(format!("duplicate node id '{id}'")));
        }
        by_id.insert(id.clone(), defs.len());
        defs.push((id, name, raw));
    }

    // Second pass: build bottom-up (children first), with an in-progress marker
    // for cycle detection — the same discipline as the Galileo parser.
    let mut builder = DftBuilder::new();
    let mut built: HashMap<String, crate::element::ElementId> = HashMap::new();
    let mut in_progress: Vec<bool> = vec![false; defs.len()];

    fn build_one(
        id: &str,
        defs: &[(String, String, RawNode)],
        by_id: &HashMap<String, usize>,
        builder: &mut DftBuilder,
        built: &mut HashMap<String, crate::element::ElementId>,
        in_progress: &mut [bool],
    ) -> Result<crate::element::ElementId> {
        if let Some(&done) = built.get(id) {
            return Ok(done);
        }
        let &def_index = by_id.get(id).ok_or_else(|| Error::UnknownElement {
            name: id.to_owned(),
        })?;
        if in_progress.get(def_index).copied().unwrap_or(false) {
            return Err(Error::Cyclic {
                name: id.to_owned(),
            });
        }
        if let Some(flag) = in_progress.get_mut(def_index) {
            *flag = true;
        }
        let (_, name, def) = defs.get(def_index).ok_or_else(|| Error::UnknownElement {
            name: id.to_owned(),
        })?;
        let element = match def {
            RawNode::BasicEvent { rate, dorm, repair } => {
                let dormancy = Dormancy::from_factor(*dorm);
                if *repair > 0.0 {
                    builder.repairable_basic_event(name, *rate, dormancy, *repair)?
                } else {
                    builder.basic_event(name, *rate, dormancy)?
                }
            }
            RawNode::Gate { kind, children } => {
                let mut input_ids = Vec::with_capacity(children.len());
                for child in children {
                    input_ids.push(build_one(child, defs, by_id, builder, built, in_progress)?);
                }
                // Gates with zero children are rejected in the first pass, so
                // the split can only fail on corrupt tables; surface that as
                // the arity error it is instead of panicking.
                let split_trigger = || {
                    input_ids.split_first().ok_or(Error::InvalidGate {
                        name: name.clone(),
                        message: "needs a trigger input".to_owned(),
                    })
                };
                match kind {
                    GateKind::And => builder.and_gate(name, &input_ids)?,
                    GateKind::Or => builder.or_gate(name, &input_ids)?,
                    GateKind::Voting { k } => builder.voting_gate(name, *k, &input_ids)?,
                    GateKind::Pand => builder.pand_gate(name, &input_ids)?,
                    GateKind::Spare => builder.spare_gate(name, &input_ids)?,
                    GateKind::Seq => builder.seq_gate(name, &input_ids)?,
                    GateKind::Fdep => {
                        let (&trigger, dependents) = split_trigger()?;
                        builder.fdep_gate(name, trigger, dependents)?
                    }
                    GateKind::Inhibit => {
                        let (&condition, others) = split_trigger()?;
                        builder.inhibit_gate(name, condition, others)?
                    }
                }
            }
        };
        if let Some(flag) = in_progress.get_mut(def_index) {
            *flag = false;
        }
        built.insert(id.to_owned(), element);
        Ok(element)
    }

    // Build every node, not just what the top event reaches, so FDEP gates
    // hanging off to the side survive the round trip (as in the Galileo path).
    for (id, _, _) in &defs {
        build_one(
            id,
            &defs,
            &by_id,
            &mut builder,
            &mut built,
            &mut in_progress,
        )?;
    }
    let top = *built.get(&toplevel).ok_or_else(|| Error::UnknownElement {
        name: toplevel.clone(),
    })?;
    builder.build(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galileo;

    const CAS_LIKE: &str = r#"
        toplevel "System";
        "System" or "CPU_unit" "Pump_unit";
        "CPU_unit" wsp "P" "B";
        "CPU_fdep" fdep "Trigger" "P" "B";
        "Trigger" or "CS" "SS";
        "Pump_unit" and "Pump_A" "Pump_B";
        "Pump_A" csp "PA" "PS";
        "Pump_B" csp "PB" "PS";
        "CS" lambda=0.2;
        "SS" lambda=0.2;
        "P"  lambda=0.5;
        "B"  lambda=0.5 dorm=0.5;
        "PA" lambda=1.0;
        "PB" lambda=1.0;
        "PS" lambda=1.0 dorm=0.0;
    "#;

    fn assert_same_tree(a: &Dft, b: &Dft) {
        assert_eq!(a.num_elements(), b.num_elements());
        assert_eq!(a.name(a.top()), b.name(b.top()));
        for id in a.elements() {
            let name = a.name(id);
            let other = b.by_name(name).unwrap_or_else(|| panic!("{name} lost"));
            match (a.element(id), b.element(other)) {
                (Element::Gate(ga), Element::Gate(gb)) => {
                    assert_eq!(ga.kind, gb.kind, "{name} changed kind");
                    let ins_a: Vec<&str> = ga.inputs.iter().map(|&i| a.name(i)).collect();
                    let ins_b: Vec<&str> = gb.inputs.iter().map(|&i| b.name(i)).collect();
                    assert_eq!(ins_a, ins_b, "{name} changed inputs");
                }
                (Element::BasicEvent(ba), Element::BasicEvent(bb)) => {
                    assert_eq!(ba.rate, bb.rate, "{name} changed rate");
                    assert_eq!(ba.dormancy.factor(), bb.dormancy.factor());
                    assert_eq!(ba.repair_rate, bb.repair_rate, "{name} changed repair");
                }
                _ => panic!("{name} changed between gate and basic event"),
            }
        }
    }

    #[test]
    fn round_trips_a_galileo_tree() {
        let dft = galileo::parse(CAS_LIKE).unwrap();
        let reloaded = parse(&to_json(&dft)).unwrap();
        assert_same_tree(&dft, &reloaded);
        assert_eq!(dft.fingerprint(), reloaded.fingerprint());
        // Printing is idempotent after one round trip.
        assert_eq!(to_json(&reloaded), to_json(&dft));
    }

    #[test]
    fn round_trips_repairable_and_voting_trees() {
        let text = r#"
            toplevel "T";
            "T" 2of3 "A" "B" "C";
            "A" lambda=1.0 repair=5.0;
            "B" lambda=2.0 dorm=0.25;
            "C" lambda=0.5;
        "#;
        let dft = galileo::parse(text).unwrap();
        let reloaded = parse(&to_json(&dft)).unwrap();
        assert_same_tree(&dft, &reloaded);
    }

    #[test]
    fn accepts_dftlib_flavoured_documents() {
        // Numeric attributes, be_exp, repair: "0", ignored extra keys.
        let text = r#"{
            "toplevel": "2",
            "parameters": [],
            "nodes": [
                {"data": {"id": "0", "name": "A", "type": "be_exp",
                          "rate": 0.5, "dorm": "1", "repair": "0"},
                 "group": "nodes", "position": {"x": 10, "y": 20}},
                {"data": {"id": "1", "name": "B", "type": "be",
                          "rate": "2", "dorm": 0.5},
                 "group": "nodes"},
                {"data": {"id": "2", "name": "T", "type": "vot", "voting": 1,
                          "children": ["0", "1"]},
                 "group": "nodes"}
            ]
        }"#;
        let dft = parse(text).unwrap();
        assert_eq!(dft.name(dft.top()), "T");
        assert_eq!(dft.num_basic_events(), 2);
        let a = dft.element(dft.by_name("A").unwrap()).as_basic_event();
        assert_eq!(a.and_then(|be| be.repair_rate), None);
        let b = dft.element(dft.by_name("B").unwrap()).as_basic_event();
        assert_eq!(b.map(|be| be.dormancy.factor()), Some(0.5));
    }

    #[test]
    fn missing_name_falls_back_to_id() {
        let text = r#"{
            "toplevel": "g",
            "nodes": [
                {"data": {"id": "x", "type": "be", "rate": 1}, "group": "nodes"},
                {"data": {"id": "y", "type": "be", "rate": 1}, "group": "nodes"},
                {"data": {"id": "g", "type": "and", "children": ["x", "y"]},
                 "group": "nodes"}
            ]
        }"#;
        let dft = parse(text).unwrap();
        assert_eq!(dft.name(dft.top()), "g");
        assert!(dft.by_name("x").is_some());
    }

    #[test]
    fn typed_errors_for_schema_violations() {
        // Not an object.
        assert!(matches!(parse("[1,2]"), Err(Error::Json { .. })));
        // Missing toplevel.
        assert!(matches!(parse(r#"{"nodes": []}"#), Err(Error::Json { .. })));
        // Unknown child id.
        let unknown = r#"{
            "toplevel": "1",
            "nodes": [
                {"data": {"id": "1", "type": "and", "children": ["ghost"]},
                 "group": "nodes"}
            ]
        }"#;
        assert!(matches!(parse(unknown), Err(Error::UnknownElement { .. })));
        // Cyclic children.
        let cyclic = r#"{
            "toplevel": "1",
            "nodes": [
                {"data": {"id": "1", "type": "and", "children": ["2"]}, "group": "nodes"},
                {"data": {"id": "2", "type": "or", "children": ["1"]}, "group": "nodes"}
            ]
        }"#;
        assert!(matches!(parse(cyclic), Err(Error::Cyclic { .. })));
    }
}
