//! Independent-module detection.
//!
//! Section 5.2 of the paper contrasts the DIFTree modularisation (which cannot
//! exploit independent sub-trees underneath dynamic gates) with the I/O-IMC
//! approach (which can).  This module provides the structural notion both rely on:
//! a gate `m` is an *independent module* if no element outside the subtree rooted
//! at `m` references anything strictly inside that subtree.  FDEP gates are parents
//! of their dependent events in our representation, so functional dependencies
//! crossing a subtree boundary correctly prevent it from being a module.

use crate::element::{ElementId, GateKind};
use crate::tree::Dft;
use std::collections::BTreeSet;

/// Information about one independent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleInfo {
    /// The module's root element (a gate).
    pub root: ElementId,
    /// All elements of the module (including the root).
    pub members: Vec<ElementId>,
    /// Whether the module contains a dynamic gate.
    pub dynamic: bool,
}

/// Returns every gate that roots an independent module, together with its members.
///
/// The top element always roots a module.  Results are sorted by root id.
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft::modules::independent_modules;
/// # fn main() -> Result<(), dft::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 1.0, Dormancy::Hot)?;
/// let a = b.and_gate("A", &[x, y])?;
/// let z = b.basic_event("Z", 1.0, Dormancy::Hot)?;
/// let top = b.pand_gate("Top", &[a, z])?;
/// let dft = b.build(top)?;
/// let modules = independent_modules(&dft);
/// // Both the AND gate and the top PAND gate are independent modules.
/// assert_eq!(modules.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn independent_modules(dft: &Dft) -> Vec<ModuleInfo> {
    let mut out = Vec::new();
    for id in dft.elements() {
        if dft.element(id).as_gate().is_none() {
            continue;
        }
        let members: BTreeSet<ElementId> = dft.descendants(id).into_iter().collect();
        let mut independent = true;
        'outer: for &member in &members {
            if member == id {
                continue;
            }
            for &parent in dft.parents(member) {
                if !members.contains(&parent) {
                    independent = false;
                    break 'outer;
                }
            }
        }
        if independent {
            let dynamic = members.iter().any(|&m| dft.element(m).is_dynamic_gate());
            out.push(ModuleInfo {
                root: id,
                members: members.into_iter().collect(),
                dynamic,
            });
        }
    }
    out
}

/// Returns the independent modules that the DIFTree methodology can actually solve
/// separately: modules whose *parent gates are all static* (an independent module
/// below a dynamic gate cannot be replaced by a constant-probability basic event,
/// cf. Section 2 of the paper).
pub fn diftree_solvable_modules(dft: &Dft) -> Vec<ModuleInfo> {
    independent_modules(dft)
        .into_iter()
        .filter(|m| {
            dft.parents(m.root).iter().all(|&p| {
                matches!(
                    dft.element(p).as_gate().map(|g| g.kind),
                    Some(GateKind::And) | Some(GateKind::Or) | Some(GateKind::Voting { .. })
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DftBuilder;
    use crate::element::Dormancy;

    /// A miniature cascaded-PAND structure: PAND over two AND modules.
    fn cascaded() -> Dft {
        let mut b = DftBuilder::new();
        let a1 = b.basic_event("A1", 1.0, Dormancy::Hot).unwrap();
        let a2 = b.basic_event("A2", 1.0, Dormancy::Hot).unwrap();
        let b1 = b.basic_event("B1", 1.0, Dormancy::Hot).unwrap();
        let b2 = b.basic_event("B2", 1.0, Dormancy::Hot).unwrap();
        let module_a = b.and_gate("ModA", &[a1, a2]).unwrap();
        let module_b = b.and_gate("ModB", &[b1, b2]).unwrap();
        let top = b.pand_gate("Top", &[module_a, module_b]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn and_modules_under_a_pand_are_independent() {
        let dft = cascaded();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        assert!(roots.contains(&"ModA"));
        assert!(roots.contains(&"ModB"));
        assert!(roots.contains(&"Top"));
        let mod_a = modules.iter().find(|m| dft.name(m.root) == "ModA").unwrap();
        assert_eq!(mod_a.members.len(), 3);
        assert!(!mod_a.dynamic);
        let top = modules.iter().find(|m| dft.name(m.root) == "Top").unwrap();
        assert!(top.dynamic);
    }

    #[test]
    fn diftree_cannot_solve_modules_under_dynamic_gates() {
        let dft = cascaded();
        let solvable = diftree_solvable_modules(&dft);
        // Only the top module itself (no parents) qualifies; the AND modules are
        // below a PAND gate.
        let roots: Vec<&str> = solvable.iter().map(|m| dft.name(m.root)).collect();
        assert_eq!(roots, vec!["Top"]);
    }

    #[test]
    fn shared_events_break_independence() {
        let mut b = DftBuilder::new();
        let shared = b.basic_event("Shared", 1.0, Dormancy::Hot).unwrap();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let left = b.and_gate("Left", &[shared, x]).unwrap();
        let right = b.or_gate("Right", &[shared]).unwrap();
        let top = b.or_gate("Top", &[left, right]).unwrap();
        let dft = b.build(top).unwrap();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        // Left and Right both reference the shared event, so neither is a module.
        assert!(!roots.contains(&"Left"));
        assert!(!roots.contains(&"Right"));
        assert!(roots.contains(&"Top"));
    }

    #[test]
    fn fdep_across_subtrees_breaks_independence() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("T", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Hot).unwrap();
        let module = b.and_gate("Module", &[c, d]).unwrap();
        let _fdep = b.fdep_gate("Fdep", t, &[c]).unwrap();
        let top = b.or_gate("Top", &[module, t]).unwrap();
        let dft = b.build(top).unwrap();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        // C is functionally dependent on a trigger outside "Module".
        assert!(!roots.contains(&"Module"));
    }
}
