//! Independent-module detection and the static/dynamic hybrid decomposition.
//!
//! Section 5.2 of the paper contrasts the DIFTree modularisation (which cannot
//! exploit independent sub-trees underneath dynamic gates) with the I/O-IMC
//! approach (which can).  This module provides the structural notion both rely on:
//! a gate `m` is an *independent module* if no element outside the subtree rooted
//! at `m` references anything strictly inside that subtree.  FDEP gates are parents
//! of their dependent events in our representation, so functional dependencies
//! crossing a subtree boundary correctly prevent it from being a module.
//!
//! On top of that notion, [`hybrid_plan`] partitions a tree for the hybrid
//! analysis backend: the maximal connected regions that contain dynamism (the
//! *cores*, each observed by the rest of the tree through a single exit
//! element) versus the purely static *crown* above them, which a [`crate::bdd`]
//! diagram solves combinatorially.  [`collapse_static_modules`] is the separate,
//! explicitly *approximate* rewrite that replaces static modules under dynamic
//! gates by exponential pseudo events.

use crate::bdd::{exponential_probabilities, Bdd};
use crate::element::{BasicEvent, Dormancy, Element, ElementId, GateKind};
use crate::tree::Dft;
use crate::Result;
use std::collections::{BTreeSet, HashMap};

/// Information about one independent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleInfo {
    /// The module's root element (a gate).
    pub root: ElementId,
    /// All elements of the module (including the root).
    pub members: Vec<ElementId>,
    /// Whether the module contains a dynamic gate.
    pub dynamic: bool,
}

/// Returns every gate that roots an independent module, together with its members.
///
/// The top element always roots a module.  Results are sorted by root id.
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft::modules::independent_modules;
/// # fn main() -> Result<(), dft::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 1.0, Dormancy::Hot)?;
/// let a = b.and_gate("A", &[x, y])?;
/// let z = b.basic_event("Z", 1.0, Dormancy::Hot)?;
/// let top = b.pand_gate("Top", &[a, z])?;
/// let dft = b.build(top)?;
/// let modules = independent_modules(&dft);
/// // Both the AND gate and the top PAND gate are independent modules.
/// assert_eq!(modules.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn independent_modules(dft: &Dft) -> Vec<ModuleInfo> {
    let mut out = Vec::new();
    for id in dft.elements() {
        if dft.element(id).as_gate().is_none() {
            continue;
        }
        let members: BTreeSet<ElementId> = dft.descendants(id).into_iter().collect();
        let mut independent = true;
        'outer: for &member in &members {
            if member == id {
                continue;
            }
            for &parent in dft.parents(member) {
                if !members.contains(&parent) {
                    independent = false;
                    break 'outer;
                }
            }
        }
        if independent {
            let dynamic = members.iter().any(|&m| dft.element(m).is_dynamic_gate());
            out.push(ModuleInfo {
                root: id,
                members: members.into_iter().collect(),
                dynamic,
            });
        }
    }
    out
}

/// Returns the independent modules that the DIFTree methodology can actually solve
/// separately: modules whose *parent gates are all static* (an independent module
/// below a dynamic gate cannot be replaced by a constant-probability basic event,
/// cf. Section 2 of the paper).
///
/// This is the *classification* the hybrid backend's exactness boundary is
/// built on: [`hybrid_plan`] keeps everything below a dynamic gate in the
/// state-space cores, precisely because such modules are not in this list;
/// only [`collapse_static_modules`] — the explicit opt-in approximation —
/// will replace them with pseudo events.
///
/// # Examples
///
/// An AND module below a PAND gate is independent, yet not DIFTree-solvable:
///
/// ```
/// use dft::modules::{diftree_solvable_modules, independent_modules};
/// use dft::{DftBuilder, Dormancy};
/// # fn main() -> Result<(), dft::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 1.0, Dormancy::Hot)?;
/// let a = b.and_gate("A", &[x, y])?;
/// let z = b.basic_event("Z", 1.0, Dormancy::Hot)?;
/// let top = b.pand_gate("Top", &[a, z])?;
/// let dft = b.build(top)?;
/// assert!(independent_modules(&dft).iter().any(|m| m.root == a));
/// assert!(!diftree_solvable_modules(&dft).iter().any(|m| m.root == a));
/// # Ok(())
/// # }
/// ```
pub fn diftree_solvable_modules(dft: &Dft) -> Vec<ModuleInfo> {
    independent_modules(dft)
        .into_iter()
        .filter(|m| {
            dft.parents(m.root).iter().all(|&p| {
                matches!(
                    dft.element(p).as_gate().map(|g| g.kind),
                    Some(GateKind::And) | Some(GateKind::Or) | Some(GateKind::Voting { .. })
                )
            })
        })
        .collect()
}

/// Statistics of a hybrid static/dynamic decomposition: how much of the tree
/// the combinatorial crown absorbed and how much state-space analysis remains.
///
/// The `static_modules` / `dynamic_modules` counts classify every independent
/// module of the tree; `static_modules_retained` records the reduction
/// *decisions* — static modules that stay in the state space because they sit
/// underneath dynamic gates (the exactness boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Elements of the original tree.
    pub total_elements: usize,
    /// Independent modules without any dynamic gate.
    pub static_modules: usize,
    /// Independent modules containing at least one dynamic gate.
    pub dynamic_modules: usize,
    /// Static independent modules kept in the state space because they live
    /// inside a dynamic core (collapsing them would be approximate).
    pub static_modules_retained: usize,
    /// Elements solved combinatorially (static gates and basic events of the crown).
    pub crown_elements: usize,
    /// Dynamic cores that still need state-space analysis.
    pub core_count: usize,
    /// Elements inside those cores.
    pub core_elements: usize,
}

/// One dynamic core of a [`HybridPlan`]: a maximal connected region of the tree
/// that needs state-space analysis, observed by the crown through a single
/// *exit* element.
#[derive(Debug, Clone)]
pub struct CoreModule {
    /// The element through which the crown observes the core.  Usually a gate,
    /// but a basic event when e.g. an FDEP-triggered event feeds a static gate.
    pub exit: ElementId,
    /// Every element of the core, ascending by id (including `exit` and any
    /// parentless FDEP gates whose trigger or dependents belong to the core).
    pub members: Vec<ElementId>,
    /// The core as a standalone DFT whose top is `exit`: element `i` of this
    /// tree is `members[i]` of the original, names preserved.
    pub dft: Dft,
}

/// The hybrid decomposition of a tree: dynamic [`CoreModule`]s plus the static
/// crown above them.
///
/// Built by [`hybrid_plan`].  The decomposition is *exact* for unrepairable
/// trees: cores are pairwise disjoint and share no element with the crown, so
/// their failure times are independent of each other and of the crown's basic
/// events, and the crown combines them combinatorially.  A tree whose top is
/// itself dynamic degenerates to a single core containing everything (the plan
/// then adds no reduction, but stays correct).
#[derive(Debug, Clone)]
pub struct HybridPlan {
    /// The dynamic cores, ordered by exit id.
    pub cores: Vec<CoreModule>,
    /// Crown elements (everything outside all cores), ascending by id.  All
    /// crown gates are static, and no crown element is shared with a core.
    pub crown: Vec<ElementId>,
    /// Reduction accounting for reports and `/metrics`.
    pub stats: ModuleStats,
}

/// Computes the hybrid static/dynamic decomposition of a tree.
///
/// Every dynamic gate and all its descendants must be analysed in the state
/// space; connected regions of such elements form core candidates.  A core must
/// be observed through a *single* exit (one element with parents outside the
/// core), because a pseudo event summarises exactly one failure distribution —
/// components observed through several exits absorb the static gates above
/// those exits until a single exit remains (in the worst case, the top, which
/// makes the plan degenerate but never wrong).  Dynamic regions that the top
/// does not observe at all produce no core.
///
/// # Examples
///
/// ```
/// use dft::modules::hybrid_plan;
/// use dft::{DftBuilder, Dormancy};
/// # fn main() -> Result<(), dft::Error> {
/// let mut b = DftBuilder::new();
/// let d1 = b.basic_event("D1", 1.0, Dormancy::Hot)?;
/// let d2 = b.basic_event("D2", 1.0, Dormancy::Hot)?;
/// let core = b.pand_gate("Core", &[d1, d2])?;
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 1.0, Dormancy::Hot)?;
/// let crown = b.and_gate("Crown", &[x, y])?;
/// let top = b.or_gate("Top", &[crown, core])?;
/// let dft = b.build(top)?;
/// let plan = hybrid_plan(&dft);
/// assert_eq!(plan.cores.len(), 1);
/// assert_eq!(plan.cores[0].exit, core);
/// assert_eq!(plan.stats.crown_elements, 4); // X, Y, Crown, Top
/// # Ok(())
/// # }
/// ```
pub fn hybrid_plan(dft: &Dft) -> HybridPlan {
    let n = dft.num_elements();
    // Seed: dynamism contaminates everything below it.
    let mut in_core = vec![false; n];
    for id in dft.elements() {
        if dft.element(id).is_dynamic_gate() {
            for d in dft.descendants(id) {
                in_core[d.index()] = true;
            }
        }
    }
    // Grow the core set until every connected core component is observed
    // through a single exit.  The set only grows, so this terminates (at the
    // latest once the top joins a core and becomes its only exit).
    let components = loop {
        // Label connected components over input/parent adjacency.  The core
        // set is descendant-closed, so every input of a core element is a core
        // element of the same component.
        let mut label = vec![usize::MAX; n];
        let mut components: Vec<Vec<ElementId>> = Vec::new();
        for start in dft.elements() {
            if !in_core[start.index()] || label[start.index()] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            label[start.index()] = id;
            while let Some(e) = stack.pop() {
                members.push(e);
                let inputs = dft.element(e).inputs().iter();
                for &next in inputs.chain(dft.parents(e)) {
                    if in_core[next.index()] && label[next.index()] == usize::MAX {
                        label[next.index()] = id;
                        stack.push(next);
                    }
                }
            }
            members.sort();
            components.push(members);
        }
        let exits: Vec<Vec<ElementId>> = components
            .iter()
            .map(|members| {
                members
                    .iter()
                    .copied()
                    .filter(|&e| {
                        e == dft.top() || dft.parents(e).iter().any(|p| !in_core[p.index()])
                    })
                    .collect()
            })
            .collect();
        let mut grew = false;
        for exit_set in &exits {
            if exit_set.len() < 2 {
                continue;
            }
            for &exit in exit_set {
                for &parent in dft.parents(exit) {
                    if !in_core[parent.index()] {
                        for d in dft.descendants(parent) {
                            in_core[d.index()] = true;
                        }
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break components.into_iter().zip(exits).collect::<Vec<_>>();
        }
    };
    let mut cores: Vec<CoreModule> = components
        .into_iter()
        .filter_map(|(members, exits)| {
            // A dynamic island the top never observes contributes nothing.
            let &exit = exits.first()?;
            let sub = extract_subtree(dft, &members, exit);
            Some(CoreModule {
                exit,
                members,
                dft: sub,
            })
        })
        .collect();
    cores.sort_by_key(|c| c.exit);
    let crown: Vec<ElementId> = dft.elements().filter(|&e| !in_core[e.index()]).collect();
    let modules = independent_modules(dft);
    let static_modules = modules.iter().filter(|m| !m.dynamic).count();
    let static_modules_retained = modules
        .iter()
        .filter(|m| !m.dynamic && m.members.iter().all(|&e| in_core[e.index()]))
        .count();
    let stats = ModuleStats {
        total_elements: n,
        static_modules,
        dynamic_modules: modules.len() - static_modules,
        static_modules_retained,
        crown_elements: crown.len(),
        core_count: cores.len(),
        core_elements: cores.iter().map(|c| c.members.len()).sum(),
    };
    HybridPlan {
        cores,
        crown,
        stats,
    }
}

/// Extracts `members` of `dft` into a standalone tree topped by `exit`.
/// Element `i` of the result is `members[i]`; names are preserved.  `members`
/// must be input-closed (every input of a member is a member), which both the
/// core components of [`hybrid_plan`] and independent modules guarantee.
fn extract_subtree(dft: &Dft, members: &[ElementId], exit: ElementId) -> Dft {
    let mut index_of = vec![u32::MAX; dft.num_elements()];
    for (i, &m) in members.iter().enumerate() {
        index_of[m.index()] = i as u32;
    }
    let mut names = Vec::with_capacity(members.len());
    let mut elements = Vec::with_capacity(members.len());
    let mut by_name = HashMap::with_capacity(members.len());
    for (i, &m) in members.iter().enumerate() {
        let name = dft.name(m).to_owned();
        by_name.insert(name.clone(), ElementId::new(i as u32));
        names.push(name);
        let mut element = dft.element(m).clone();
        if let Element::Gate(gate) = &mut element {
            for input in &mut gate.inputs {
                *input = ElementId::new(index_of[input.index()]);
            }
        }
        elements.push(element);
    }
    Dft::assemble(
        names,
        elements,
        by_name,
        ElementId::new(index_of[exit.index()]),
    )
}

/// Statistics of an approximate [`collapse_static_modules`] rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollapseStats {
    /// Static modules replaced by exponential pseudo events.
    pub collapsed_modules: usize,
    /// Elements removed from the tree by those replacements.
    pub removed_elements: usize,
}

/// **Approximate**, opt-in rewrite: replaces every maximal unrepairable static
/// independent module — *including those underneath dynamic gates* — with a
/// single exponential pseudo basic event whose rate is the reciprocal of the
/// module's mean time to failure.
///
/// The hybrid backend never does this on its own: a static module below a
/// dynamic gate has a non-exponential failure distribution, and summarising it
/// by its MTTF changes results.  Calling this function is the explicit
/// approximation flag.  Modules serving as spare-gate inputs keep their
/// structure (activation and dormancy are not combinatorial notions), as do
/// repairable modules and the top itself.
///
/// The MTTF `∫₀^∞ R(t) dt` is evaluated from the module's BDD by midpoint
/// quadrature after the substitution `u = e^(−ct)` (with `c` the smallest leaf
/// rate), which maps the integral onto `[0, 1]` with a bounded integrand.
///
/// # Errors
///
/// Propagates [`crate::Error::InvalidGate`] from BDD compilation; unreachable
/// for the static modules this function selects.
pub fn collapse_static_modules(dft: &Dft) -> Result<(Dft, CollapseStats)> {
    let modules = independent_modules(dft);
    let candidates: Vec<&ModuleInfo> = modules
        .iter()
        .filter(|m| {
            !m.dynamic
                && m.root != dft.top()
                && !dft.parents(m.root).iter().any(|&p| {
                    matches!(
                        dft.element(p).as_gate().map(|g| g.kind),
                        Some(GateKind::Spare)
                    )
                })
                && m.members.iter().all(|&e| match dft.element(e) {
                    Element::BasicEvent(be) => be.repair_rate.is_none(),
                    Element::Gate(g) => !g.repairable,
                })
        })
        .collect();
    // Independent modules are nested or disjoint; keep the maximal ones.
    let chosen: Vec<&ModuleInfo> = candidates
        .iter()
        .filter(|m| {
            !candidates
                .iter()
                .any(|other| other.root != m.root && other.members.binary_search(&m.root).is_ok())
        })
        .copied()
        .collect();
    let mut replacement: HashMap<ElementId, f64> = HashMap::with_capacity(chosen.len());
    let mut removed = vec![false; dft.num_elements()];
    let mut removed_elements = 0;
    for module in &chosen {
        let sub = extract_subtree(dft, &module.members, module.root);
        replacement.insert(module.root, 1.0 / module_mttf(&sub)?);
        for &e in &module.members {
            if e != module.root {
                removed[e.index()] = true;
                removed_elements += 1;
            }
        }
    }
    let mut index_of = vec![u32::MAX; dft.num_elements()];
    let mut names = Vec::new();
    let mut by_name = HashMap::new();
    for id in dft.elements() {
        if removed[id.index()] {
            continue;
        }
        index_of[id.index()] = names.len() as u32;
        by_name.insert(dft.name(id).to_owned(), ElementId::new(names.len() as u32));
        names.push(dft.name(id).to_owned());
    }
    let mut elements = Vec::with_capacity(names.len());
    for id in dft.elements() {
        if removed[id.index()] {
            continue;
        }
        if let Some(&rate) = replacement.get(&id) {
            elements.push(Element::BasicEvent(BasicEvent {
                rate,
                dormancy: Dormancy::Hot,
                repair_rate: None,
            }));
        } else {
            let mut element = dft.element(id).clone();
            if let Element::Gate(gate) = &mut element {
                for input in &mut gate.inputs {
                    *input = ElementId::new(index_of[input.index()]);
                }
            }
            elements.push(element);
        }
    }
    let top = ElementId::new(index_of[dft.top().index()]);
    let stats = CollapseStats {
        collapsed_modules: chosen.len(),
        removed_elements,
    };
    Ok((Dft::assemble(names, elements, by_name, top), stats))
}

/// Mean time to failure of an unrepairable static tree, by BDD evaluation and
/// midpoint quadrature (see [`collapse_static_modules`]).
fn module_mttf(sub: &Dft) -> Result<f64> {
    let bdd = Bdd::for_tree(sub)?;
    let c = sub
        .basic_events()
        .iter()
        .filter_map(|&e| sub.element(e).as_basic_event().map(|be| be.rate))
        .fold(f64::INFINITY, f64::min);
    const STEPS: usize = 4096;
    let mut total = 0.0;
    for i in 0..STEPS {
        let u = (i as f64 + 0.5) / STEPS as f64;
        let t = -u.ln() / c;
        let reliability = 1.0 - bdd.probability(&exponential_probabilities(sub, t));
        total += reliability / (c * u);
    }
    Ok(total / STEPS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DftBuilder;
    use crate::element::Dormancy;

    /// A miniature cascaded-PAND structure: PAND over two AND modules.
    fn cascaded() -> Dft {
        let mut b = DftBuilder::new();
        let a1 = b.basic_event("A1", 1.0, Dormancy::Hot).unwrap();
        let a2 = b.basic_event("A2", 1.0, Dormancy::Hot).unwrap();
        let b1 = b.basic_event("B1", 1.0, Dormancy::Hot).unwrap();
        let b2 = b.basic_event("B2", 1.0, Dormancy::Hot).unwrap();
        let module_a = b.and_gate("ModA", &[a1, a2]).unwrap();
        let module_b = b.and_gate("ModB", &[b1, b2]).unwrap();
        let top = b.pand_gate("Top", &[module_a, module_b]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn and_modules_under_a_pand_are_independent() {
        let dft = cascaded();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        assert!(roots.contains(&"ModA"));
        assert!(roots.contains(&"ModB"));
        assert!(roots.contains(&"Top"));
        let mod_a = modules.iter().find(|m| dft.name(m.root) == "ModA").unwrap();
        assert_eq!(mod_a.members.len(), 3);
        assert!(!mod_a.dynamic);
        let top = modules.iter().find(|m| dft.name(m.root) == "Top").unwrap();
        assert!(top.dynamic);
    }

    #[test]
    fn diftree_cannot_solve_modules_under_dynamic_gates() {
        let dft = cascaded();
        let solvable = diftree_solvable_modules(&dft);
        // Only the top module itself (no parents) qualifies; the AND modules are
        // below a PAND gate.
        let roots: Vec<&str> = solvable.iter().map(|m| dft.name(m.root)).collect();
        assert_eq!(roots, vec!["Top"]);
    }

    #[test]
    fn shared_events_break_independence() {
        let mut b = DftBuilder::new();
        let shared = b.basic_event("Shared", 1.0, Dormancy::Hot).unwrap();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let left = b.and_gate("Left", &[shared, x]).unwrap();
        let right = b.or_gate("Right", &[shared]).unwrap();
        let top = b.or_gate("Top", &[left, right]).unwrap();
        let dft = b.build(top).unwrap();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        // Left and Right both reference the shared event, so neither is a module.
        assert!(!roots.contains(&"Left"));
        assert!(!roots.contains(&"Right"));
        assert!(roots.contains(&"Top"));
    }

    #[test]
    fn fdep_across_subtrees_breaks_independence() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("T", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Hot).unwrap();
        let module = b.and_gate("Module", &[c, d]).unwrap();
        let _fdep = b.fdep_gate("Fdep", t, &[c]).unwrap();
        let top = b.or_gate("Top", &[module, t]).unwrap();
        let dft = b.build(top).unwrap();
        let modules = independent_modules(&dft);
        let roots: Vec<&str> = modules.iter().map(|m| dft.name(m.root)).collect();
        // C is functionally dependent on a trigger outside "Module".
        assert!(!roots.contains(&"Module"));
    }

    /// Static crown (OR over an AND module) above one PAND core that itself
    /// contains a static AND module.
    fn mixed() -> Dft {
        let mut b = DftBuilder::new();
        let a1 = b.basic_event("A1", 1.0, Dormancy::Hot).unwrap();
        let a2 = b.basic_event("A2", 1.0, Dormancy::Hot).unwrap();
        let crown_module = b.and_gate("CrownMod", &[a1, a2]).unwrap();
        let b1 = b.basic_event("B1", 1.0, Dormancy::Hot).unwrap();
        let b2 = b.basic_event("B2", 1.0, Dormancy::Hot).unwrap();
        let core_module = b.and_gate("CoreMod", &[b1, b2]).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Hot).unwrap();
        let core = b.pand_gate("Core", &[core_module, d]).unwrap();
        let top = b.or_gate("Top", &[crown_module, core]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn hybrid_plan_keeps_static_modules_under_dynamic_gates_in_the_core() {
        let dft = mixed();
        let plan = hybrid_plan(&dft);
        assert_eq!(plan.cores.len(), 1);
        let core = &plan.cores[0];
        assert_eq!(dft.name(core.exit), "Core");
        // The AND module below the PAND stays in the state space: the
        // exactness boundary of the hybrid backend.
        let member_names: Vec<&str> = core.members.iter().map(|&m| dft.name(m)).collect();
        assert_eq!(member_names, vec!["B1", "B2", "CoreMod", "D", "Core"]);
        assert_eq!(core.dft.name(core.dft.top()), "Core");
        assert_eq!(core.dft.num_elements(), 5);
        let crown_names: Vec<&str> = plan.crown.iter().map(|&m| dft.name(m)).collect();
        assert_eq!(crown_names, vec!["A1", "A2", "CrownMod", "Top"]);
        assert_eq!(plan.stats.core_count, 1);
        assert_eq!(plan.stats.core_elements, 5);
        assert_eq!(plan.stats.crown_elements, 4);
        assert_eq!(plan.stats.total_elements, 9);
        // CrownMod and CoreMod are static modules; only CoreMod is retained in
        // the state space.
        assert_eq!(plan.stats.static_modules, 2);
        assert_eq!(plan.stats.static_modules_retained, 1);
    }

    #[test]
    fn fully_static_trees_plan_without_cores() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.voting_gate("Top", 1, &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let plan = hybrid_plan(&dft);
        assert!(plan.cores.is_empty());
        assert_eq!(plan.crown.len(), 3);
        assert_eq!(plan.stats.core_elements, 0);
    }

    #[test]
    fn dynamic_top_degenerates_to_a_single_core() {
        let dft = cascaded();
        let plan = hybrid_plan(&dft);
        assert_eq!(plan.cores.len(), 1);
        assert_eq!(plan.cores[0].exit, dft.top());
        assert_eq!(plan.cores[0].members.len(), dft.num_elements());
        assert!(plan.crown.is_empty());
    }

    #[test]
    fn multi_exit_components_absorb_their_crown_parents() {
        // Two spare gates share one pool spare: a single stochastic component
        // observed through two exits.  The plan must absorb the static gates
        // above the exits until one exit remains — here, all the way to the top.
        let mut b = DftBuilder::new();
        let pa = b.basic_event("PA", 1.0, Dormancy::Hot).unwrap();
        let pb = b.basic_event("PB", 1.0, Dormancy::Hot).unwrap();
        let ps = b.basic_event("PS", 1.0, Dormancy::Cold).unwrap();
        let ga = b.spare_gate("GA", &[pa, ps]).unwrap();
        let gb = b.spare_gate("GB", &[pb, ps]).unwrap();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let and1 = b.and_gate("And1", &[ga, x]).unwrap();
        let and2 = b.and_gate("And2", &[gb, y]).unwrap();
        let top = b.or_gate("Top", &[and1, and2]).unwrap();
        let dft = b.build(top).unwrap();
        let plan = hybrid_plan(&dft);
        assert_eq!(plan.cores.len(), 1);
        assert_eq!(plan.cores[0].exit, dft.top());
        assert!(plan.crown.is_empty());
    }

    #[test]
    fn fdep_core_can_exit_through_a_basic_event() {
        // The trigger is only observed through the FDEP; the crown sees the
        // dependent basic event directly.
        let mut b = DftBuilder::new();
        let t = b.basic_event("T", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
        let _fdep = b.fdep_gate("Fdep", t, &[c]).unwrap();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("Top", &[c, x]).unwrap();
        let dft = b.build(top).unwrap();
        let plan = hybrid_plan(&dft);
        assert_eq!(plan.cores.len(), 1);
        let core = &plan.cores[0];
        assert_eq!(dft.name(core.exit), "C");
        let member_names: Vec<&str> = core.members.iter().map(|&m| dft.name(m)).collect();
        assert_eq!(member_names, vec!["T", "C", "Fdep"]);
        assert_eq!(core.dft.name(core.dft.top()), "C");
        let crown_names: Vec<&str> = plan.crown.iter().map(|&m| dft.name(m)).collect();
        assert_eq!(crown_names, vec!["X", "Top"]);
    }

    #[test]
    fn collapse_replaces_static_modules_with_pseudo_events() {
        let dft = cascaded();
        let (reduced, stats) = collapse_static_modules(&dft).unwrap();
        assert_eq!(stats.collapsed_modules, 2);
        assert_eq!(stats.removed_elements, 4);
        assert_eq!(reduced.num_elements(), 3);
        assert_eq!(reduced.num_basic_events(), 2);
        assert_eq!(reduced.name(reduced.top()), "Top");
        // AND of two unit-rate events: MTTF = 2 − 1/2 = 3/2, rate = 2/3.  The
        // transformed integrand is linear in u, so midpoint quadrature is exact.
        let mod_a = reduced.require("ModA").unwrap();
        let be = reduced.element(mod_a).as_basic_event().unwrap();
        assert!((be.rate - 2.0 / 3.0).abs() < 1e-9, "rate {}", be.rate);
    }

    #[test]
    fn collapse_quadrature_is_accurate_for_uneven_rates() {
        // AND(λ=1, λ=2): MTTF = 1 + 1/2 − 1/3 = 7/6.
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 2.0, Dormancy::Hot).unwrap();
        let m = b.and_gate("M", &[x, y]).unwrap();
        let z = b.basic_event("Z", 1.0, Dormancy::Hot).unwrap();
        let top = b.pand_gate("Top", &[m, z]).unwrap();
        let dft = b.build(top).unwrap();
        let (reduced, stats) = collapse_static_modules(&dft).unwrap();
        assert_eq!(stats.collapsed_modules, 1);
        let m = reduced.require("M").unwrap();
        let be = reduced.element(m).as_basic_event().unwrap();
        assert!((be.rate - 6.0 / 7.0).abs() < 1e-6, "rate {}", be.rate);
    }

    #[test]
    fn collapse_skips_spare_modules_repairable_modules_and_the_top() {
        // A complex spare module must keep its structure (activation), and a
        // repairable module must keep its state space.
        let mut b = DftBuilder::new();
        let p = b.basic_event("P", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Cold).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Cold).unwrap();
        let spare_module = b.and_gate("SpareModule", &[c, d]).unwrap();
        let spare = b.spare_gate("Spare", &[p, spare_module]).unwrap();
        let r1 = b
            .repairable_basic_event("R1", 1.0, Dormancy::Hot, 2.0)
            .unwrap();
        let r2 = b.basic_event("R2", 1.0, Dormancy::Hot).unwrap();
        let repairable = b.and_gate("Repairable", &[r1, r2]).unwrap();
        let top = b.or_gate("Top", &[spare, repairable]).unwrap();
        let dft = b.build(top).unwrap();
        let (reduced, stats) = collapse_static_modules(&dft).unwrap();
        assert_eq!(stats.collapsed_modules, 0);
        assert_eq!(reduced.num_elements(), dft.num_elements());

        // A fully static tree's top is itself a maximal static module, but the
        // top is never collapsed.
        let mut b2 = DftBuilder::new();
        let x = b2.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b2.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let top2 = b2.and_gate("Top", &[x, y]).unwrap();
        let static_dft = b2.build(top2).unwrap();
        let (kept, stats2) = collapse_static_modules(&static_dft).unwrap();
        assert_eq!(stats2.collapsed_modules, 0);
        assert_eq!(kept.num_elements(), 3);
    }
}
