//! # dft — dynamic fault tree modelling
//!
//! This crate provides the *syntactic* side of dynamic fault trees (DFTs) as used
//! by Boudali, Crouzen & Stoelinga (DSN 2007): basic events with dormancy factors,
//! static gates (AND, OR, voting), dynamic gates (PAND, SPARE, FDEP, SEQ), the
//! inhibition extension of Section 7.1 and the repair extension of Section 7.2.
//! The semantic translation to I/O-IMCs and the analysis live in the `dft-core`
//! crate.
//!
//! A DFT is a directed acyclic graph whose leaves are basic events and whose
//! internal vertices are gates; one element is designated the *top event* (system
//! failure).  The crate offers:
//!
//! * a typed builder API ([`DftBuilder`]),
//! * wellformedness validation ([`validate`]),
//! * a parser and printer for the Galileo textual format ([`galileo`]) used by the
//!   original DIFTree/Galileo tool and by the paper's case studies,
//! * detection of independent modules and the static/dynamic hybrid
//!   decomposition ([`modules`]), the structural notion behind the paper's
//!   modularity discussion,
//! * a hash-consed BDD engine ([`bdd`]) that solves static (sub)trees
//!   combinatorially.
//!
//! # Example
//!
//! The pump unit of the cardiac assist system (Section 5.1): two primary pumps
//! sharing one cold spare; the unit fails when all three pumps have failed.
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//!
//! # fn main() -> Result<(), dft::Error> {
//! let mut b = DftBuilder::new();
//! let pa = b.basic_event("PA", 1.0, Dormancy::Hot)?;
//! let pb = b.basic_event("PB", 1.0, Dormancy::Hot)?;
//! let ps = b.basic_event("PS", 1.0, Dormancy::Cold)?;
//! let pump_a = b.spare_gate("Pump_A", &[pa, ps])?;
//! let pump_b = b.spare_gate("Pump_B", &[pb, ps])?;
//! let unit = b.and_gate("Pump_unit", &[pump_a, pump_b])?;
//! let dft = b.build(unit)?;
//! assert_eq!(dft.num_elements(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod builder;
pub mod element;
pub mod galileo;
pub mod json;
pub mod json_format;
pub mod modules;
pub mod tree;
pub mod validate;

pub use builder::DftBuilder;
pub use element::{BasicEvent, Dormancy, Element, ElementId, Gate, GateKind};
pub use tree::Dft;

use std::fmt;

/// Errors produced while building, parsing or validating a DFT.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An element name was used twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced element does not exist.
    UnknownElement {
        /// The missing name or id description.
        name: String,
    },
    /// A basic event parameter is out of range.
    InvalidParameter {
        /// Element name.
        name: String,
        /// Description of the violated constraint.
        message: String,
    },
    /// A gate has an invalid number or kind of inputs.
    InvalidGate {
        /// Gate name.
        name: String,
        /// Description of the violated constraint.
        message: String,
    },
    /// The DFT contains a cycle.
    Cyclic {
        /// Name of an element on the cycle.
        name: String,
    },
    /// The element graph is valid but violates a DFT restriction (e.g. a spare
    /// input is not an independent subtree).
    Wellformedness {
        /// Description of the violation.
        message: String,
    },
    /// The Galileo input could not be parsed.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The JSON interchange document could not be decoded.
    Json {
        /// Description of the problem, naming the offending node where known.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateName { name } => write!(f, "duplicate element name '{name}'"),
            Error::UnknownElement { name } => write!(f, "unknown element '{name}'"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter for '{name}': {message}")
            }
            Error::InvalidGate { name, message } => write!(f, "invalid gate '{name}': {message}"),
            Error::Cyclic { name } => write!(f, "cycle through element '{name}'"),
            Error::Wellformedness { message } => write!(f, "ill-formed DFT: {message}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Json { message } => write!(f, "invalid JSON fault tree: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
