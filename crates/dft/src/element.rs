//! DFT elements: basic events and gates.

use std::fmt;

/// Identifier of an element within one [`Dft`](crate::tree::Dft).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub(crate) u32);

impl ElementId {
    /// Creates an element id from a raw index.
    pub fn new(index: u32) -> ElementId {
        ElementId(index)
    }

    /// The raw index of this element.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The dormancy class of a basic event (Section 2 of the paper).
///
/// A dormant basic event fails with its nominal rate λ multiplied by the dormancy
/// factor α:
///
/// * **cold** (α = 0): cannot fail while dormant,
/// * **hot** (α = 1): the failure rate is unaffected by dormancy,
/// * **warm** (0 < α < 1): the rate is reduced but not zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dormancy {
    /// Cold spare behaviour, α = 0.
    Cold,
    /// Hot spare behaviour, α = 1.
    Hot,
    /// Warm spare behaviour with the given factor 0 < α < 1.
    Warm(f64),
}

impl Dormancy {
    /// The dormancy factor α.
    pub fn factor(self) -> f64 {
        match self {
            Dormancy::Cold => 0.0,
            Dormancy::Hot => 1.0,
            Dormancy::Warm(alpha) => alpha,
        }
    }

    /// Classifies a raw dormancy factor.
    ///
    /// Values ≤ 0 map to [`Dormancy::Cold`], values ≥ 1 map to [`Dormancy::Hot`].
    pub fn from_factor(alpha: f64) -> Dormancy {
        if alpha <= 0.0 {
            Dormancy::Cold
        } else if alpha >= 1.0 {
            Dormancy::Hot
        } else {
            Dormancy::Warm(alpha)
        }
    }
}

impl fmt::Display for Dormancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dormancy::Cold => write!(f, "cold"),
            Dormancy::Hot => write!(f, "hot"),
            Dormancy::Warm(a) => write!(f, "warm({a})"),
        }
    }
}

/// A basic event: a leaf of the fault tree representing a physical component with
/// an exponentially distributed time to failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasicEvent {
    /// Active failure rate λ.
    pub rate: f64,
    /// Dormancy class (determines the dormant failure rate α·λ).
    pub dormancy: Dormancy,
    /// Repair rate µ, if the component is repairable (Section 7.2 extension).
    pub repair_rate: Option<f64>,
}

impl BasicEvent {
    /// The failure rate while dormant, α·λ.
    pub fn dormant_rate(&self) -> f64 {
        self.rate * self.dormancy.factor()
    }
}

/// The kind of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Static AND gate: fails when all inputs have failed.
    And,
    /// Static OR gate: fails when any input has failed.
    Or,
    /// Static voting (K-out-of-M) gate: fails when at least `k` inputs have failed.
    Voting {
        /// Failure threshold.
        k: u32,
    },
    /// Priority-AND: fails when all inputs fail *in left-to-right order*.
    Pand,
    /// Spare gate: input 0 is the primary, the remaining inputs are spares claimed
    /// in order; fails when the primary and every spare is failed or unavailable.
    Spare,
    /// Functional dependency: input 0 is the trigger, the remaining inputs are the
    /// dependent elements whose failure is forced when the trigger fires.  Its
    /// output is a dummy (never used for the failure computation).
    Fdep,
    /// Sequence enforcing gate: inputs can only fail from left to right (the paper
    /// notes it can be emulated by a cold spare gate; we model it directly).
    Seq,
    /// Inhibition (Section 7.1 extension): the gate propagates the failure of input
    /// 0 unless one of the remaining (inhibitor) inputs failed first.
    Inhibit,
}

impl GateKind {
    /// Returns `true` for the dynamic gates (PAND, SPARE, FDEP, SEQ, Inhibit), whose
    /// semantics depends on the order of input failures.
    pub fn is_dynamic(self) -> bool {
        !matches!(self, GateKind::And | GateKind::Or | GateKind::Voting { .. })
    }

    /// Short lower-case name, matching the Galileo keywords where they exist.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Voting { .. } => "vot",
            GateKind::Pand => "pand",
            GateKind::Spare => "spare",
            GateKind::Fdep => "fdep",
            GateKind::Seq => "seq",
            GateKind::Inhibit => "inhibit",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Voting { k } => write!(f, "{k}-of-n"),
            other => write!(f, "{}", other.name()),
        }
    }
}

/// A gate with ordered inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// What kind of gate this is.
    pub kind: GateKind,
    /// The ordered inputs (order matters for PAND, SPARE, FDEP, SEQ and Inhibit).
    pub inputs: Vec<ElementId>,
    /// Repair rate of the *gate itself*; only meaningful for repairable analyses
    /// where gates recover as soon as enough inputs are repaired (the gate-level
    /// value is unused in that case and normally `None`).
    pub repairable: bool,
}

/// A DFT element: either a basic event or a gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A leaf basic event.
    BasicEvent(BasicEvent),
    /// An internal gate.
    Gate(Gate),
}

impl Element {
    /// Returns the basic event data if this element is a basic event.
    pub fn as_basic_event(&self) -> Option<&BasicEvent> {
        match self {
            Element::BasicEvent(be) => Some(be),
            Element::Gate(_) => None,
        }
    }

    /// Returns the gate data if this element is a gate.
    pub fn as_gate(&self) -> Option<&Gate> {
        match self {
            Element::Gate(g) => Some(g),
            Element::BasicEvent(_) => None,
        }
    }

    /// The inputs of this element (empty for basic events).
    pub fn inputs(&self) -> &[ElementId] {
        match self {
            Element::BasicEvent(_) => &[],
            Element::Gate(g) => &g.inputs,
        }
    }

    /// Returns `true` if this element is a dynamic gate.
    pub fn is_dynamic_gate(&self) -> bool {
        matches!(self, Element::Gate(g) if g.kind.is_dynamic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormancy_factors() {
        assert_eq!(Dormancy::Cold.factor(), 0.0);
        assert_eq!(Dormancy::Hot.factor(), 1.0);
        assert_eq!(Dormancy::Warm(0.3).factor(), 0.3);
        assert_eq!(Dormancy::from_factor(0.0), Dormancy::Cold);
        assert_eq!(Dormancy::from_factor(1.0), Dormancy::Hot);
        assert_eq!(Dormancy::from_factor(1.5), Dormancy::Hot);
        assert_eq!(Dormancy::from_factor(-0.2), Dormancy::Cold);
        assert_eq!(Dormancy::from_factor(0.5), Dormancy::Warm(0.5));
        assert_eq!(Dormancy::Cold.to_string(), "cold");
        assert_eq!(Dormancy::Warm(0.25).to_string(), "warm(0.25)");
    }

    #[test]
    fn dormant_rate_is_scaled() {
        let be = BasicEvent {
            rate: 2.0,
            dormancy: Dormancy::Warm(0.5),
            repair_rate: None,
        };
        assert_eq!(be.dormant_rate(), 1.0);
        let cold = BasicEvent {
            rate: 2.0,
            dormancy: Dormancy::Cold,
            repair_rate: None,
        };
        assert_eq!(cold.dormant_rate(), 0.0);
    }

    #[test]
    fn gate_kind_classification() {
        assert!(!GateKind::And.is_dynamic());
        assert!(!GateKind::Or.is_dynamic());
        assert!(!GateKind::Voting { k: 2 }.is_dynamic());
        assert!(GateKind::Pand.is_dynamic());
        assert!(GateKind::Spare.is_dynamic());
        assert!(GateKind::Fdep.is_dynamic());
        assert!(GateKind::Seq.is_dynamic());
        assert!(GateKind::Inhibit.is_dynamic());
        assert_eq!(GateKind::Voting { k: 2 }.to_string(), "2-of-n");
        assert_eq!(GateKind::Pand.to_string(), "pand");
    }

    #[test]
    fn element_accessors() {
        let be = Element::BasicEvent(BasicEvent {
            rate: 1.0,
            dormancy: Dormancy::Hot,
            repair_rate: None,
        });
        assert!(be.as_basic_event().is_some());
        assert!(be.as_gate().is_none());
        assert!(be.inputs().is_empty());
        assert!(!be.is_dynamic_gate());

        let gate = Element::Gate(Gate {
            kind: GateKind::Spare,
            inputs: vec![ElementId::new(0), ElementId::new(1)],
            repairable: false,
        });
        assert!(gate.as_gate().is_some());
        assert!(gate.as_basic_event().is_none());
        assert_eq!(gate.inputs().len(), 2);
        assert!(gate.is_dynamic_gate());
    }

    #[test]
    fn element_id_display() {
        assert_eq!(ElementId::new(4).to_string(), "e4");
        assert_eq!(ElementId::new(4).index(), 4);
    }
}
