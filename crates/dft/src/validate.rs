//! Wellformedness validation of DFTs.
//!
//! The checks follow the formal syntax of the paper (a DFT is a directed acyclic
//! graph with typed vertices) plus the restrictions that keep the *generalised*
//! spare semantics of Section 6 meaningful:
//!
//! * gates have sensible arities (a voting gate's threshold is within range, an
//!   FDEP gate has a trigger and at least one dependent, …);
//! * the graph is acyclic;
//! * every input of a spare gate roots an *independent subtree*: no element outside
//!   that subtree uses one of its strict descendants, and the root itself is only
//!   used by spare gates (sharing a spare between spare gates is allowed, sharing
//!   between a spare gate and, say, an AND gate is not — the activation status
//!   would be ambiguous, cf. Section 6.1);
//! * an element is the *primary* (first input) of at most one spare gate.

use crate::element::{Element, ElementId, GateKind};
use crate::tree::Dft;
use crate::{Error, Result};
use std::collections::BTreeSet;

/// Validates a DFT.
///
/// # Errors
///
/// Returns the first violation found, with a message naming the offending
/// elements.
pub fn validate(dft: &Dft) -> Result<()> {
    check_arities(dft)?;
    check_acyclic(dft)?;
    check_spare_inputs(dft)?;
    Ok(())
}

fn check_arities(dft: &Dft) -> Result<()> {
    for id in dft.elements() {
        let Element::Gate(gate) = dft.element(id) else {
            continue;
        };
        let name = dft.name(id).to_owned();
        let n = gate.inputs.len();
        let err = |message: String| {
            Err(Error::InvalidGate {
                name: name.clone(),
                message,
            })
        };
        match gate.kind {
            GateKind::And | GateKind::Or => {
                if n == 0 {
                    return err("needs at least one input".to_owned());
                }
            }
            GateKind::Voting { k } => {
                if n == 0 {
                    return err("needs at least one input".to_owned());
                }
                if k == 0 || k as usize > n {
                    return err(format!("voting threshold {k} outside 1..={n}"));
                }
            }
            GateKind::Pand | GateKind::Seq => {
                if n < 2 {
                    return err("needs at least two inputs".to_owned());
                }
            }
            GateKind::Spare => {
                if n < 2 {
                    return err("needs a primary and at least one spare".to_owned());
                }
                let distinct: BTreeSet<ElementId> = gate.inputs.iter().copied().collect();
                if distinct.len() != n {
                    return err("the same element appears twice among the inputs".to_owned());
                }
            }
            GateKind::Fdep => {
                if n < 2 {
                    return err("needs a trigger and at least one dependent event".to_owned());
                }
                if gate.inputs[1..].contains(&gate.inputs[0]) {
                    return err("the trigger cannot also be a dependent event".to_owned());
                }
            }
            GateKind::Inhibit => {
                if n < 2 {
                    return err("needs a subject and at least one inhibitor".to_owned());
                }
                if gate.inputs[1..].contains(&gate.inputs[0]) {
                    return err("an element cannot inhibit itself".to_owned());
                }
            }
        }
    }
    Ok(())
}

fn check_acyclic(dft: &Dft) -> Result<()> {
    // Colours: 0 = unvisited, 1 = on stack, 2 = done.
    let n = dft.num_elements();
    let mut colour = vec![0u8; n];
    for start in dft.elements() {
        if colour[start.index()] != 0 {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next input index).
        let mut stack: Vec<(ElementId, usize)> = vec![(start, 0)];
        colour[start.index()] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let inputs = dft.element(node).inputs();
            if *next < inputs.len() {
                let child = inputs[*next];
                *next += 1;
                match colour[child.index()] {
                    0 => {
                        colour[child.index()] = 1;
                        stack.push((child, 0));
                    }
                    1 => {
                        return Err(Error::Cyclic {
                            name: dft.name(child).to_owned(),
                        });
                    }
                    _ => {}
                }
            } else {
                colour[node.index()] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

fn check_spare_inputs(dft: &Dft) -> Result<()> {
    let mut primaries: BTreeSet<ElementId> = BTreeSet::new();
    for gate_id in dft.spare_gates() {
        let gate = dft
            .element(gate_id)
            .as_gate()
            .expect("spare_gates returns gates");
        // An element may serve as the primary of at most one spare gate.
        let primary = gate.inputs[0];
        if !primaries.insert(primary) {
            return Err(Error::Wellformedness {
                message: format!(
                    "element '{}' is the primary of more than one spare gate",
                    dft.name(primary)
                ),
            });
        }
        for &input in &gate.inputs {
            // The independence restriction of Section 6.1 concerns *complex* spare
            // modules (sub-trees).  Basic events used as primaries or spares may be
            // observed by other gates (e.g. the CAS watches its primary motor with
            // a PAND gate), exactly as in the original DFT formalism.
            if dft.element(input).as_gate().is_none() {
                continue;
            }
            let subtree: BTreeSet<ElementId> = dft.descendants(input).into_iter().collect();
            // Strict descendants must not be referenced from outside the subtree.
            for &member in &subtree {
                if member == input {
                    continue;
                }
                for &parent in dft.parents(member) {
                    if !subtree.contains(&parent) {
                        return Err(Error::Wellformedness {
                            message: format!(
                                "spare-gate input '{}' of '{}' is not an independent subtree: \
                                 '{}' is also used by '{}'",
                                dft.name(input),
                                dft.name(gate_id),
                                dft.name(member),
                                dft.name(parent)
                            ),
                        });
                    }
                }
            }
            // The subtree root itself may only be used by spare gates (sharing).
            for &parent in dft.parents(input) {
                let parent_kind = dft
                    .element(parent)
                    .as_gate()
                    .map(|g| g.kind)
                    .expect("parents are gates");
                if parent_kind != GateKind::Spare && parent_kind != GateKind::Fdep {
                    return Err(Error::Wellformedness {
                        message: format!(
                            "spare-gate input '{}' is also an input of the {} gate '{}'; \
                             spare modules may only be shared among spare gates",
                            dft.name(input),
                            parent_kind,
                            dft.name(parent)
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DftBuilder;
    use crate::element::{BasicEvent, Dormancy, Gate};
    use std::collections::HashMap;

    #[test]
    fn valid_tree_passes() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Cold).unwrap();
        let s = b.spare_gate("S", &[x, y]).unwrap();
        let dft = b.build(s).unwrap();
        assert!(validate(&dft).is_ok());
    }

    #[test]
    fn voting_threshold_is_checked() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let v = b.voting_gate("V", 3, &[x, y]).unwrap();
        assert!(matches!(b.build(v), Err(Error::InvalidGate { .. })));

        let mut b2 = DftBuilder::new();
        let x = b2.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b2.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let v = b2.voting_gate("V", 0, &[x, y]).unwrap();
        assert!(b2.build(v).is_err());
    }

    #[test]
    fn spare_gate_needs_a_spare() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let s = b.spare_gate("S", &[x]).unwrap();
        assert!(b.build(s).is_err());
    }

    #[test]
    fn fdep_trigger_cannot_be_dependent() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let f = b.fdep_gate("F", x, &[x]).unwrap();
        assert!(b.build(f).is_err());
    }

    #[test]
    fn sharing_a_complex_spare_with_a_static_gate_is_rejected() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("P", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Cold).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Cold).unwrap();
        let module = b.and_gate("SpareModule", &[c, d]).unwrap();
        let spare = b.spare_gate("SpareGate", &[p, module]).unwrap();
        // The complex spare module is also an input of an AND gate: ambiguous
        // activation (who activates it?).
        let and = b.and_gate("And", &[module, spare]).unwrap();
        assert!(matches!(b.build(and), Err(Error::Wellformedness { .. })));
    }

    #[test]
    fn a_basic_event_primary_may_be_watched_by_other_gates() {
        // The CAS motor unit: MA is the primary of the spare gate *and* the second
        // input of a PAND gate observing the switch.
        let mut b = DftBuilder::new();
        let ms = b.basic_event("MS", 0.01, Dormancy::Hot).unwrap();
        let ma = b.basic_event("MA", 1.0, Dormancy::Hot).unwrap();
        let mb = b.basic_event("MB", 1.0, Dormancy::Cold).unwrap();
        let switch = b.pand_gate("Switch", &[ms, ma]).unwrap();
        let motors = b.spare_gate("Motors", &[ma, mb]).unwrap();
        let unit = b.or_gate("Motor_unit", &[switch, motors]).unwrap();
        assert!(b.build(unit).is_ok());
    }

    #[test]
    fn sharing_a_spare_between_spare_gates_is_allowed() {
        let mut b = DftBuilder::new();
        let pa = b.basic_event("PA", 1.0, Dormancy::Hot).unwrap();
        let pb = b.basic_event("PB", 1.0, Dormancy::Hot).unwrap();
        let ps = b.basic_event("PS", 1.0, Dormancy::Cold).unwrap();
        let ga = b.spare_gate("GA", &[pa, ps]).unwrap();
        let gb = b.spare_gate("GB", &[pb, ps]).unwrap();
        let top = b.and_gate("Top", &[ga, gb]).unwrap();
        assert!(b.build(top).is_ok());
    }

    #[test]
    fn primary_shared_between_two_spare_gates_is_rejected() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("P", 1.0, Dormancy::Hot).unwrap();
        let s1 = b.basic_event("S1", 1.0, Dormancy::Cold).unwrap();
        let s2 = b.basic_event("S2", 1.0, Dormancy::Cold).unwrap();
        let g1 = b.spare_gate("G1", &[p, s1]).unwrap();
        let g2 = b.spare_gate("G2", &[p, s2]).unwrap();
        let top = b.and_gate("Top", &[g1, g2]).unwrap();
        assert!(matches!(b.build(top), Err(Error::Wellformedness { .. })));
    }

    #[test]
    fn non_independent_spare_subtree_is_rejected() {
        let mut b = DftBuilder::new();
        let c = b.basic_event("C", 1.0, Dormancy::Hot).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Hot).unwrap();
        let spare_module = b.and_gate("SpareModule", &[c, d]).unwrap();
        let p = b.basic_event("P", 1.0, Dormancy::Hot).unwrap();
        let g = b.spare_gate("G", &[p, spare_module]).unwrap();
        // D (a strict descendant of the spare module) is also used elsewhere.
        let top = b.or_gate("Top", &[g, d]).unwrap();
        assert!(matches!(b.build(top), Err(Error::Wellformedness { .. })));
    }

    #[test]
    fn cycles_are_detected() {
        // Cycles cannot be built through the builder, so assemble a malformed DFT
        // directly: A -> B -> A.
        let names = vec!["A".to_owned(), "B".to_owned()];
        let elements = vec![
            Element::Gate(Gate {
                kind: GateKind::Or,
                inputs: vec![ElementId::new(1)],
                repairable: false,
            }),
            Element::Gate(Gate {
                kind: GateKind::Or,
                inputs: vec![ElementId::new(0)],
                repairable: false,
            }),
        ];
        let by_name: HashMap<String, ElementId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ElementId::new(i as u32)))
            .collect();
        let dft = Dft::assemble(names, elements, by_name, ElementId::new(0));
        assert!(matches!(validate(&dft), Err(Error::Cyclic { .. })));
    }

    #[test]
    fn empty_and_gate_is_rejected() {
        let names = vec!["G".to_owned(), "X".to_owned()];
        let elements = vec![
            Element::Gate(Gate {
                kind: GateKind::And,
                inputs: vec![],
                repairable: false,
            }),
            Element::BasicEvent(BasicEvent {
                rate: 1.0,
                dormancy: Dormancy::Hot,
                repair_rate: None,
            }),
        ];
        let by_name: HashMap<String, ElementId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ElementId::new(i as u32)))
            .collect();
        let dft = Dft::assemble(names, elements, by_name, ElementId::new(0));
        assert!(matches!(validate(&dft), Err(Error::InvalidGate { .. })));
    }
}
