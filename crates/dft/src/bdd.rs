//! A dependency-free reduced ordered binary decision diagram (BDD) engine for
//! *static* fault trees.
//!
//! "BDDs Strike Back" (see PAPERS.md) observes that most industrial DFTs are
//! dominated by purely static (AND/OR/voting) subtrees, which are exponentially
//! cheaper to analyse combinatorially than through a state space.  This module
//! provides that combinatorial engine: a hash-consed BDD built by Shannon
//! decomposition over the fixed [`ElementId`] order, with
//!
//! * exact [`unreliability`](Bdd::unreliability) /
//!   [`unreliability_curve`](Bdd::unreliability_curve) evaluation from
//!   exponential leaf probabilities (one linear bottom-up pass per time point),
//! * a MOCUS-style [`minimal_cut_sets`](Bdd::minimal_cut_sets) export as a
//!   cross-check against the classical cut-set view, and
//! * raw [`nodes`](Bdd::nodes) / [`from_parts`](Bdd::from_parts) access so a
//!   binary codec can persist a compiled diagram.
//!
//! The hybrid analysis backend (`dft-core`) compiles the static "crown" of a
//! tree to a BDD whose leaves are basic events *and* the exits of dynamic
//! cores; [`Bdd::build`] therefore takes an `is_leaf` predicate instead of
//! hard-coding "leaf = basic event".
//!
//! # Example
//!
//! ```
//! use dft::bdd::Bdd;
//! use dft::{DftBuilder, Dormancy};
//! # fn main() -> Result<(), dft::Error> {
//! let mut b = DftBuilder::new();
//! let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
//! let y = b.basic_event("Y", 2.0, Dormancy::Hot)?;
//! let top = b.and_gate("Top", &[x, y])?;
//! let dft = b.build(top)?;
//! let bdd = Bdd::for_tree(&dft)?;
//! let t = 0.5f64;
//! let exact = (1.0 - (-t).exp()) * (1.0 - (-2.0 * t).exp());
//! assert!((bdd.unreliability(&dft, t) - exact).abs() < 1e-15);
//! assert_eq!(bdd.minimal_cut_sets(), vec![vec![x, y]]);
//! # Ok(())
//! # }
//! ```

use crate::element::{Element, ElementId, GateKind};
use crate::tree::Dft;
use crate::{Error, Result};
use std::collections::HashMap;

/// Reference to the constant-false terminal.
const FALSE: u32 = 0;
/// Reference to the constant-true terminal.
const TRUE: u32 = 1;
/// Sentinel variable index carried by the two terminals; larger than any real
/// variable, so terminals sort after every internal node in the variable order.
const NO_VAR: u32 = u32::MAX;

/// One node of a [`Bdd`].
///
/// Nodes `0` and `1` are the constant-false and constant-true terminals (with
/// `var == u32::MAX` and self-referential children); every other node tests a
/// variable and branches to `lo` (variable false, i.e. the leaf has not failed)
/// or `hi` (variable true).  In a compacted diagram children always have a
/// *smaller* index than their parent, so a single forward pass visits children
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddNode {
    /// The variable tested by this node: the raw index of a leaf [`ElementId`].
    pub var: u32,
    /// Successor when the variable is false.
    pub lo: u32,
    /// Successor when the variable is true.
    pub hi: u32,
}

/// A reduced ordered BDD over the leaves of a static fault tree.
///
/// The diagram is canonical for its variable order (ascending [`ElementId`]):
/// equivalent Boolean functions over the same leaves share the same node
/// structure, and `lo == hi` redundancy never survives construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bdd {
    /// Compacted node arena: terminals first, children before parents.
    nodes: Vec<BddNode>,
    /// The root node of the function.
    root: u32,
}

/// Hash-consing construction state: a unique table for nodes plus a memo table
/// for the `ite` (if-then-else) operator, the single primitive every gate is
/// lowered to.
struct Builder {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            nodes: vec![
                BddNode {
                    var: NO_VAR,
                    lo: FALSE,
                    hi: FALSE,
                },
                BddNode {
                    var: NO_VAR,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    fn var_of(&self, f: u32) -> u32 {
        self.nodes[f as usize].var
    }

    /// Returns the (hash-consed) node testing `var`; eliminates `lo == hi`
    /// redundancy, so the arena only ever holds reduced diagrams.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(BddNode { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// The cofactor of `f` with `var` fixed to `value`.  Because variables are
    /// ordered, `f` depends on `var` only if its root tests exactly `var`.
    fn cofactor(&self, f: u32, var: u32, value: bool) -> u32 {
        let node = self.nodes[f as usize];
        if node.var == var {
            if value {
                node.hi
            } else {
                node.lo
            }
        } else {
            f
        }
    }

    /// `if f then g else h`, by Shannon decomposition on the topmost variable.
    fn ite(&mut self, f: u32, g: u32, h: u32) -> u32 {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let var = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let f0 = self.cofactor(f, var, false);
        let g0 = self.cofactor(g, var, false);
        let h0 = self.cofactor(h, var, false);
        let lo = self.ite(f0, g0, h0);
        let f1 = self.cofactor(f, var, true);
        let g1 = self.cofactor(g, var, true);
        let h1 = self.cofactor(h, var, true);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn and(&mut self, f: u32, g: u32) -> u32 {
        self.ite(f, g, FALSE)
    }

    fn or(&mut self, f: u32, g: u32) -> u32 {
        self.ite(f, TRUE, g)
    }

    /// "At least `k` of `inputs` are true", memoised on (threshold, suffix).
    fn voting(&mut self, k: u32, inputs: &[u32]) -> u32 {
        fn go(
            b: &mut Builder,
            memo: &mut HashMap<(u32, usize), u32>,
            k: u32,
            i: usize,
            inputs: &[u32],
        ) -> u32 {
            if k == 0 {
                return TRUE;
            }
            if (inputs.len() - i) < k as usize {
                return FALSE;
            }
            if let Some(&r) = memo.get(&(k, i)) {
                return r;
            }
            let hi = go(b, memo, k - 1, i + 1, inputs);
            let lo = go(b, memo, k, i + 1, inputs);
            let r = b.ite(inputs[i], hi, lo);
            memo.insert((k, i), r);
            r
        }
        let mut memo = HashMap::new();
        go(self, &mut memo, k, 0, inputs)
    }
}

/// Lowers the element `e` of `dft` to a BDD function, memoised per element so
/// shared sub-DAGs are compiled once.
fn func_of<F: Fn(ElementId) -> bool>(
    b: &mut Builder,
    dft: &Dft,
    memo: &mut [Option<u32>],
    is_leaf: &F,
    e: ElementId,
) -> Result<u32> {
    if let Some(f) = memo[e.index()] {
        return Ok(f);
    }
    let f = if is_leaf(e) {
        b.mk(e.index() as u32, FALSE, TRUE)
    } else {
        let Element::Gate(gate) = dft.element(e) else {
            // A basic event that the caller did not declare a leaf.
            return Err(Error::InvalidGate {
                name: dft.name(e).to_owned(),
                message: "basic event reached but not declared a BDD leaf".to_owned(),
            });
        };
        let mut inputs = Vec::with_capacity(gate.inputs.len());
        for &input in &gate.inputs {
            inputs.push(func_of(b, dft, memo, is_leaf, input)?);
        }
        match gate.kind {
            GateKind::And => {
                let mut acc = TRUE;
                for f in inputs {
                    acc = b.and(acc, f);
                }
                acc
            }
            GateKind::Or => {
                let mut acc = FALSE;
                for f in inputs {
                    acc = b.or(acc, f);
                }
                acc
            }
            GateKind::Voting { k } => b.voting(k, &inputs),
            kind => {
                return Err(Error::InvalidGate {
                    name: dft.name(e).to_owned(),
                    message: format!("a {kind} gate cannot be compiled to a BDD"),
                });
            }
        }
    };
    memo[e.index()] = Some(f);
    Ok(f)
}

impl Bdd {
    /// Compiles the function of `root` over `dft`, treating every element for
    /// which `is_leaf` returns `true` as a BDD variable and descending through
    /// static gates only.
    ///
    /// The variable order is the ascending [`ElementId`] order of the leaves.
    /// The returned diagram is compacted: only nodes reachable from the root
    /// are kept, renumbered so children precede parents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGate`] if a dynamic gate (or a basic event not
    /// declared a leaf) is reachable from `root` without crossing a leaf.
    pub fn build<F: Fn(ElementId) -> bool>(dft: &Dft, root: ElementId, is_leaf: F) -> Result<Bdd> {
        let mut b = Builder::new();
        let mut memo = vec![None; dft.num_elements()];
        let f = func_of(&mut b, dft, &mut memo, &is_leaf, root)?;
        Ok(Bdd::compact(&b.nodes, f))
    }

    /// Compiles a fully static tree: every basic event is a leaf.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGate`] if the tree contains a dynamic gate.
    pub fn for_tree(dft: &Dft) -> Result<Bdd> {
        Bdd::build(dft, dft.top(), |e| {
            dft.element(e).as_basic_event().is_some()
        })
    }

    /// Keeps only the nodes reachable from `root`, renumbered in post-order so
    /// every child has a smaller index than its parent.
    fn compact(nodes: &[BddNode], root: u32) -> Bdd {
        let mut map = vec![u32::MAX; nodes.len()];
        map[FALSE as usize] = FALSE;
        map[TRUE as usize] = TRUE;
        let mut out = vec![nodes[FALSE as usize], nodes[TRUE as usize]];
        let mut stack = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if map[n as usize] != u32::MAX {
                continue;
            }
            let node = nodes[n as usize];
            if expanded {
                map[n as usize] = out.len() as u32;
                out.push(BddNode {
                    var: node.var,
                    lo: map[node.lo as usize],
                    hi: map[node.hi as usize],
                });
            } else {
                stack.push((n, true));
                stack.push((node.lo, false));
                stack.push((node.hi, false));
            }
        }
        Bdd {
            nodes: out,
            root: map[root as usize],
        }
    }

    /// Reassembles a diagram from raw parts (the inverse of [`nodes`](Self::nodes)
    /// and [`root`](Self::root)), validating every structural invariant so that
    /// untrusted bytes can never produce an out-of-bounds or non-reduced
    /// diagram.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Wellformedness`] if the terminals are malformed, a
    /// child does not precede its parent, a node is redundant (`lo == hi`), the
    /// variable order is violated, or the root is out of range.
    pub fn from_parts(nodes: Vec<BddNode>, root: u32) -> Result<Bdd> {
        let malformed = |message: String| Error::Wellformedness { message };
        if nodes.len() < 2 || nodes.len() > u32::MAX as usize {
            return Err(malformed(format!("BDD arena of {} nodes", nodes.len())));
        }
        let terminals = [
            BddNode {
                var: NO_VAR,
                lo: FALSE,
                hi: FALSE,
            },
            BddNode {
                var: NO_VAR,
                lo: TRUE,
                hi: TRUE,
            },
        ];
        if nodes[0] != terminals[0] || nodes[1] != terminals[1] {
            return Err(malformed("BDD terminals are malformed".to_owned()));
        }
        for (i, node) in nodes.iter().enumerate().skip(2) {
            if node.var == NO_VAR {
                return Err(malformed(format!("BDD node {i} has no variable")));
            }
            if node.lo as usize >= i || node.hi as usize >= i {
                return Err(malformed(format!("BDD node {i} has a forward child")));
            }
            if node.lo == node.hi {
                return Err(malformed(format!("BDD node {i} is redundant")));
            }
            for child in [node.lo, node.hi] {
                if nodes[child as usize].var <= node.var {
                    return Err(malformed(format!("BDD node {i} violates variable order")));
                }
            }
        }
        if root as usize >= nodes.len() {
            return Err(malformed(format!("BDD root {root} out of range")));
        }
        Ok(Bdd { nodes, root })
    }

    /// The node arena (terminals first, children before parents).
    pub fn nodes(&self) -> &[BddNode] {
        &self.nodes
    }

    /// The root node reference.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Total node count, including the two terminals.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The distinct variables the function actually depends on, ascending.
    pub fn support(&self) -> Vec<ElementId> {
        let mut vars: Vec<u32> = self.nodes.iter().skip(2).map(|n| n.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars.into_iter().map(ElementId::new).collect()
    }

    /// The probability that the function is true when leaf `v` is true
    /// independently with probability `leaf_probability[v]`.
    ///
    /// One bottom-up pass: `P(node) = q·P(hi) + (1−q)·P(lo)`, exact because
    /// every variable appears at most once on any root-to-terminal path.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_probability` is shorter than some variable index in the
    /// diagram (callers pass one entry per element of the originating tree).
    pub fn probability(&self, leaf_probability: &[f64]) -> f64 {
        let mut p = vec![0.0f64; self.nodes.len()];
        p[TRUE as usize] = 1.0;
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            let q = leaf_probability[node.var as usize];
            p[i] = q * p[node.hi as usize] + (1.0 - q) * p[node.lo as usize];
        }
        p[self.root as usize]
    }

    /// System unreliability at mission time `t` for a fully static tree: the
    /// probability of the root function with each basic event failed
    /// independently with probability `1 − e^(−λt)`.
    ///
    /// # Panics
    ///
    /// Panics if a diagram variable is not a basic event of `dft` (use
    /// [`probability`](Self::probability) directly for hybrid crowns whose
    /// leaves include core exits).
    pub fn unreliability(&self, dft: &Dft, t: f64) -> f64 {
        self.probability(&exponential_probabilities(dft, t))
    }

    /// [`unreliability`](Self::unreliability) at each of the given times.
    ///
    /// # Panics
    ///
    /// Panics if a diagram variable is not a basic event of `dft`.
    pub fn unreliability_curve(&self, dft: &Dft, times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.unreliability(dft, t)).collect()
    }

    /// The minimal cut sets of the (monotone) function: every inclusion-minimal
    /// set of leaves whose joint failure fails the system, each set ascending
    /// by id, sets in lexicographic order.
    ///
    /// This is the MOCUS-style cross-check: for static fault trees the BDD and
    /// the cut-set representation must describe the same function.  The export
    /// is exponential in the worst case — use it on the module-sized trees it
    /// is meant to sanity-check, not on full industrial crowns.
    pub fn minimal_cut_sets(&self) -> Vec<Vec<ElementId>> {
        // Two-pointer subset test over ascending sets.
        fn subset(a: &[u32], b: &[u32]) -> bool {
            let mut i = 0;
            for &x in b {
                if i == a.len() {
                    return true;
                }
                if a[i] == x {
                    i += 1;
                }
            }
            i == a.len()
        }
        let mut cuts: Vec<Vec<Vec<u32>>> = vec![Vec::new(), vec![Vec::new()]];
        for node in self.nodes.iter().skip(2) {
            let lo = &cuts[node.lo as usize];
            let hi = &cuts[node.hi as usize];
            let mut sets: Vec<Vec<u32>> = lo.clone();
            for s in hi {
                // {var} ∪ s is minimal unless some lo-cut is contained in it;
                // lo-cuts only mention variables below `var`, so the test
                // reduces to containment in `s`.
                if lo.iter().any(|l| subset(l, s)) {
                    continue;
                }
                let mut cut = Vec::with_capacity(s.len() + 1);
                cut.push(node.var);
                cut.extend_from_slice(s);
                sets.push(cut);
            }
            cuts.push(sets);
        }
        let mut out: Vec<Vec<ElementId>> = cuts[self.root as usize]
            .iter()
            .map(|s| s.iter().map(|&v| ElementId::new(v)).collect())
            .collect();
        out.sort();
        out
    }
}

/// Per-element failure probabilities at mission time `t`: `1 − e^(−λt)` at each
/// basic event, `0.0` at gates.  The vector is indexed by raw element id, ready
/// for [`Bdd::probability`].
///
/// Dormancy is irrelevant here: a static tree has no spare gates, so every
/// basic event is always active.
pub fn exponential_probabilities(dft: &Dft, t: f64) -> Vec<f64> {
    dft.elements()
        .map(|e| match dft.element(e).as_basic_event() {
            Some(be) => -(-be.rate * t).exp_m1(),
            None => 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DftBuilder;
    use crate::element::Dormancy;

    /// Brute-force evaluation of a static tree under one failure assignment.
    fn eval(dft: &Dft, e: ElementId, failed: &[bool]) -> bool {
        match dft.element(e) {
            Element::BasicEvent(_) => failed[e.index()],
            Element::Gate(g) => {
                let hits = g.inputs.iter().filter(|&&i| eval(dft, i, failed)).count();
                match g.kind {
                    GateKind::And => hits == g.inputs.len(),
                    GateKind::Or => hits > 0,
                    GateKind::Voting { k } => hits >= k as usize,
                    _ => unreachable!("static trees only"),
                }
            }
        }
    }

    /// Brute-force probability: sum over all assignments of the leaves.
    fn brute_force(dft: &Dft, probs: &[f64]) -> f64 {
        let leaves = dft.basic_events();
        let mut total = 0.0;
        for mask in 0..(1u32 << leaves.len()) {
            let mut failed = vec![false; dft.num_elements()];
            let mut weight = 1.0;
            for (bit, &leaf) in leaves.iter().enumerate() {
                let f = mask & (1 << bit) != 0;
                failed[leaf.index()] = f;
                weight *= if f {
                    probs[leaf.index()]
                } else {
                    1.0 - probs[leaf.index()]
                };
            }
            if eval(dft, dft.top(), &failed) {
                total += weight;
            }
        }
        total
    }

    fn two_of_three() -> Dft {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 2.0, Dormancy::Hot).unwrap();
        let z = b.basic_event("Z", 3.0, Dormancy::Hot).unwrap();
        let top = b.voting_gate("Top", 2, &[x, y, z]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn and_gate_probability_is_product() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let bdd = Bdd::for_tree(&dft).unwrap();
        let t = 0.7f64;
        let exact = (1.0 - (-t).exp()) * (1.0 - (-2.0 * t).exp());
        assert!((bdd.unreliability(&dft, t) - exact).abs() < 1e-15);
        assert_eq!(bdd.minimal_cut_sets(), vec![vec![x, y]]);
    }

    #[test]
    fn or_gate_probability_is_inclusion_exclusion() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let bdd = Bdd::for_tree(&dft).unwrap();
        let (qx, qy) = (0.3, 0.8);
        let mut probs = vec![0.0; dft.num_elements()];
        probs[x.index()] = qx;
        probs[y.index()] = qy;
        let exact = qx + qy - qx * qy;
        assert!((bdd.probability(&probs) - exact).abs() < 1e-15);
        assert_eq!(bdd.minimal_cut_sets(), vec![vec![x], vec![y]]);
    }

    #[test]
    fn voting_gate_shares_nodes() {
        let dft = two_of_three();
        let bdd = Bdd::for_tree(&dft).unwrap();
        // 2-of-3 needs one X node, two Y nodes and one shared Z node plus the
        // two terminals: canonical sharing keeps the diagram at 6 nodes.
        assert_eq!(bdd.node_count(), 6);
        assert_eq!(bdd.support().len(), 3);
        assert_eq!(bdd.minimal_cut_sets().len(), 3);
        let probs = [0.2, 0.5, 0.9, 0.0];
        let exact = brute_force(&dft, &probs);
        assert!((bdd.probability(&probs) - exact).abs() < 1e-15);
    }

    #[test]
    fn shared_subtrees_match_brute_force() {
        // A DAG, not a tree: X feeds both AND gates.
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let z = b.basic_event("Z", 1.0, Dormancy::Hot).unwrap();
        let left = b.and_gate("Left", &[x, y]).unwrap();
        let right = b.and_gate("Right", &[x, z]).unwrap();
        let top = b.or_gate("Top", &[left, right]).unwrap();
        let dft = b.build(top).unwrap();
        let bdd = Bdd::for_tree(&dft).unwrap();
        let probs = [0.4, 0.25, 0.7, 0.0, 0.0, 0.0];
        let exact = brute_force(&dft, &probs);
        assert!((bdd.probability(&probs) - exact).abs() < 1e-15);
        // MCS sees through the sharing: {X,Y} and {X,Z}.
        assert_eq!(bdd.minimal_cut_sets(), vec![vec![x, y], vec![x, z]]);
    }

    #[test]
    fn curve_matches_pointwise_queries() {
        let dft = two_of_three();
        let bdd = Bdd::for_tree(&dft).unwrap();
        let times = [0.0, 0.1, 1.0, 10.0];
        let curve = bdd.unreliability_curve(&dft, &times);
        for (&t, &v) in times.iter().zip(&curve) {
            assert_eq!(v, bdd.unreliability(&dft, t));
        }
        assert_eq!(curve[0], 0.0);
        assert!(curve[3] > 0.99);
    }

    #[test]
    fn dynamic_gates_are_rejected() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.pand_gate("Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(matches!(
            Bdd::for_tree(&dft),
            Err(Error::InvalidGate { .. })
        ));
        // ... but treating the PAND as a leaf stops the descent above it.
        let bdd = Bdd::build(&dft, dft.top(), |e| e == dft.top()).unwrap();
        assert_eq!(bdd.support(), vec![dft.top()]);
    }

    #[test]
    fn parts_round_trip_and_reject_malformed_arenas() {
        let dft = two_of_three();
        let bdd = Bdd::for_tree(&dft).unwrap();
        let rebuilt = Bdd::from_parts(bdd.nodes().to_vec(), bdd.root()).unwrap();
        assert_eq!(rebuilt, bdd);

        let ok = bdd.nodes().to_vec();
        let mut forward = ok.clone();
        forward[2].lo = 5;
        let mut redundant = ok.clone();
        redundant[3] = BddNode {
            var: redundant[3].var,
            lo: 0,
            hi: 0,
        };
        let mut unordered = ok.clone();
        unordered[3].var = 0;
        unordered[4].var = 0;
        let mut bad_terminal = ok.clone();
        bad_terminal[0].var = 7;
        for (nodes, root) in [
            (forward, bdd.root()),
            (redundant, bdd.root()),
            (unordered, bdd.root()),
            (bad_terminal, bdd.root()),
            (ok.clone(), ok.len() as u32),
            (Vec::new(), 0),
        ] {
            assert!(matches!(
                Bdd::from_parts(nodes, root),
                Err(Error::Wellformedness { .. })
            ));
        }
    }

    #[test]
    fn constant_functions_have_terminal_roots() {
        // A 1-of-1 voting gate of a single leaf is just that leaf; fixing the
        // leaf true via probability 1 yields certainty.
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let top = b.voting_gate("Top", 1, &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let bdd = Bdd::for_tree(&dft).unwrap();
        assert_eq!(bdd.node_count(), 3);
        assert_eq!(bdd.probability(&[1.0, 0.0]), 1.0);
        assert_eq!(bdd.probability(&[0.0, 0.0]), 0.0);
        assert_eq!(bdd.minimal_cut_sets(), vec![vec![x]]);
    }
}
