//! Programmatic construction of DFTs.

use crate::element::{BasicEvent, Dormancy, Element, ElementId, Gate, GateKind};
use crate::tree::Dft;
use crate::validate::validate;
use crate::{Error, Result};
use std::collections::HashMap;

/// Builder for [`Dft`] models.
///
/// Elements are added one by one; gates refer to the ids returned for their
/// inputs, so a DFT is necessarily built bottom-up (which also makes accidental
/// cycles impossible through this API).  [`build`](DftBuilder::build) runs the full
/// wellformedness validation.
///
/// # Examples
///
/// The motor unit of the cardiac assist system: a primary motor with a cold spare,
/// where the switching component only matters if it fails before the primary.
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// # fn main() -> Result<(), dft::Error> {
/// let mut b = DftBuilder::new();
/// let ms = b.basic_event("MS", 0.01, Dormancy::Hot)?;
/// let ma = b.basic_event("MA", 1.0, Dormancy::Hot)?;
/// let mb = b.basic_event("MB", 1.0, Dormancy::Cold)?;
/// let switch = b.pand_gate("Switch", &[ms, ma])?;
/// let motors = b.spare_gate("Motors", &[ma, mb])?;
/// let unit = b.or_gate("Motor_unit", &[switch, motors])?;
/// let dft = b.build(unit)?;
/// assert!(dft.is_dynamic());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DftBuilder {
    names: Vec<String>,
    elements: Vec<Element>,
    by_name: HashMap<String, ElementId>,
}

impl DftBuilder {
    /// Creates an empty builder.
    pub fn new() -> DftBuilder {
        DftBuilder::default()
    }

    fn add(&mut self, name: &str, element: Element) -> Result<ElementId> {
        if self.by_name.contains_key(name) {
            return Err(Error::DuplicateName {
                name: name.to_owned(),
            });
        }
        let id = ElementId::new(self.elements.len() as u32);
        self.names.push(name.to_owned());
        self.elements.push(element);
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Adds a (non-repairable) basic event with failure rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name, a non-positive rate or a dormancy
    /// factor outside `[0, 1]`.
    pub fn basic_event(&mut self, name: &str, rate: f64, dormancy: Dormancy) -> Result<ElementId> {
        self.basic_event_full(name, rate, dormancy, None)
    }

    /// Adds a repairable basic event with failure rate `rate` and repair rate
    /// `repair_rate` (the Section 7.2 extension).
    ///
    /// # Errors
    ///
    /// Same as [`basic_event`](Self::basic_event), plus a non-positive repair rate.
    pub fn repairable_basic_event(
        &mut self,
        name: &str,
        rate: f64,
        dormancy: Dormancy,
        repair_rate: f64,
    ) -> Result<ElementId> {
        self.basic_event_full(name, rate, dormancy, Some(repair_rate))
    }

    fn basic_event_full(
        &mut self,
        name: &str,
        rate: f64,
        dormancy: Dormancy,
        repair_rate: Option<f64>,
    ) -> Result<ElementId> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(Error::InvalidParameter {
                name: name.to_owned(),
                message: format!("failure rate must be finite and positive, got {rate}"),
            });
        }
        let alpha = dormancy.factor();
        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
            return Err(Error::InvalidParameter {
                name: name.to_owned(),
                message: format!("dormancy factor must lie in [0, 1], got {alpha}"),
            });
        }
        if let Some(mu) = repair_rate {
            if !(mu.is_finite() && mu > 0.0) {
                return Err(Error::InvalidParameter {
                    name: name.to_owned(),
                    message: format!("repair rate must be finite and positive, got {mu}"),
                });
            }
        }
        self.add(
            name,
            Element::BasicEvent(BasicEvent {
                rate,
                dormancy,
                repair_rate,
            }),
        )
    }

    fn gate(&mut self, name: &str, kind: GateKind, inputs: &[ElementId]) -> Result<ElementId> {
        for &input in inputs {
            if input.index() >= self.elements.len() {
                return Err(Error::UnknownElement {
                    name: format!("{input}"),
                });
            }
        }
        self.add(
            name,
            Element::Gate(Gate {
                kind,
                inputs: inputs.to_vec(),
                repairable: false,
            }),
        )
    }

    /// Adds an AND gate.
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn and_gate(&mut self, name: &str, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::And, inputs)
    }

    /// Adds an OR gate.
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn or_gate(&mut self, name: &str, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::Or, inputs)
    }

    /// Adds a K-out-of-M voting gate (fails when at least `k` inputs have failed).
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input; the relation
    /// between `k` and the number of inputs is checked by [`build`](Self::build).
    pub fn voting_gate(&mut self, name: &str, k: u32, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::Voting { k }, inputs)
    }

    /// Adds a priority-AND gate (inputs must fail in left-to-right order).
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn pand_gate(&mut self, name: &str, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::Pand, inputs)
    }

    /// Adds a spare gate; `inputs[0]` is the primary, the rest are spares claimed
    /// in order.
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn spare_gate(&mut self, name: &str, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::Spare, inputs)
    }

    /// Adds a functional-dependency gate with the given trigger and dependent
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn fdep_gate(
        &mut self,
        name: &str,
        trigger: ElementId,
        dependents: &[ElementId],
    ) -> Result<ElementId> {
        let mut inputs = vec![trigger];
        inputs.extend_from_slice(dependents);
        self.gate(name, GateKind::Fdep, &inputs)
    }

    /// Adds a sequence-enforcing gate (inputs can only fail left to right).
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn seq_gate(&mut self, name: &str, inputs: &[ElementId]) -> Result<ElementId> {
        self.gate(name, GateKind::Seq, inputs)
    }

    /// Adds an inhibition gate: the failure of `subject` is propagated unless one
    /// of the `inhibitors` failed first (Section 7.1 extension).
    ///
    /// # Errors
    ///
    /// Returns an error for a duplicate name or an unknown input.
    pub fn inhibit_gate(
        &mut self,
        name: &str,
        subject: ElementId,
        inhibitors: &[ElementId],
    ) -> Result<ElementId> {
        let mut inputs = vec![subject];
        inputs.extend_from_slice(inhibitors);
        self.gate(name, GateKind::Inhibit, &inputs)
    }

    /// Number of elements added so far.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Finishes construction, declaring `top` the top event, and validates the DFT.
    ///
    /// # Errors
    ///
    /// Returns any wellformedness violation found by [`validate`].
    pub fn build(self, top: ElementId) -> Result<Dft> {
        if top.index() >= self.elements.len() {
            return Err(Error::UnknownElement {
                name: format!("{top}"),
            });
        }
        let dft = Dft::assemble(self.names, self.elements, self.by_name, top);
        validate(&dft)?;
        Ok(dft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = DftBuilder::new();
        b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        assert!(matches!(
            b.basic_event("X", 2.0, Dormancy::Hot),
            Err(Error::DuplicateName { .. })
        ));
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut b = DftBuilder::new();
        assert!(b.basic_event("bad", 0.0, Dormancy::Hot).is_err());
        assert!(b.basic_event("bad2", -1.0, Dormancy::Hot).is_err());
        assert!(b.basic_event("bad3", f64::NAN, Dormancy::Hot).is_err());
        assert!(b
            .basic_event("bad4", 1.0, Dormancy::Warm(f64::NAN))
            .is_err());
        assert!(b
            .repairable_basic_event("bad5", 1.0, Dormancy::Hot, 0.0)
            .is_err());
        assert!(b
            .repairable_basic_event("ok", 1.0, Dormancy::Hot, 2.0)
            .is_ok());
    }

    #[test]
    fn all_gate_kinds_can_be_built() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Cold).unwrap();
        let z = b.basic_event("Z", 1.0, Dormancy::Warm(0.5)).unwrap();
        let and = b.and_gate("and", &[x, y]).unwrap();
        let or = b.or_gate("or", &[x, z]).unwrap();
        let vote = b.voting_gate("vote", 2, &[x, y, z]).unwrap();
        let pand = b.pand_gate("pand", &[and, or]).unwrap();
        let _fdep = b.fdep_gate("fdep", x, &[y]).unwrap();
        let _seq = b.seq_gate("seq", &[x, y]).unwrap();
        let _inhibit = b.inhibit_gate("inhibit", y, &[x]).unwrap();
        let top = b.or_gate("top", &[pand, vote]).unwrap();
        let dft = b.build(top).unwrap();
        assert_eq!(dft.num_gates(), 8);
    }

    #[test]
    fn unknown_top_is_rejected() {
        let mut b = DftBuilder::new();
        b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        assert!(b.build(ElementId::new(42)).is_err());
    }

    #[test]
    fn unknown_gate_input_is_rejected() {
        let mut b = DftBuilder::new();
        assert!(b.and_gate("g", &[ElementId::new(7)]).is_err());
    }
}
