//! The DFT structure: a named DAG of elements with a designated top event.

use crate::element::{Element, ElementId, GateKind};
use crate::{Error, Result};
use std::collections::HashMap;

/// A validated dynamic fault tree.
///
/// Construct one with [`DftBuilder`](crate::builder::DftBuilder) or by parsing the
/// Galileo format ([`galileo::parse`](crate::galileo::parse)).
#[derive(Debug, Clone)]
pub struct Dft {
    pub(crate) names: Vec<String>,
    pub(crate) elements: Vec<Element>,
    pub(crate) by_name: HashMap<String, ElementId>,
    pub(crate) top: ElementId,
    /// `parents[e]` lists every gate that has `e` among its inputs.
    pub(crate) parents: Vec<Vec<ElementId>>,
}

impl Dft {
    pub(crate) fn assemble(
        names: Vec<String>,
        elements: Vec<Element>,
        by_name: HashMap<String, ElementId>,
        top: ElementId,
    ) -> Dft {
        let mut parents = vec![Vec::new(); elements.len()];
        for (i, e) in elements.iter().enumerate() {
            for &input in e.inputs() {
                parents[input.index()].push(ElementId::new(i as u32));
            }
        }
        Dft {
            names,
            elements,
            by_name,
            top,
            parents,
        }
    }

    /// Number of elements (basic events plus gates).
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Number of basic events.
    pub fn num_basic_events(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| e.as_basic_event().is_some())
            .count()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.elements.len() - self.num_basic_events()
    }

    /// The top (system failure) element.
    pub fn top(&self) -> ElementId {
        self.top
    }

    /// The element with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DFT.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// The name of the element with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DFT.
    pub fn name(&self, id: ElementId) -> &str {
        &self.names[id.index()]
    }

    /// Looks an element up by name.
    pub fn by_name(&self, name: &str) -> Option<ElementId> {
        self.by_name.get(name).copied()
    }

    /// Looks an element up by name, returning an error mentioning the name if it
    /// does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownElement`].
    pub fn require(&self, name: &str) -> Result<ElementId> {
        self.by_name(name).ok_or_else(|| Error::UnknownElement {
            name: name.to_owned(),
        })
    }

    /// Iterates over all element ids in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = ElementId> {
        (0..self.elements.len() as u32).map(ElementId::new)
    }

    /// Ids of all basic events.
    pub fn basic_events(&self) -> Vec<ElementId> {
        self.elements()
            .filter(|&e| self.element(e).as_basic_event().is_some())
            .collect()
    }

    /// Ids of all gates of the given kind.
    pub fn gates_of_kind(&self, kind: GateKind) -> Vec<ElementId> {
        self.elements()
            .filter(|&e| matches!(self.element(e).as_gate(), Some(g) if g.kind == kind))
            .collect()
    }

    /// Ids of all spare gates.
    pub fn spare_gates(&self) -> Vec<ElementId> {
        self.gates_of_kind(GateKind::Spare)
    }

    /// Ids of all FDEP gates.
    pub fn fdep_gates(&self) -> Vec<ElementId> {
        self.gates_of_kind(GateKind::Fdep)
    }

    /// The gates that use `id` as one of their inputs.
    pub fn parents(&self, id: ElementId) -> &[ElementId] {
        &self.parents[id.index()]
    }

    /// All elements reachable from `root` through inputs, including `root` itself.
    pub fn descendants(&self, root: ElementId) -> Vec<ElementId> {
        let mut seen = vec![false; self.elements.len()];
        let mut stack = vec![root];
        let mut out = Vec::new();
        seen[root.index()] = true;
        while let Some(e) = stack.pop() {
            out.push(e);
            for &input in self.element(e).inputs() {
                if !seen[input.index()] {
                    seen[input.index()] = true;
                    stack.push(input);
                }
            }
        }
        out.sort();
        out
    }

    /// A deterministic structural fingerprint of the tree.
    ///
    /// The fingerprint hashes the canonicalized structure — every element in id
    /// order with its kind, failure rate, dormancy factor and repair rate (for
    /// basic events) or gate kind, threshold and ordered input edges (for
    /// gates) — plus the top-event id.  Element *names* are deliberately
    /// excluded: two trees that differ only in labelling describe the same
    /// stochastic model and share a fingerprint, which is exactly the notion of
    /// identity a model cache wants.
    ///
    /// Two structurally different trees collide only with the usual 64-bit
    /// hash probability; a collision-free guarantee is not provided, but trees
    /// built in a different element insertion order also hash differently (the
    /// fingerprint is conservative — a spurious mismatch merely costs a cache
    /// miss, never a wrong answer).
    ///
    /// The hash function is a fixed FNV-1a variant, so fingerprints are stable
    /// across processes, platforms and runs — suitable as a persistent cache
    /// key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_with(true)
    }

    /// A deterministic *rate-blind* structural fingerprint of the tree.
    ///
    /// Like [`fingerprint`](Self::fingerprint), but the numeric failure and
    /// repair rates are excluded from the hash; only their *shape* survives —
    /// the dormancy factor (a structural coefficient of the parametric model)
    /// and whether a repair rate exists at all.  Two trees share a structural
    /// fingerprint exactly when they define the same *parametric* model with
    /// the same parameter slots, differing at most in the numeric rate values
    /// — which is the notion of identity a cache of parametric (symbolic-rate)
    /// models wants: a whole family of rate-scaled variants maps to one entry.
    pub fn structural_fingerprint(&self) -> u64 {
        self.fingerprint_with(false)
    }

    fn fingerprint_with(&self, include_rates: bool) -> u64 {
        /// 64-bit FNV-1a offset basis and prime.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
            }
            fn u64(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
            fn f64(&mut self, v: f64) {
                // Hash the bit pattern; fold -0.0 onto 0.0 so the two rate
                // spellings (which define the same CTMC) agree.
                self.u64(if v == 0.0 { 0 } else { v.to_bits() });
            }
        }

        let mut h = Fnv(OFFSET);
        h.u64(self.elements.len() as u64);
        h.u64(self.top.index() as u64);
        for element in &self.elements {
            match element {
                Element::BasicEvent(be) => {
                    h.byte(0x01);
                    if include_rates {
                        h.f64(be.rate);
                    }
                    h.f64(be.dormancy.factor());
                    match be.repair_rate {
                        None => h.byte(0x00),
                        Some(mu) => {
                            h.byte(0x02);
                            if include_rates {
                                h.f64(mu);
                            }
                        }
                    }
                }
                Element::Gate(g) => {
                    h.byte(0x03);
                    let (tag, k) = match g.kind {
                        GateKind::And => (0x10u8, 0),
                        GateKind::Or => (0x11, 0),
                        GateKind::Voting { k } => (0x12, k),
                        GateKind::Pand => (0x13, 0),
                        GateKind::Spare => (0x14, 0),
                        GateKind::Fdep => (0x15, 0),
                        GateKind::Seq => (0x16, 0),
                        GateKind::Inhibit => (0x17, 0),
                    };
                    h.byte(tag);
                    h.u64(u64::from(k));
                    h.byte(u8::from(g.repairable));
                    h.u64(g.inputs.len() as u64);
                    for input in &g.inputs {
                        h.u64(input.index() as u64);
                    }
                }
            }
        }
        h.0
    }

    /// Returns `true` if the DFT contains at least one dynamic gate.
    pub fn is_dynamic(&self) -> bool {
        self.elements.iter().any(|e| e.is_dynamic_gate())
    }

    /// Returns `true` if any basic event has a repair rate.
    pub fn is_repairable(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e.as_basic_event(), Some(be) if be.repair_rate.is_some()))
    }

    /// A topological order of the elements (inputs before the gates that use them).
    ///
    /// The DFT is guaranteed acyclic after validation, so this always succeeds for
    /// validated trees.
    pub fn topological_order(&self) -> Vec<ElementId> {
        let n = self.elements.len();
        let mut indegree: Vec<usize> = vec![0; n];
        for e in &self.elements {
            let _ = e;
        }
        for id in self.elements() {
            indegree[id.index()] = self.element(id).inputs().len();
        }
        let mut queue: Vec<ElementId> = self
            .elements()
            .filter(|&e| indegree[e.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(e) = queue.pop() {
            order.push(e);
            for &parent in self.parents(e) {
                indegree[parent.index()] -= 1;
                if indegree[parent.index()] == 0 {
                    queue.push(parent);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DftBuilder;
    use crate::element::Dormancy;

    fn sample() -> Dft {
        let mut b = DftBuilder::new();
        let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 2.0, Dormancy::Cold).unwrap();
        let s = b.spare_gate("S", &[a, c]).unwrap();
        let d = b.basic_event("D", 0.5, Dormancy::Hot).unwrap();
        let top = b.or_gate("Top", &[s, d]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn basic_structure_queries() {
        let dft = sample();
        assert_eq!(dft.num_elements(), 5);
        assert_eq!(dft.num_basic_events(), 3);
        assert_eq!(dft.num_gates(), 2);
        assert_eq!(dft.name(dft.top()), "Top");
        assert!(dft.is_dynamic());
        assert!(!dft.is_repairable());
        assert_eq!(dft.spare_gates().len(), 1);
        assert_eq!(dft.fdep_gates().len(), 0);
        assert!(dft.by_name("A").is_some());
        assert!(dft.by_name("missing").is_none());
        assert!(dft.require("C").is_ok());
        assert!(dft.require("missing").is_err());
    }

    #[test]
    fn parents_are_tracked() {
        let dft = sample();
        let a = dft.by_name("A").unwrap();
        let s = dft.by_name("S").unwrap();
        let top = dft.by_name("Top").unwrap();
        assert_eq!(dft.parents(a), &[s]);
        assert_eq!(dft.parents(s), &[top]);
        assert!(dft.parents(top).is_empty());
    }

    #[test]
    fn descendants_include_root_and_leaves() {
        let dft = sample();
        let s = dft.by_name("S").unwrap();
        let descendants = dft.descendants(s);
        assert_eq!(descendants.len(), 3);
        assert!(descendants.contains(&dft.by_name("A").unwrap()));
        assert!(descendants.contains(&dft.by_name("C").unwrap()));
        assert!(descendants.contains(&s));
    }

    #[test]
    fn topological_order_respects_inputs() {
        let dft = sample();
        let order = dft.topological_order();
        assert_eq!(order.len(), dft.num_elements());
        let position: std::collections::HashMap<ElementId, usize> =
            order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        for e in dft.elements() {
            for &input in dft.element(e).inputs() {
                assert!(position[&input] < position[&e], "input must precede gate");
            }
        }
    }

    #[test]
    fn fingerprint_ignores_names_but_sees_structure() {
        let renamed = {
            let mut b = DftBuilder::new();
            let a = b.basic_event("X1", 1.0, Dormancy::Hot).unwrap();
            let c = b.basic_event("X2", 2.0, Dormancy::Cold).unwrap();
            let s = b.spare_gate("X3", &[a, c]).unwrap();
            let d = b.basic_event("X4", 0.5, Dormancy::Hot).unwrap();
            let top = b.or_gate("X5", &[s, d]).unwrap();
            b.build(top).unwrap()
        };
        assert_eq!(sample().fingerprint(), renamed.fingerprint());
        assert_eq!(sample().fingerprint(), sample().fingerprint());

        // Any structural change — a rate, a dormancy, a repair rate, a gate
        // kind, the input order of an order-sensitive gate — changes the hash.
        let base = sample().fingerprint();
        let mut variants = Vec::new();
        for (rate, dormancy, repair, swap, pand) in [
            (1.5, Dormancy::Cold, None, false, false),
            (1.0, Dormancy::Warm(0.3), None, false, false),
            (1.0, Dormancy::Cold, Some(4.0), false, false),
            (1.0, Dormancy::Cold, None, true, false),
            (1.0, Dormancy::Cold, None, false, true),
        ] {
            let mut b = DftBuilder::new();
            let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
            let c = match repair {
                None => b.basic_event("C", 2.0, dormancy).unwrap(),
                Some(mu) => b.repairable_basic_event("C", 2.0, dormancy, mu).unwrap(),
            };
            let inputs = if swap { [c, a] } else { [a, c] };
            let s = b.spare_gate("S", &inputs).unwrap();
            let d = b.basic_event("D", rate * 0.5, Dormancy::Hot).unwrap();
            let top = if pand {
                b.pand_gate("Top", &[s, d]).unwrap()
            } else {
                b.or_gate("Top", &[s, d]).unwrap()
            };
            variants.push(b.build(top).unwrap().fingerprint());
        }
        // The first variant reproduces the sample except for rescaling D's rate
        // via `rate`; with rate == 1.5 it differs. All must differ from base
        // and from each other.
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(*v, base, "variant {i} must not collide with the sample");
        }
        let mut unique = variants.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), variants.len(), "variants must be distinct");
    }

    #[test]
    fn fingerprint_is_stable_across_clones() {
        let dft = sample();
        assert_eq!(dft.fingerprint(), dft.clone().fingerprint());
    }

    #[test]
    fn gates_of_kind_filters() {
        let dft = sample();
        assert_eq!(dft.gates_of_kind(GateKind::Or).len(), 1);
        assert_eq!(dft.gates_of_kind(GateKind::And).len(), 0);
    }
}
