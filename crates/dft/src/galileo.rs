//! The Galileo textual DFT format.
//!
//! The paper's tool chain "takes as input a DFT specified in the Galileo DFT
//! format" (Section 5.1).  This module parses and prints the line-oriented subset
//! used by the case studies:
//!
//! ```text
//! toplevel "System";
//! "System" or "CPU_unit" "Motor_unit" "Pump_unit";
//! "CPU_unit" wsp "P" "B";
//! "CPU_fdep" fdep "Trigger" "P" "B";
//! "Votes" 2of3 "V1" "V2" "V3";
//! "P" lambda=0.5 dorm=0.0;
//! "B" lambda=0.5 dorm=0.5;
//! ```
//!
//! * Quotation marks around names are optional; a trailing `;` per line is
//!   expected but tolerated if missing; `//` and `#` start comments.  Quotes
//!   bind tighter than comments and separators, so a quoted name may contain
//!   spaces, `;`, `#`, `//` and `=` — any name without `"` or a newline
//!   round-trips through [`to_galileo`] ∘ [`parse`] unchanged.
//! * Gate keywords: `and`, `or`, `pand`, `fdep`, `seq`, `inhibit`, `KofM` (voting),
//!   and the three spare flavours `csp`, `wsp`, `hsp` (all map to a spare gate —
//!   in a DFT the dormancy is a property of the spare's basic events, the keyword
//!   merely documents intent).
//! * Basic events take `lambda=<rate>` and optionally `dorm=<factor>` and
//!   `repair=<rate>` (our Section 7.2 extension).

use crate::builder::DftBuilder;
use crate::element::{Dormancy, Element, GateKind};
use crate::tree::Dft;
use crate::{Error, Result};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum RawDef {
    Gate {
        kind: GateKind,
        inputs: Vec<String>,
    },
    BasicEvent {
        rate: f64,
        dormancy: f64,
        repair: Option<f64>,
    },
}

/// One token of a Galileo statement: its text, with the quotes already
/// stripped, and whether it was quoted in the source.  Quoted tokens are
/// always names — never the `toplevel` keyword, a gate type or a `key=value`
/// attribute — which is what makes names like `"a and b"` unambiguous.
#[derive(Debug, Clone)]
struct Token {
    text: String,
    quoted: bool,
}

/// Splits one source line into statements (separated by unquoted `;`) of
/// whitespace-separated tokens.  Quotes are honoured *before* comments and
/// separators, so a quoted name may contain spaces, `;`, `#`, `//` and `=` —
/// this is what makes [`parse`] ∘ [`to_galileo`] the identity on every tree
/// whose names are printable (i.e. contain no `"` and no newline).  A quote
/// must open at the start of a token, the name inside must be non-empty, and
/// the closing quote must end the token; anything else (an unterminated
/// quote, `"T"x`, `x"T"`, `""`) is a syntax error, not a silently mangled
/// name.
fn tokenize(line: &str) -> std::result::Result<Vec<Vec<Token>>, String> {
    let starts_comment =
        |chars: &std::iter::Peekable<std::str::Chars<'_>>| chars.clone().nth(1) == Some('/');
    let mut statements = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '#' || (c == '/' && starts_comment(&chars)) {
            break;
        }
        if c == ';' {
            chars.next();
            if !current.is_empty() {
                statements.push(std::mem::take(&mut current));
            }
            continue;
        }
        if c == '"' {
            chars.next();
            let mut name = String::new();
            loop {
                match chars.next() {
                    None => return Err(format!("unterminated quote in '\"{name}'")),
                    Some('"') => break,
                    Some(ch) => name.push(ch),
                }
            }
            if name.is_empty() {
                return Err("empty quoted name".to_owned());
            }
            if let Some(&next) = chars.peek() {
                if !next.is_whitespace() && next != ';' && next != '#' {
                    return Err(format!("stray quote inside '\"{name}\"{next}'"));
                }
            }
            current.push(Token {
                text: name,
                quoted: true,
            });
            continue;
        }
        let mut text = String::new();
        while let Some(&ch) = chars.peek() {
            if ch.is_whitespace() || ch == ';' || ch == '#' || (ch == '/' && starts_comment(&chars))
            {
                break;
            }
            if ch == '"' {
                return Err(format!("stray quote inside '{text}\"'"));
            }
            text.push(ch);
            chars.next();
        }
        current.push(Token {
            text,
            quoted: false,
        });
    }
    if !current.is_empty() {
        statements.push(current);
    }
    Ok(statements)
}

/// Parses a voting keyword `<K>of<M>` ("2of3", "3of5", …) into `(k, m)`.
/// The caller checks `m` against the actual input count and `k` against `m`.
fn parse_voting_keyword(keyword: &str) -> Option<(u32, u32)> {
    let lower = keyword.to_ascii_lowercase();
    let (k, rest) = lower.split_once("of")?;
    let k: u32 = k.parse().ok()?;
    let m: u32 = rest.parse().ok()?;
    Some((k, m))
}

/// Parses a Galileo DFT description.
///
/// # Errors
///
/// Returns [`Error::Parse`] with a line number for syntactic problems, and the
/// usual construction/validation errors for semantic ones (unknown elements,
/// invalid rates, cyclic definitions, arity violations).
pub fn parse(input: &str) -> Result<Dft> {
    let mut toplevel: Option<String> = None;
    let mut defs: Vec<(usize, String, RawDef)> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let statements = tokenize(raw_line).map_err(|message| Error::Parse {
            line: line_no,
            message,
        })?;
        for tokens in statements {
            let Some((head, rest)) = tokens.split_first() else {
                continue;
            };
            if !head.quoted && head.text.eq_ignore_ascii_case("toplevel") {
                let [top_name] = rest else {
                    return Err(Error::Parse {
                        line: line_no,
                        message: "expected: toplevel \"<name>\";".to_owned(),
                    });
                };
                toplevel = Some(top_name.text.clone());
                continue;
            }
            let Some((keyword, gate_inputs)) = rest.split_first() else {
                return Err(Error::Parse {
                    line: line_no,
                    message: format!("cannot parse '{}'", head.text),
                });
            };
            let name = head.text.clone();
            if by_name.contains_key(&name) {
                return Err(Error::DuplicateName { name });
            }

            let def = if !keyword.quoted && keyword.text.contains('=') {
                // Basic event: parse key=value pairs (attributes are never quoted).
                let mut rate: Option<f64> = None;
                let mut dormancy = 1.0;
                let mut repair: Option<f64> = None;
                for pair in rest {
                    let Some((key, value)) = (!pair.quoted)
                        .then_some(pair.text.as_str())
                        .and_then(|text| text.split_once('='))
                    else {
                        return Err(Error::Parse {
                            line: line_no,
                            message: format!("expected key=value, got '{}'", pair.text),
                        });
                    };
                    let value: f64 = value.parse().map_err(|_| Error::Parse {
                        line: line_no,
                        message: format!("cannot parse number '{value}'"),
                    })?;
                    match key.to_ascii_lowercase().as_str() {
                        "lambda" | "rate" => rate = Some(value),
                        "dorm" | "dormancy" => dormancy = value,
                        "repair" | "mu" => repair = Some(value),
                        other => {
                            return Err(Error::Parse {
                                line: line_no,
                                message: format!("unknown basic-event attribute '{other}'"),
                            })
                        }
                    }
                }
                let rate = rate.ok_or(Error::Parse {
                    line: line_no,
                    message: format!("basic event '{name}' needs lambda=<rate>"),
                })?;
                RawDef::BasicEvent {
                    rate,
                    dormancy,
                    repair,
                }
            } else if keyword.quoted {
                return Err(Error::Parse {
                line: line_no,
                message: format!(
                    "expected a gate type or key=value attributes after '{name}', got quoted name '{}'",
                    keyword.text
                ),
            });
            } else {
                let inputs: Vec<String> = gate_inputs.iter().map(|t| t.text.clone()).collect();
                let keyword = keyword.text.to_ascii_lowercase();
                let kind = match keyword.as_str() {
                    "and" => GateKind::And,
                    "or" => GateKind::Or,
                    "pand" => GateKind::Pand,
                    "fdep" => GateKind::Fdep,
                    "seq" => GateKind::Seq,
                    "inhibit" => GateKind::Inhibit,
                    "spare" | "csp" | "wsp" | "hsp" => GateKind::Spare,
                    other => match parse_voting_keyword(other) {
                        Some((k, m)) => {
                            if usize::try_from(m) != Ok(inputs.len()) {
                                return Err(Error::Parse {
                                    line: line_no,
                                    message: format!(
                                        "voting gate '{name}' says {k}of{m} but lists {} inputs",
                                        inputs.len()
                                    ),
                                });
                            }
                            if k == 0 || k > m {
                                return Err(Error::Parse {
                                    line: line_no,
                                    message: format!(
                                    "voting threshold {k}of{m} is out of range (need 1 <= k <= {m})"
                                ),
                                });
                            }
                            GateKind::Voting { k }
                        }
                        None => {
                            return Err(Error::Parse {
                                line: line_no,
                                message: format!("unknown gate type '{other}'"),
                            })
                        }
                    },
                };
                if inputs.is_empty() {
                    return Err(Error::Parse {
                        line: line_no,
                        message: format!("gate '{name}' has no inputs"),
                    });
                }
                RawDef::Gate { kind, inputs }
            };
            by_name.insert(name.clone(), defs.len());
            defs.push((line_no, name, def));
        }
    }

    let toplevel = toplevel.ok_or(Error::Parse {
        line: 0,
        message: "missing 'toplevel' declaration".to_owned(),
    })?;

    // Insert definitions bottom-up (inputs first) with an explicit stack so deep
    // trees cannot overflow the call stack.  Cycles among definitions are detected
    // via the in-progress marker.
    let mut builder = DftBuilder::new();
    let mut built: HashMap<String, crate::element::ElementId> = HashMap::new();
    let mut in_progress: Vec<bool> = vec![false; defs.len()];

    fn build_one(
        name: &str,
        defs: &[(usize, String, RawDef)],
        by_name: &HashMap<String, usize>,
        builder: &mut DftBuilder,
        built: &mut HashMap<String, crate::element::ElementId>,
        in_progress: &mut [bool],
    ) -> Result<crate::element::ElementId> {
        if let Some(&id) = built.get(name) {
            return Ok(id);
        }
        let &def_index = by_name.get(name).ok_or_else(|| Error::UnknownElement {
            name: name.to_owned(),
        })?;
        // `by_name` maps into `defs` (and `in_progress` mirrors it) by
        // construction, so a miss here means the tables are corrupt — report
        // the element as unknown rather than panicking.
        if in_progress.get(def_index).copied().unwrap_or(false) {
            return Err(Error::Cyclic {
                name: name.to_owned(),
            });
        }
        if let Some(flag) = in_progress.get_mut(def_index) {
            *flag = true;
        }
        let (_, _, def) = defs.get(def_index).ok_or_else(|| Error::UnknownElement {
            name: name.to_owned(),
        })?;
        let id = match def {
            RawDef::BasicEvent {
                rate,
                dormancy,
                repair,
            } => {
                let dormancy = Dormancy::from_factor(*dormancy);
                match repair {
                    Some(mu) => builder.repairable_basic_event(name, *rate, dormancy, *mu)?,
                    None => builder.basic_event(name, *rate, dormancy)?,
                }
            }
            RawDef::Gate { kind, inputs } => {
                let mut input_ids = Vec::with_capacity(inputs.len());
                for input in inputs {
                    input_ids.push(build_one(
                        input,
                        defs,
                        by_name,
                        builder,
                        built,
                        in_progress,
                    )?);
                }
                // Parsing rejects gates with zero inputs, so the split only
                // fails if the tables are corrupt; surface that as the arity
                // error it is instead of panicking.
                let split_trigger = || {
                    input_ids.split_first().ok_or(Error::InvalidGate {
                        name: name.to_owned(),
                        message: "needs a trigger input".to_owned(),
                    })
                };
                match kind {
                    GateKind::And => builder.and_gate(name, &input_ids)?,
                    GateKind::Or => builder.or_gate(name, &input_ids)?,
                    GateKind::Voting { k } => builder.voting_gate(name, *k, &input_ids)?,
                    GateKind::Pand => builder.pand_gate(name, &input_ids)?,
                    GateKind::Spare => builder.spare_gate(name, &input_ids)?,
                    GateKind::Seq => builder.seq_gate(name, &input_ids)?,
                    GateKind::Fdep => {
                        let (&trigger, dependents) = split_trigger()?;
                        builder.fdep_gate(name, trigger, dependents)?
                    }
                    GateKind::Inhibit => {
                        let (&condition, others) = split_trigger()?;
                        builder.inhibit_gate(name, condition, others)?
                    }
                }
            }
        };
        if let Some(flag) = in_progress.get_mut(def_index) {
            *flag = false;
        }
        built.insert(name.to_owned(), id);
        Ok(id)
    }

    // Build every definition so that FDEP gates not reachable from the top event
    // are part of the model too.
    for (_, name, _) in &defs {
        build_one(
            name,
            &defs,
            &by_name,
            &mut builder,
            &mut built,
            &mut in_progress,
        )?;
    }
    let top = *built.get(&toplevel).ok_or_else(|| Error::UnknownElement {
        name: toplevel.clone(),
    })?;
    builder.build(top)
}

/// Prints a DFT in Galileo syntax; [`parse`] ∘ [`to_galileo`] is the identity up to
/// formatting.
pub fn to_galileo(dft: &Dft) -> String {
    let mut out = String::new();
    out.push_str(&format!("toplevel \"{}\";\n", dft.name(dft.top())));
    for id in dft.elements() {
        let name = dft.name(id);
        match dft.element(id) {
            Element::Gate(gate) => {
                let keyword = match gate.kind {
                    GateKind::And => "and".to_owned(),
                    GateKind::Or => "or".to_owned(),
                    GateKind::Pand => "pand".to_owned(),
                    GateKind::Spare => "wsp".to_owned(),
                    GateKind::Fdep => "fdep".to_owned(),
                    GateKind::Seq => "seq".to_owned(),
                    GateKind::Inhibit => "inhibit".to_owned(),
                    GateKind::Voting { k } => format!("{k}of{}", gate.inputs.len()),
                };
                let inputs: Vec<String> = gate
                    .inputs
                    .iter()
                    .map(|&i| format!("\"{}\"", dft.name(i)))
                    .collect();
                out.push_str(&format!("\"{name}\" {keyword} {};\n", inputs.join(" ")));
            }
            Element::BasicEvent(be) => {
                let mut line = format!("\"{name}\" lambda={}", be.rate);
                line.push_str(&format!(" dorm={}", be.dormancy.factor()));
                if let Some(mu) = be.repair_rate {
                    line.push_str(&format!(" repair={mu}"));
                }
                out.push_str(&line);
                out.push_str(";\n");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAS_LIKE: &str = r#"
        // A fragment in the style of the cardiac assist system.
        toplevel "System";
        "System" or "CPU_unit" "Pump_unit";
        "CPU_unit" wsp "P" "B";
        "CPU_fdep" fdep "Trigger" "P" "B";
        "Trigger" or "CS" "SS";
        "Pump_unit" and "Pump_A" "Pump_B";
        "Pump_A" csp "PA" "PS";
        "Pump_B" csp "PB" "PS";
        "CS" lambda=0.2;
        "SS" lambda=0.2;
        "P"  lambda=0.5;
        "B"  lambda=0.5 dorm=0.5;
        "PA" lambda=1.0;
        "PB" lambda=1.0;
        "PS" lambda=1.0 dorm=0.0;
    "#;

    #[test]
    fn parses_a_cas_like_model() {
        let dft = parse(CAS_LIKE).unwrap();
        assert_eq!(dft.name(dft.top()), "System");
        assert_eq!(dft.num_basic_events(), 7);
        assert_eq!(dft.num_gates(), 7);
        assert_eq!(dft.spare_gates().len(), 3);
        assert_eq!(dft.fdep_gates().len(), 1);
        let b = dft.by_name("B").unwrap();
        let be = dft.element(b).as_basic_event().unwrap();
        assert_eq!(be.dormancy.factor(), 0.5);
        let ps = dft.by_name("PS").unwrap();
        assert_eq!(
            dft.element(ps).as_basic_event().unwrap().dormancy,
            Dormancy::Cold
        );
    }

    #[test]
    fn round_trips_through_printing() {
        let dft = parse(CAS_LIKE).unwrap();
        let printed = to_galileo(&dft);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.num_elements(), dft.num_elements());
        assert_eq!(reparsed.num_gates(), dft.num_gates());
        assert_eq!(reparsed.name(reparsed.top()), dft.name(dft.top()));
        for id in dft.elements() {
            let name = dft.name(id);
            assert!(
                reparsed.by_name(name).is_some(),
                "{name} lost in round trip"
            );
        }
    }

    #[test]
    fn voting_gates_parse() {
        let text = r#"
            toplevel "T";
            "T" 2of3 "A" "B" "C";
            "A" lambda=1.0;
            "B" lambda=1.0;
            "C" lambda=1.0;
        "#;
        let dft = parse(text).unwrap();
        let top = dft.element(dft.top()).as_gate().unwrap();
        assert_eq!(top.kind, GateKind::Voting { k: 2 });
    }

    #[test]
    fn repairable_events_parse() {
        let text = r#"
            toplevel "T";
            "T" and "A" "B";
            "A" lambda=1.0 repair=5.0;
            "B" lambda=2.0 mu=3.0;
        "#;
        let dft = parse(text).unwrap();
        assert!(dft.is_repairable());
        let a = dft
            .element(dft.by_name("A").unwrap())
            .as_basic_event()
            .unwrap();
        assert_eq!(a.repair_rate, Some(5.0));
    }

    #[test]
    fn missing_toplevel_is_an_error() {
        let text = r#""T" and "A" "B"; "A" lambda=1.0; "B" lambda=1.0;"#;
        assert!(matches!(parse(text), Err(Error::Parse { .. })));
    }

    #[test]
    fn unknown_gate_type_is_an_error() {
        let text = r#"
            toplevel "T";
            "T" xor "A" "B";
            "A" lambda=1.0;
            "B" lambda=1.0;
        "#;
        match parse(text) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_input_is_an_error() {
        let text = r#"
            toplevel "T";
            "T" and "A" "Ghost";
            "A" lambda=1.0;
        "#;
        assert!(matches!(parse(text), Err(Error::UnknownElement { .. })));
    }

    #[test]
    fn cyclic_definitions_are_detected() {
        let text = r#"
            toplevel "T";
            "T" and "U";
            "U" or "T";
        "#;
        assert!(matches!(parse(text), Err(Error::Cyclic { .. })));
    }

    #[test]
    fn duplicate_definitions_are_detected() {
        let text = r#"
            toplevel "T";
            "T" and "A" "B";
            "A" lambda=1.0;
            "A" lambda=2.0;
            "B" lambda=1.0;
        "#;
        assert!(matches!(parse(text), Err(Error::DuplicateName { .. })));
    }

    #[test]
    fn missing_lambda_is_an_error() {
        let text = r#"
            toplevel "T";
            "T" and "A" "B";
            "A" dorm=0.5;
            "B" lambda=1.0;
        "#;
        assert!(matches!(parse(text), Err(Error::Parse { .. })));
    }

    #[test]
    fn quoted_names_may_contain_separators() {
        // Spaces, comment markers, `=` and `;` inside quotes are part of the
        // name; print → parse is the identity on such trees.
        let text = "toplevel \"the system\";\n\
                    \"the system\" and \"a // b\" \"k=v; #x\";\n\
                    \"a // b\" lambda=1.0;\n\
                    \"k=v; #x\" lambda=2.0;\n";
        let dft = parse(text).unwrap();
        assert_eq!(dft.name(dft.top()), "the system");
        assert!(dft.by_name("a // b").is_some());
        assert!(dft.by_name("k=v; #x").is_some());
        let printed = to_galileo(&dft);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(to_galileo(&reparsed), printed);
        assert_eq!(reparsed.num_elements(), 3);
    }

    #[test]
    fn multiple_statements_per_line_parse() {
        let text = r#"toplevel "T"; "T" and "A" "B"; "A" lambda=1.0; "B" lambda=2.0;"#;
        let dft = parse(text).unwrap();
        assert_eq!(dft.num_elements(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = r#"
            # full line comment
            toplevel "T";

            "T" and "A" "B"; // trailing comment
            "A" lambda=1.0;
            "B" lambda=1.0;
        "#;
        let dft = parse(text).unwrap();
        assert_eq!(dft.num_elements(), 3);
    }
}
