//! A minimal JSON emitter for machine-readable benchmark records.
//!
//! The container carries no external crates, so the experiment bins cannot use
//! `serde`.  This module provides the small subset they need: build a [`Json`]
//! tree, render it deterministically (object keys keep insertion order), and
//! write it to a `BENCH_<name>.json` file next to the human-readable tables so
//! the performance trajectory of the repo can be tracked run over run.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (keys keep their order).
    pub fn obj<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// A duration, rendered as fractional seconds (the universal bench unit).
    pub fn secs(d: Duration) -> Json {
        Json::Num(d.as_secs_f64())
    }

    /// Renders the value as a compact single-line JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value as an indented multi-line JSON document (two-space
    /// indent).  Scalars render exactly as in [`render`](Self::render), so a
    /// pretty document parses back to the same value bit-for-bit.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let indent = |out: &mut String, levels: usize| {
            for _ in 0..levels {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    Json::Str(key.clone()).write(out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if u32::from(c) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", u32::from(c));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Fingerprints exceed f64's exact integer range; carry them as hex
        // strings so no precision is lost.
        Json::Str(format!("{v:016x}"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

/// Parses a JSON document (the subset [`Json`] renders: objects, arrays,
/// strings, finite numbers, booleans, `null`), so the trend-tracking tooling
/// can read committed `BENCH_*.json` baselines back without external crates.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(text: &str) -> std::result::Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(&(b' ' | b'\t' | b'\n' | b'\r'))) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> std::result::Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_owned()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = text_slice(bytes, *pos + 1, *pos + 5)?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("bad codepoint at byte {pos}"))?,
                                );
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 encoded character.
                        let start = *pos;
                        *pos += 1;
                        while bytes.get(*pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                            *pos += 1;
                        }
                        out.push_str(text_slice(bytes, start, *pos)?);
                    }
                }
            }
        }
        Some(b't') if tail_starts_with(bytes, *pos, b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if tail_starts_with(bytes, *pos, b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if tail_starts_with(bytes, *pos, b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while matches!(
                bytes.get(*pos),
                Some(&(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            ) {
                *pos += 1;
            }
            let token = text_slice(bytes, start, *pos)?;
            token
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number '{token}' at byte {start}"))
        }
        None => Err("unexpected end of input".to_owned()),
    }
}

fn tail_starts_with(bytes: &[u8], pos: usize, literal: &[u8]) -> bool {
    bytes
        .get(pos..)
        .is_some_and(|tail| tail.starts_with(literal))
}

fn text_slice(bytes: &[u8], start: usize, end: usize) -> std::result::Result<&str, String> {
    bytes
        .get(start..end)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or_else(|| format!("invalid UTF-8 near byte {start}"))
}

/// Writes `value` to `BENCH_<name>.json` in the current directory and returns
/// the path.  The experiment bins call this after printing their human tables;
/// a trailing newline keeps the files friendly to line-oriented tooling.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn emit(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// [`emit`], plus a one-line note on stdout saying where the record went; I/O
/// failures are reported on stderr instead of aborting an otherwise successful
/// experiment run.
pub fn emit_and_announce(name: &str, value: &Json) {
    match emit(name, value) {
        Ok(path) => println!("\nmachine-readable record: {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write BENCH_{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", "scaling".into()),
            ("ok", true.into()),
            (
                "rows",
                Json::Arr(vec![Json::obj([("width", 2usize.into())])]),
            ),
            ("wall_seconds", Json::secs(Duration::from_millis(1500))),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"scaling","ok":true,"rows":[{"width":2}],"wall_seconds":1.5,"nan":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_owned()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn fingerprints_render_as_hex_strings() {
        assert_eq!(Json::from(0xdeadbeefu64).render(), r#""00000000deadbeef""#);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", "scaling".into()),
            ("ok", true.into()),
            ("none", Json::Null),
            ("escaped", Json::Str("a\"b\\c\nd\u{1}é".to_owned())),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("width", 2usize.into()), ("x", (-1.5e-3f64).into())]),
                    Json::Bool(false),
                ]),
            ),
        ]);
        let parsed = parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        // A trailing newline (as emit writes) is tolerated.
        assert_eq!(parse(&(doc.render() + "\n")).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nope").is_err());
    }
}
