//! # ioimc — Input/Output Interactive Markov Chains
//!
//! This crate implements the I/O-IMC formalism used by Boudali, Crouzen and
//! Stoelinga ("Dynamic Fault Tree analysis using Input/Output Interactive Markov
//! Chains", DSN 2007) as the semantic foundation for dynamic fault trees.
//!
//! An I/O-IMC is a labelled transition system with two kinds of transitions:
//!
//! * **Interactive transitions**, labelled with an *input* (`a?`), *output* (`a!`)
//!   or *internal* (`a;`) action.  Output and internal transitions are immediate;
//!   input transitions wait for a matching output of the environment.
//! * **Markovian transitions**, labelled with a rate `λ > 0` of an exponential
//!   delay, exactly as in a continuous-time Markov chain.
//!
//! The crate provides the three operations the compositional-aggregation algorithm
//! of the paper is built from:
//!
//! 1. [`compose`](compose::compose) — parallel composition synchronising outputs of
//!    one component with the equally named inputs of the others,
//! 2. [`hide`](hide::hide) — turning output actions that are no longer needed into
//!    internal actions, and
//! 3. [`minimize`](bisim::minimize) — state-space aggregation modulo (branching-
//!    style) weak bisimulation with Markovian lumping and the maximal-progress
//!    assumption.
//!
//! # Example
//!
//! Composing two small I/O-IMCs, hiding their shared signal and aggregating:
//!
//! ```
//! use ioimc::{Action, IoImcBuilder, compose::compose, hide::hide, bisim::minimize};
//!
//! # fn main() -> Result<(), ioimc::Error> {
//! let a = Action::new("a");
//! let b = Action::new("b");
//!
//! // I/O-IMC A: after an exponential delay, fires output a!.
//! let mut ab = IoImcBuilder::new("A");
//! let s = [ab.add_state(), ab.add_state(), ab.add_state()];
//! ab.initial(s[0]);
//! ab.markovian(s[0], 2.0, s[1]);
//! ab.output(s[1], a, s[2]);
//! let ioimc_a = ab.build()?;
//!
//! // I/O-IMC B: waits for a?, then fires b! after an exponential delay.
//! let mut bb = IoImcBuilder::new("B");
//! let t = [bb.add_state(), bb.add_state(), bb.add_state()];
//! bb.initial(t[0]);
//! bb.input(t[0], a, t[1]);
//! bb.markovian(t[1], 3.0, t[2]);
//! bb.output(t[2], b, t[2]);
//! let ioimc_b = bb.build()?;
//!
//! let composed = compose(&ioimc_a, &ioimc_b)?;
//! let hidden = hide(&composed, &[a])?;
//! let minimal = minimize(&hidden);
//! assert!(minimal.num_states() <= hidden.num_states());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod bisim;
pub mod builder;
pub mod closed;
pub mod codec;
pub mod compose;
pub mod dot;
pub mod hide;
pub mod model;
pub mod rate;
pub mod rename;
pub mod signature;
pub mod stats;

pub use action::{Action, ActionKind};
pub use builder::{IoImcBuilder, IoImcBuilderOf, ParametricIoImcBuilder};
pub use codec::{DecodeError, RateCodec};
pub use model::{
    InteractiveTransition, IoImc, IoImcOf, Label, MarkovianTransition, MarkovianTransitionOf,
    ParametricIoImc, PropId, StateId,
};
pub use rate::{Rate, RateForm};
pub use signature::Signature;

use std::fmt;

/// Errors produced while constructing or combining I/O-IMCs.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A transition refers to a state id that was never added.
    UnknownState {
        /// The offending state id.
        state: u32,
        /// Number of states in the model.
        num_states: u32,
    },
    /// A Markovian transition was given an invalid rate (for numeric rates:
    /// non-positive or non-finite; for rate forms: empty or with invalid
    /// coefficients).
    InvalidRate {
        /// The offending rate, rendered for diagnostics.
        rate: String,
    },
    /// The model has no initial state.
    MissingInitialState,
    /// The same action appears with two incompatible roles in one signature.
    ConflictingSignature {
        /// The action involved.
        action: Action,
    },
    /// Two models to be composed both declare the same output action.
    OutputClash {
        /// The clashing output action.
        action: Action,
        /// Name of the first model.
        left: String,
        /// Name of the second model.
        right: String,
    },
    /// An internal action of one model appears in the signature of the other.
    InternalClash {
        /// The clashing internal action.
        action: Action,
        /// Name of the first model.
        left: String,
        /// Name of the second model.
        right: String,
    },
    /// An action passed to [`hide::hide`] is not an output of the model.
    NotAnOutput {
        /// The action that could not be hidden.
        action: Action,
    },
    /// Renaming would identify two previously distinct actions of the model.
    RenameCollision {
        /// The action that two names were mapped to.
        action: Action,
    },
    /// The model still has input actions although a closed model was required.
    NotClosed {
        /// One of the remaining input actions.
        action: Action,
    },
    /// The model is non-deterministic and cannot be interpreted as a CTMC.
    Nondeterministic {
        /// A state exhibiting a non-deterministic choice between immediate
        /// transitions.
        state: StateId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownState { state, num_states } => {
                write!(
                    f,
                    "state {state} out of range (model has {num_states} states)"
                )
            }
            Error::InvalidRate { rate } => write!(f, "invalid Markovian rate {rate}"),
            Error::MissingInitialState => write!(f, "model has no initial state"),
            Error::ConflictingSignature { action } => {
                write!(f, "action {} used with conflicting roles", action.name())
            }
            Error::OutputClash {
                action,
                left,
                right,
            } => write!(
                f,
                "output action {} declared by both {left} and {right}",
                action.name()
            ),
            Error::InternalClash {
                action,
                left,
                right,
            } => write!(
                f,
                "internal action {} of one of {left}, {right} is visible to the other",
                action.name()
            ),
            Error::NotAnOutput { action } => {
                write!(
                    f,
                    "cannot hide {}: not an output of the model",
                    action.name()
                )
            }
            Error::RenameCollision { action } => {
                write!(f, "renaming maps two distinct actions to {}", action.name())
            }
            Error::NotClosed { action } => {
                write!(f, "model still has input action {}", action.name())
            }
            Error::Nondeterministic { state } => {
                write!(f, "immediate non-determinism in state {}", state.index())
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
