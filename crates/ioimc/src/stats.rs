//! Model statistics.
//!
//! The paper's experimental claims are largely about state-space sizes (e.g. the
//! cascaded PAND system peaks at 156 states / 490 transitions under compositional
//! aggregation versus 4113 states / 24608 transitions for the monolithic
//! approach).  [`ModelStats`] is the record the benchmark harness collects for each
//! intermediate model.

use crate::model::IoImcOf;
use crate::rate::Rate;
use std::fmt;

/// Size statistics of one I/O-IMC.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelStats {
    /// Number of states.
    pub states: usize,
    /// Number of interactive transitions.
    pub interactive_transitions: usize,
    /// Number of Markovian transitions.
    pub markovian_transitions: usize,
    /// Number of input actions in the signature.
    pub inputs: usize,
    /// Number of output actions in the signature.
    pub outputs: usize,
    /// Number of internal actions in the signature.
    pub internals: usize,
}

impl ModelStats {
    /// Collects the statistics of `model` (any rate type).
    pub fn of<R: Rate>(model: &IoImcOf<R>) -> ModelStats {
        ModelStats {
            states: model.num_states(),
            interactive_transitions: model.num_interactive(),
            markovian_transitions: model.num_markovian(),
            inputs: model.signature().num_inputs(),
            outputs: model.signature().num_outputs(),
            internals: model.signature().num_internals(),
        }
    }

    /// Total number of transitions.
    pub fn transitions(&self) -> usize {
        self.interactive_transitions + self.markovian_transitions
    }

    /// Componentwise maximum, used to track the *peak* intermediate size during
    /// compositional aggregation.
    pub fn max(self, other: ModelStats) -> ModelStats {
        ModelStats {
            states: self.states.max(other.states),
            interactive_transitions: self
                .interactive_transitions
                .max(other.interactive_transitions),
            markovian_transitions: self.markovian_transitions.max(other.markovian_transitions),
            inputs: self.inputs.max(other.inputs),
            outputs: self.outputs.max(other.outputs),
            internals: self.internals.max(other.internals),
        }
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({} interactive, {} Markovian)",
            self.states,
            self.transitions(),
            self.interactive_transitions,
            self.markovian_transitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;

    #[test]
    fn stats_reflect_the_model() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.output(s[1], Action::new("stats_f"), s[2]);
        b.input(s[0], Action::new("stats_g"), s[2]);
        let m = b.build().unwrap();
        let stats = ModelStats::of(&m);
        assert_eq!(stats.states, 3);
        assert_eq!(stats.interactive_transitions, 2);
        assert_eq!(stats.markovian_transitions, 1);
        assert_eq!(stats.transitions(), 3);
        assert_eq!(stats.inputs, 1);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.internals, 0);
        assert!(stats.to_string().contains("3 states"));
    }

    #[test]
    fn max_is_componentwise() {
        let a = ModelStats {
            states: 10,
            interactive_transitions: 3,
            ..Default::default()
        };
        let b = ModelStats {
            states: 4,
            interactive_transitions: 9,
            ..Default::default()
        };
        let m = a.max(b);
        assert_eq!(m.states, 10);
        assert_eq!(m.interactive_transitions, 9);
    }
}
