//! A dependency-free binary codec for I/O-IMC models.
//!
//! The persistent model cache (see `dft_core::store`) serializes *closed*
//! aggregated models to disk so a fleet of analysis servers can share one
//! aggregation run across processes and restarts.  This module provides the
//! wire layer that makes an [`IoImcOf`] externalizable without any external
//! crates:
//!
//! * [`Writer`] / [`Reader`] — bounds-checked little-endian primitives
//!   (integers, IEEE-754 bit patterns, length-prefixed strings);
//! * [`RateCodec`] — the rate-generic hook: `f64` rates encode as their bit
//!   pattern, [`RateForm`]s as their sparse `(slot, coefficient)` term lists,
//!   so the *same* model codec serves numeric and parametric closed models;
//! * [`encode_model`] / [`decode_model`] — the model codec itself.
//!
//! [`Action`]s are interned per process, so the codec ships action *names* and
//! re-interns them on decode; everything else round-trips structurally.
//! [`decode_model`] re-validates the result ([`IoImcOf::validate`]) and fails
//! with a [`DecodeError`] instead of panicking on truncated or corrupted
//! input — the store treats any such failure as a cache miss and rebuilds.
//!
//! Round-tripping is exact: rates are carried as IEEE-754 bit patterns and the
//! constructor re-sorts transitions with the same deterministic order the
//! original model was built with, so a decoded model answers every query
//! bit-identically to the model that was encoded (within the same process).

use crate::action::Action;
use crate::model::{InteractiveTransition, IoImcOf, Label, MarkovianTransitionOf, StateId};
use crate::rate::{Rate, RateForm};
use crate::signature::Signature;
use std::fmt;

/// A decoding failure: truncated input, a malformed field, or a decoded model
/// that fails validation.  Deliberately coarse — the persistent store treats
/// every decode failure the same way (reject the entry and rebuild).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for decoding operations.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;

/// A growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer and returns the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the wire format is 64-bit everywhere).
    pub fn len_prefix(&mut self, v: usize) {
        // xlint: allow(cast) -- usize to u64 widening is lossless on every supported target
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.len_prefix(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked cursor over an immutable byte slice; every accessor fails
/// with a [`DecodeError`] instead of panicking when the input is too short.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self.pos.checked_add(n);
        match end.and_then(|end| self.bytes.get(self.pos..end)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(DecodeError::new(format!(
                "truncated input: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            ))),
        }
    }

    /// Reads exactly `N` bytes into a fixed-size array; infallible once the
    /// length check passes, so the integer readers below need no conversion
    /// that could panic.
    fn take_array<const N: usize>(&mut self) -> DecodeResult<[u8; N]> {
        let slice = self.take(N)?;
        let mut array = [0u8; N];
        for (dst, src) in array.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(array)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> DecodeResult<u8> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    /// Reads a length prefix and sanity-checks it against the remaining input
    /// (each counted element needs at least `min_element_size` bytes), so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn len_prefix(&mut self, min_element_size: usize) -> DecodeResult<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| DecodeError::new(format!("length {n} exceeds the address space")))?;
        if n.saturating_mul(min_element_size.max(1)) > self.remaining() {
            return Err(DecodeError::new(format!(
                "length {n} at offset {} exceeds the {} remaining bytes",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` byte, rejecting anything but 0 and 1.
    pub fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::new(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DecodeResult<String> {
        let len = self.len_prefix(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new("string payload is not valid UTF-8"))
    }
}

/// Rates that can cross the wire.  Implemented for `f64` (numeric closed
/// models) and [`RateForm`] (parametric closed models), which is what makes
/// the transition codec rate-generic.
pub trait RateCodec: Rate {
    /// Appends the rate to the writer.
    fn encode_rate(&self, w: &mut Writer);
    /// Reads one rate back.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input; semantic validity (finite,
    /// positive, …) is re-checked by the model validation after decoding.
    fn decode_rate(r: &mut Reader<'_>) -> DecodeResult<Self>;
}

impl RateCodec for f64 {
    fn encode_rate(&self, w: &mut Writer) {
        w.f64(*self);
    }

    fn decode_rate(r: &mut Reader<'_>) -> DecodeResult<f64> {
        r.f64()
    }
}

impl RateCodec for RateForm {
    fn encode_rate(&self, w: &mut Writer) {
        w.len_prefix(self.num_terms());
        for &(slot, coefficient) in self.terms() {
            w.u32(slot);
            w.f64(coefficient);
        }
    }

    fn decode_rate(r: &mut Reader<'_>) -> DecodeResult<RateForm> {
        let n = r.len_prefix(12)?;
        let mut form = RateForm::zero();
        for _ in 0..n {
            let slot = r.u32()?;
            let coefficient = r.f64()?;
            // `add_assign` merges and canonicalizes, so even a non-canonical
            // encoding decodes to the canonical sparse form.
            form.add_assign(&RateForm::scaled_var(slot, coefficient));
        }
        Ok(form)
    }
}

/// Wire tags for the three interactive label kinds.
const LABEL_INPUT: u8 = 0;
const LABEL_OUTPUT: u8 = 1;
const LABEL_INTERNAL: u8 = 2;

/// Encodes a model onto `w`.  The inverse of [`decode_model`].
///
/// Action names are pooled into one table and referenced by index, so a
/// signal that labels many transitions is shipped once.
pub fn encode_model<R: RateCodec>(model: &IoImcOf<R>, w: &mut Writer) {
    // Every action a valid model references appears in its signature, so the
    // signature sets *are* the action table.
    let actions: Vec<Action> = model
        .signature()
        .inputs()
        .chain(model.signature().outputs())
        .chain(model.signature().internals())
        .collect();
    // Unreachable for validated models (every labelled action appears in the
    // signature): instead of panicking on an unvalidated one, encode the
    // sentinel index, which the decoder rejects as out of range — the store
    // then treats the entry as corrupt and rebuilds.
    let index_of = |a: Action| -> u32 {
        actions
            .iter()
            .position(|&b| b == a)
            .and_then(|i| u32::try_from(i).ok())
            .unwrap_or(u32::MAX)
    };

    w.str(model.name());
    w.len_prefix(model.num_states());
    w.u32(model.initial().raw());

    w.len_prefix(actions.len());
    for &a in &actions {
        w.str(a.name());
    }
    w.len_prefix(model.signature().num_inputs());
    w.len_prefix(model.signature().num_outputs());
    w.len_prefix(model.signature().num_internals());

    w.len_prefix(model.num_interactive());
    for t in model.interactive() {
        w.u32(t.from.raw());
        let (kind, action) = match t.label {
            Label::Input(a) => (LABEL_INPUT, a),
            Label::Output(a) => (LABEL_OUTPUT, a),
            Label::Internal(a) => (LABEL_INTERNAL, a),
        };
        w.u8(kind);
        w.u32(index_of(action));
        w.u32(t.to.raw());
    }

    w.len_prefix(model.num_markovian());
    for t in model.markovian() {
        w.u32(t.from.raw());
        t.rate.encode_rate(w);
        w.u32(t.to.raw());
    }

    w.len_prefix(model.prop_names().len());
    for name in model.prop_names() {
        w.str(name);
    }
    for s in model.states() {
        w.u64(model.prop_mask(s));
    }
}

/// Decodes a model previously written by [`encode_model`], re-interning its
/// action names and re-validating the result.
///
/// # Errors
///
/// Fails on truncated or malformed input, on out-of-range indices, and when
/// the decoded model does not pass [`IoImcOf::validate`].
pub fn decode_model<R: RateCodec>(r: &mut Reader<'_>) -> DecodeResult<IoImcOf<R>> {
    let name = r.str()?;
    let num_states = r.len_prefix(0)?;
    let num_states = u32::try_from(num_states)
        .map_err(|_| DecodeError::new(format!("state count {num_states} exceeds u32")))?;
    // Every state index must be checked against the declared state count
    // *here*: the model constructor indexes its per-state tables with them,
    // so an out-of-range id from corrupt bytes must never reach it.
    let state_at = |raw: u32| -> DecodeResult<StateId> {
        if raw < num_states {
            Ok(StateId::new(raw))
        } else {
            Err(DecodeError::new(format!(
                "state index {raw} out of range ({num_states} states)"
            )))
        }
    };
    let initial = state_at(r.u32()?)?;

    let num_actions = r.len_prefix(8)?;
    let actions: Vec<Action> = (0..num_actions)
        .map(|_| Ok(Action::new(&r.str()?)))
        .collect::<DecodeResult<_>>()?;
    let action_at = |index: u32| -> DecodeResult<Action> {
        usize::try_from(index)
            .ok()
            .and_then(|i| actions.get(i))
            .copied()
            .ok_or_else(|| {
                DecodeError::new(format!(
                    "action index {index} out of range ({num_actions} actions)"
                ))
            })
    };

    let (inputs, outputs, internals) = (r.len_prefix(0)?, r.len_prefix(0)?, r.len_prefix(0)?);
    if inputs + outputs + internals != num_actions {
        return Err(DecodeError::new(format!(
            "signature splits {num_actions} actions into {inputs}+{outputs}+{internals}"
        )));
    }
    let mut signature = Signature::new();
    for (i, &a) in actions.iter().enumerate() {
        if i < inputs {
            signature.add_input(a);
        } else if i < inputs + outputs {
            signature.add_output(a);
        } else {
            signature.add_internal(a);
        }
    }

    let num_interactive = r.len_prefix(13)?;
    let mut interactive = Vec::with_capacity(num_interactive);
    for _ in 0..num_interactive {
        let from = state_at(r.u32()?)?;
        let kind = r.u8()?;
        let action = action_at(r.u32()?)?;
        let to = state_at(r.u32()?)?;
        let label = match kind {
            LABEL_INPUT => Label::Input(action),
            LABEL_OUTPUT => Label::Output(action),
            LABEL_INTERNAL => Label::Internal(action),
            other => return Err(DecodeError::new(format!("invalid label kind {other}"))),
        };
        interactive.push(InteractiveTransition { from, label, to });
    }

    let num_markovian = r.len_prefix(9)?;
    let mut markovian = Vec::with_capacity(num_markovian);
    for _ in 0..num_markovian {
        let from = state_at(r.u32()?)?;
        let rate = R::decode_rate(r)?;
        let to = state_at(r.u32()?)?;
        markovian.push(MarkovianTransitionOf { from, rate, to });
    }

    let num_props = r.len_prefix(8)?;
    if num_props > 64 {
        return Err(DecodeError::new(format!(
            "{num_props} atomic propositions exceed the 64-bit mask"
        )));
    }
    let prop_names: Vec<String> = (0..num_props)
        .map(|_| r.str())
        .collect::<DecodeResult<_>>()?;
    let props: Vec<u64> = (0..num_states)
        .map(|_| r.u64())
        .collect::<DecodeResult<_>>()?;

    let model = IoImcOf::from_parts(
        name,
        signature,
        num_states,
        initial,
        interactive,
        markovian,
        prop_names,
        props,
    );
    model
        .validate()
        .map_err(|e| DecodeError::new(format!("decoded model fails validation: {e}")))?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilderOf;

    fn sample() -> IoImcOf<f64> {
        let mut b = IoImcBuilderOf::<f64>::new("codec-sample");
        let s = [b.add_state(), b.add_state(), b.add_state(), b.add_state()];
        b.initial(s[0]);
        b.markovian(s[0], 1.5, s[1]);
        b.markovian(s[0], 0.25, s[2]);
        b.input(s[0], Action::new("codec_go"), s[2]);
        b.output(s[1], Action::new("codec_done"), s[3]);
        b.internal(s[2], Action::new("codec_step"), s[3]);
        let failed = b.prop("failed");
        b.set_prop(s[3], failed);
        b.build().unwrap()
    }

    fn roundtrip<R: RateCodec>(model: &IoImcOf<R>) -> IoImcOf<R> {
        let mut w = Writer::new();
        encode_model(model, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = decode_model::<R>(&mut r).unwrap();
        assert!(r.is_done(), "decode must consume the whole encoding");
        decoded
    }

    #[test]
    fn numeric_models_round_trip_exactly() {
        let model = sample();
        let decoded = roundtrip(&model);
        assert_eq!(decoded.name(), model.name());
        assert_eq!(decoded.num_states(), model.num_states());
        assert_eq!(decoded.initial(), model.initial());
        assert_eq!(decoded.interactive(), model.interactive());
        assert_eq!(decoded.markovian(), model.markovian());
        assert_eq!(decoded.signature(), model.signature());
        assert_eq!(decoded.prop_names(), model.prop_names());
        for s in model.states() {
            assert_eq!(decoded.prop_mask(s), model.prop_mask(s));
        }
    }

    #[test]
    fn parametric_models_round_trip_exactly() {
        let mut b = IoImcBuilderOf::<RateForm>::new("codec-parametric");
        let s = [b.add_state(), b.add_state()];
        b.initial(s[0]);
        let mut form = RateForm::var(0);
        form.add_assign(&RateForm::scaled_var(3, 0.25));
        b.markovian(s[0], form, s[1]);
        b.output(s[1], Action::new("codec_pfail"), s[1]);
        let model = b.build().unwrap();
        let decoded = roundtrip(&model);
        assert_eq!(decoded.markovian(), model.markovian());
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        let mut w = Writer::new();
        encode_model(&sample(), &mut w);
        let bytes = w.into_bytes();
        // Every strict prefix fails with an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_model::<f64>(&mut Reader::new(&bytes[..cut])).is_err());
        }
        // An empty input fails too.
        assert!(decode_model::<f64>(&mut Reader::new(&[])).is_err());
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut w = Writer::new();
        w.str("evil");
        w.u64(u64::MAX); // claims u64::MAX states
        let bytes = w.into_bytes();
        assert!(decode_model::<f64>(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn reader_primitives_are_bounds_checked() {
        let mut r = Reader::new(&[1, 0]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u32().is_err());
        assert_eq!(r.remaining(), 1);
        let mut r = Reader::new(&[2]);
        assert!(r.bool().is_err(), "2 is not a boolean");
    }
}
