//! Utilities for *closed* models.
//!
//! After the last composition step of compositional aggregation, the resulting
//! I/O-IMC no longer has communication partners.  Input actions that remain in its
//! signature can never be triggered (there is nobody left to output them), outputs
//! are only interesting as observations (e.g. the top-level failure signal), and
//! the model can be interpreted as a continuous-time Markov chain — or, when
//! immediate non-determinism remains, as a continuous-time Markov decision process.
//!
//! This module provides the final massaging steps: removing dead input transitions,
//! computing which states can fire a given output without letting time pass, and
//! checking whether the model is free of immediate non-determinism.

use crate::action::Action;
use crate::model::{IoImcOf, Label, StateId};
use crate::rate::Rate;
use crate::{Error, Result};

/// Removes every input transition and every input action of the signature.
///
/// In a closed model there is no environment left to provide inputs, so input
/// transitions are dead code.  Outputs and internal transitions are untouched.
pub fn drop_input_transitions<R: Rate>(model: &IoImcOf<R>) -> IoImcOf<R> {
    let interactive: Vec<_> = model
        .interactive()
        .iter()
        .filter(|t| !t.label.is_input())
        .copied()
        .collect();
    let mut signature = model.signature().clone();
    let inputs: Vec<Action> = signature.inputs().collect();
    for a in inputs {
        signature.remove(a);
    }
    IoImcOf::from_parts(
        model.name().to_owned(),
        signature,
        model.num_states,
        model.initial(),
        interactive,
        model.markovian().to_vec(),
        model.prop_names.clone(),
        model.props.clone(),
    )
    .restrict_to_reachable()
}

/// Returns, for every state, whether an output of `action` can occur from it
/// without any time passing — i.e. following only immediate (output or internal)
/// transitions.
///
/// For reliability analysis the top event of a DFT has failed *at* the instant such
/// a state is entered, so these states form the goal set of the time-bounded
/// reachability problem.
pub fn can_fire_immediately<R: Rate>(model: &IoImcOf<R>, action: Action) -> Vec<bool> {
    let n = model.num_states();
    let mut can = vec![false; n];
    // Seed: states with a direct output of `action`.
    for t in model.interactive() {
        if t.label == Label::Output(action) {
            can[t.from.index()] = true;
        }
    }
    // Backward closure over immediate transitions: if an immediate transition leads
    // to a state that can fire, so can its source.
    let mut changed = true;
    while changed {
        changed = false;
        for t in model.interactive() {
            if t.label.is_immediate() && can[t.to.index()] && !can[t.from.index()] {
                can[t.from.index()] = true;
                changed = true;
            }
        }
    }
    can
}

/// Returns, for every state, whether *every* maximal immediate run from it fires an
/// output of `action`.
///
/// This is the pessimistic (lower-bound) counterpart of [`can_fire_immediately`]:
/// when immediate non-determinism remains, a state certainly represents a failure
/// only if the failure signal is emitted no matter how the non-determinism is
/// resolved.
pub fn must_fire_immediately<R: Rate>(model: &IoImcOf<R>, action: Action) -> Vec<bool> {
    let n = model.num_states();
    // Greatest fixpoint: start optimistic (every urgent state might be forced),
    // then strip states that have an escape.
    let mut must = vec![false; n];
    for s in model.states() {
        let direct = model
            .interactive_from(s)
            .iter()
            .any(|t| t.label == Label::Output(action));
        must[s.index()] = direct || model.is_urgent(s);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for s in model.states() {
            if !must[s.index()] {
                continue;
            }
            let direct = model
                .interactive_from(s)
                .iter()
                .any(|t| t.label == Label::Output(action));
            if direct {
                continue;
            }
            // Not a direct firing state: every immediate successor must be forced.
            let immediates: Vec<StateId> = model
                .interactive_from(s)
                .iter()
                .filter(|t| t.label.is_immediate())
                .map(|t| t.to)
                .collect();
            let ok = !immediates.is_empty() && immediates.iter().all(|t| must[t.index()]);
            if !ok {
                must[s.index()] = false;
                changed = true;
            }
        }
    }
    must
}

/// Checks that the closed model has no immediate non-determinism: every state has
/// at most one outgoing immediate (output or internal) transition.
///
/// # Errors
///
/// Returns [`Error::Nondeterministic`] naming a state with two or more immediate
/// alternatives.  Such a model must be analysed as a CTMDP.
pub fn check_deterministic<R: Rate>(model: &IoImcOf<R>) -> Result<()> {
    for s in model.states() {
        let immediate = model
            .interactive_from(s)
            .iter()
            .filter(|t| t.label.is_immediate())
            .count();
        if immediate > 1 {
            return Err(Error::Nondeterministic { state: s });
        }
    }
    Ok(())
}

/// Checks that the model has no input actions left.
///
/// # Errors
///
/// Returns [`Error::NotClosed`] naming one of the remaining input actions.
pub fn check_closed<R: Rate>(model: &IoImcOf<R>) -> Result<()> {
    if let Some(a) = model.signature().inputs().next() {
        return Err(Error::NotClosed { action: a });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn input_transitions_are_dropped() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.input(s[0], act("cl_in"), s[1]);
        b.markovian(s[0], 1.0, s[2]);
        let m = b.build().unwrap();
        let closed = drop_input_transitions(&m);
        assert_eq!(closed.num_interactive(), 0);
        assert!(!closed.signature().is_input(act("cl_in")));
        // s1 becomes unreachable.
        assert_eq!(closed.num_states(), 2);
        assert!(check_closed(&closed).is_ok());
        assert!(check_closed(&m).is_err());
    }

    #[test]
    fn immediate_firing_closure() {
        let f = act("cl_fire");
        let tau = act("cl_tau");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(5);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.output(s[2], f, s[3]);
        // s4 is unrelated.
        b.markovian(s[3], 1.0, s[4]);
        let m = b.build().unwrap();
        let can = can_fire_immediately(&m, f);
        assert!(
            !can[s[0].index()],
            "a Markovian delay separates s0 from firing"
        );
        assert!(can[s[1].index()]);
        assert!(can[s[2].index()]);
        assert!(!can[s[3].index()]);
        assert!(!can[s[4].index()]);
    }

    #[test]
    fn must_fire_requires_all_branches() {
        let f = act("cl_must_fire");
        let tau = act("cl_must_tau");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(5);
        b.initial(s[0]);
        // s0 nondeterministically goes to a firing branch or a silent dead end.
        b.internal(s[0], tau, s[1]);
        b.internal(s[0], tau, s[2]);
        b.output(s[1], f, s[3]);
        b.internal(s[2], tau, s[4]);
        let m = b.build().unwrap();
        let can = can_fire_immediately(&m, f);
        let must = must_fire_immediately(&m, f);
        assert!(can[s[0].index()]);
        assert!(!must[s[0].index()]);
        assert!(must[s[1].index()]);
        assert!(!must[s[2].index()]);
    }

    #[test]
    fn determinism_check() {
        let f = act("cl_det_f");
        let g = act("cl_det_g");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.output(s[0], f, s[1]);
        b.output(s[0], g, s[2]);
        let m = b.build().unwrap();
        assert!(matches!(
            check_deterministic(&m),
            Err(Error::Nondeterministic { .. })
        ));

        let mut b2 = IoImcBuilder::new("m2");
        let t = b2.add_states(2);
        b2.initial(t[0]);
        b2.output(t[0], f, t[1]);
        let m2 = b2.build().unwrap();
        assert!(check_deterministic(&m2).is_ok());
    }
}
