//! Rate abstraction: numeric rates and symbolic linear rate forms.
//!
//! Every Markovian transition of an [`IoImcOf`](crate::model::IoImcOf) carries a
//! *rate*.  The classical instantiation is `f64` — a concrete exponential rate —
//! but all operations the compositional-aggregation pipeline performs on rates
//! (copying them through composition, hiding and renaming; *summing* them during
//! Markovian lumping; comparing them for lumpability) are equally meaningful for
//! *symbolic* rates.  The [`Rate`] trait captures exactly that interface, and
//! [`RateForm`] provides the symbolic instantiation: a sparse linear form
//! `Σ cᵢ·λᵢ` over parameter slots.
//!
//! Aggregating a model over [`RateForm`] rates lumps two states only when their
//! cumulative rate *forms* into every block coincide — a stronger condition than
//! numeric equality at any single valuation, and therefore sound for **every**
//! valuation of the parameters at once.  This is what lets a parametric model be
//! aggregated once and instantiated for a whole sweep of rate assignments at
//! query time.

use std::fmt;

/// The interface rates must provide for model construction and aggregation.
///
/// The pipeline needs to clone rates (composition, hiding, renaming), add them
/// (Markovian lumping sums the rates of merged transitions), test them for
/// validity (a rate no valuation can make positive and finite is a modelling
/// error) and derive a canonical, hashable [`Key`](Rate::Key) from them (the
/// partition refinement groups states by their cumulative rate per block).
pub trait Rate: Clone + PartialEq + fmt::Debug + fmt::Display + Send + Sync + 'static {
    /// Canonical, hashable and totally ordered stand-in for a rate value, used
    /// by the bisimulation signatures.  Two rates are lumpable together exactly
    /// when their keys are equal.
    type Key: Clone + Eq + Ord + std::hash::Hash + fmt::Debug;

    /// The additive identity (the rate of "no transition").
    fn zero() -> Self;

    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool;

    /// Adds `other` onto `self` (Markovian lumping).
    fn add_assign(&mut self, other: &Self);

    /// Returns `true` if the rate is well-formed: for `f64`, finite and
    /// strictly positive; for [`RateForm`], a non-empty form whose coefficients
    /// are all finite and strictly positive (so every positive valuation
    /// evaluates it to a valid numeric rate).
    fn is_valid(&self) -> bool;

    /// The canonical key of this rate.
    fn key(&self) -> Self::Key;
}

impl Rate for f64 {
    type Key = u64;

    fn zero() -> f64 {
        0.0
    }

    fn is_zero(&self) -> bool {
        *self == 0.0
    }

    fn add_assign(&mut self, other: &f64) {
        *self += other;
    }

    fn is_valid(&self) -> bool {
        self.is_finite() && *self > 0.0
    }

    fn key(&self) -> u64 {
        self.to_bits()
    }
}

/// A sparse linear rate form `Σ cᵢ·λᵢ` over parameter slots.
///
/// Each term pairs a parameter *slot* (a dense index assigned by whoever builds
/// the parametric model — e.g. one failure-rate slot per basic event) with a
/// strictly positive coefficient.  Terms are kept sorted by slot with no
/// duplicates and no zero coefficients, so structural equality (`==`) is
/// semantic equality of the linear forms and [`Rate::key`] is canonical.
///
/// [`eval`](RateForm::eval) instantiates the form against a slice of per-slot
/// values.  Evaluation is deterministic (terms are summed in slot order), so
/// instantiating the same aggregated model twice with the same valuation is
/// bit-identical.
///
/// # Examples
///
/// ```
/// use ioimc::rate::{Rate, RateForm};
///
/// let lambda0 = RateForm::var(0);
/// let mut sum = RateForm::scaled_var(1, 0.5); // dormant: 0.5·λ₁
/// sum.add_assign(&lambda0);                   // lumped with λ₀
/// assert_eq!(sum.num_terms(), 2);
/// assert!((sum.eval(&[2.0, 4.0]) - 4.0).abs() < 1e-12); // 1·2 + 0.5·4
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateForm {
    /// `(slot, coefficient)` pairs, sorted by slot, coefficients non-zero.
    terms: Vec<(u32, f64)>,
}

impl RateForm {
    /// The form `1·λ_slot`.
    pub fn var(slot: u32) -> RateForm {
        RateForm {
            terms: vec![(slot, 1.0)],
        }
    }

    /// The form `coefficient·λ_slot`.  A zero coefficient yields the zero form.
    pub fn scaled_var(slot: u32, coefficient: f64) -> RateForm {
        if coefficient == 0.0 {
            RateForm { terms: Vec::new() }
        } else {
            RateForm {
                terms: vec![(slot, coefficient)],
            }
        }
    }

    /// The terms of the form: `(slot, coefficient)` pairs in slot order.
    pub fn terms(&self) -> &[(u32, f64)] {
        &self.terms
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The largest slot mentioned by the form, if any.
    pub fn max_slot(&self) -> Option<u32> {
        self.terms.last().map(|&(s, _)| s)
    }

    /// Evaluates the form against per-slot values: `Σ cᵢ·values[slotᵢ]`.
    ///
    /// Terms are summed in slot order, so evaluation is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the form mentions a slot outside `values` — callers are
    /// expected to validate the valuation length against the parameter table
    /// the model was built with.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|&(slot, c)| c * values[slot as usize])
            .sum()
    }
}

impl Rate for RateForm {
    type Key = Vec<(u32, u64)>;

    fn zero() -> RateForm {
        RateForm { terms: Vec::new() }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn add_assign(&mut self, other: &RateForm) {
        if other.terms.is_empty() {
            return;
        }
        // Merge two slot-sorted term lists, summing coefficients on equal slots.
        let mut merged = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (sa, ca) = self.terms[i];
            let (sb, cb) = other.terms[j];
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => {
                    merged.push((sa, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((sb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = ca + cb;
                    if c != 0.0 {
                        merged.push((sa, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.terms[i..]);
        merged.extend_from_slice(&other.terms[j..]);
        self.terms = merged;
    }

    fn is_valid(&self) -> bool {
        !self.terms.is_empty() && self.terms.iter().all(|&(_, c)| c.is_finite() && c > 0.0)
    }

    fn key(&self) -> Vec<(u32, u64)> {
        self.terms.iter().map(|&(s, c)| (s, c.to_bits())).collect()
    }
}

impl fmt::Display for RateForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, &(slot, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if c == 1.0 {
                write!(f, "p{slot}")?;
            } else {
                write!(f, "{c}*p{slot}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_rate_interface() {
        let mut r = 1.5f64;
        r.add_assign(&2.5);
        assert_eq!(r, 4.0);
        assert!(r.is_valid());
        assert!(!f64::zero().is_valid());
        assert!(f64::zero().is_zero());
        assert!(!(-1.0f64).is_valid());
        assert!(!f64::NAN.is_valid());
        assert_eq!(4.0f64.key(), 4.0f64.to_bits());
    }

    #[test]
    fn forms_merge_sorted_and_canonical() {
        let mut a = RateForm::var(3);
        a.add_assign(&RateForm::scaled_var(1, 0.5));
        a.add_assign(&RateForm::var(3));
        assert_eq!(a.terms(), &[(1, 0.5), (3, 2.0)]);
        assert_eq!(a.max_slot(), Some(3));
        assert_eq!(a.num_terms(), 2);
        assert!(a.is_valid());
        assert!((a.eval(&[0.0, 4.0, 0.0, 1.5]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_scaled_zero() {
        let z = RateForm::zero();
        assert!(z.is_zero());
        assert!(!z.is_valid());
        assert_eq!(RateForm::scaled_var(7, 0.0), z);
        let mut v = RateForm::var(2);
        v.add_assign(&z);
        assert_eq!(v, RateForm::var(2));
    }

    #[test]
    fn equality_is_semantic() {
        let mut a = RateForm::var(0);
        a.add_assign(&RateForm::var(1));
        let mut b = RateForm::var(1);
        b.add_assign(&RateForm::var(0));
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        assert_ne!(a, RateForm::var(0));
    }

    #[test]
    fn display_is_readable() {
        let mut a = RateForm::scaled_var(2, 0.5);
        a.add_assign(&RateForm::var(0));
        assert_eq!(a.to_string(), "p0 + 0.5*p2");
        assert_eq!(RateForm::zero().to_string(), "0");
    }

    #[test]
    fn invalid_coefficients_are_detected() {
        assert!(!RateForm::scaled_var(0, -1.0).is_valid());
        assert!(!RateForm::scaled_var(0, f64::INFINITY).is_valid());
        assert!(RateForm::scaled_var(0, 0.5).is_valid());
    }
}
