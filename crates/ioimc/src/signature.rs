//! Action signatures.
//!
//! Every I/O-IMC declares which actions it uses as inputs, outputs and internal
//! actions.  The signature determines how models synchronise under parallel
//! composition: an action that is an output of one component and an input of
//! another is performed jointly, with the output side deciding when.

use crate::action::Action;
use crate::{Error, Result};
use std::collections::BTreeSet;
use std::fmt;

/// The action signature of an I/O-IMC: disjoint sets of input, output and internal
/// actions.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, Signature};
/// let mut sig = Signature::new();
/// sig.add_input(Action::new("f_child"));
/// sig.add_output(Action::new("f_gate"));
/// assert!(sig.is_input(Action::new("f_child")));
/// assert!(sig.is_output(Action::new("f_gate")));
/// assert!(sig.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    inputs: BTreeSet<Action>,
    outputs: BTreeSet<Action>,
    internals: BTreeSet<Action>,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Adds an input action.
    pub fn add_input(&mut self, action: Action) -> &mut Self {
        self.inputs.insert(action);
        self
    }

    /// Adds an output action.
    pub fn add_output(&mut self, action: Action) -> &mut Self {
        self.outputs.insert(action);
        self
    }

    /// Adds an internal action.
    pub fn add_internal(&mut self, action: Action) -> &mut Self {
        self.internals.insert(action);
        self
    }

    /// Removes an action from every role it appears in.
    pub fn remove(&mut self, action: Action) {
        self.inputs.remove(&action);
        self.outputs.remove(&action);
        self.internals.remove(&action);
    }

    /// Returns `true` if `action` is an input of this signature.
    pub fn is_input(&self, action: Action) -> bool {
        self.inputs.contains(&action)
    }

    /// Returns `true` if `action` is an output of this signature.
    pub fn is_output(&self, action: Action) -> bool {
        self.outputs.contains(&action)
    }

    /// Returns `true` if `action` is an internal action of this signature.
    pub fn is_internal(&self, action: Action) -> bool {
        self.internals.contains(&action)
    }

    /// Returns `true` if `action` is visible (input or output) in this signature.
    pub fn is_visible(&self, action: Action) -> bool {
        self.is_input(action) || self.is_output(action)
    }

    /// Iterates over the input actions in sorted (interning) order.
    pub fn inputs(&self) -> impl Iterator<Item = Action> + '_ {
        self.inputs.iter().copied()
    }

    /// Iterates over the output actions in sorted (interning) order.
    pub fn outputs(&self) -> impl Iterator<Item = Action> + '_ {
        self.outputs.iter().copied()
    }

    /// Iterates over the internal actions in sorted (interning) order.
    pub fn internals(&self) -> impl Iterator<Item = Action> + '_ {
        self.internals.iter().copied()
    }

    /// Number of input actions.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output actions.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of internal actions.
    pub fn num_internals(&self) -> usize {
        self.internals.len()
    }

    /// Checks that no action plays two roles at once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ConflictingSignature`] naming the first action that appears
    /// in more than one of the three sets.
    pub fn validate(&self) -> Result<()> {
        for &a in &self.inputs {
            if self.outputs.contains(&a) || self.internals.contains(&a) {
                return Err(Error::ConflictingSignature { action: a });
            }
        }
        for &a in &self.outputs {
            if self.internals.contains(&a) {
                return Err(Error::ConflictingSignature { action: a });
            }
        }
        Ok(())
    }

    /// Returns `true` if `action` occurs anywhere in this signature.
    pub fn contains(&self, action: Action) -> bool {
        self.is_input(action) || self.is_output(action) || self.is_internal(action)
    }

    /// Checks whether this signature is *composable* with `other`:
    ///
    /// * output sets must be disjoint (no action is controlled by two components);
    /// * internal actions of one must not occur in the other at all.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutputClash`] or [`Error::InternalClash`] describing the
    /// violation; the `left`/`right` fields are filled in with the supplied names.
    pub fn check_composable(
        &self,
        other: &Signature,
        left_name: &str,
        right_name: &str,
    ) -> Result<()> {
        for &a in &self.outputs {
            if other.outputs.contains(&a) {
                return Err(Error::OutputClash {
                    action: a,
                    left: left_name.to_owned(),
                    right: right_name.to_owned(),
                });
            }
        }
        for &a in &self.internals {
            if other.contains(a) {
                return Err(Error::InternalClash {
                    action: a,
                    left: left_name.to_owned(),
                    right: right_name.to_owned(),
                });
            }
        }
        for &a in &other.internals {
            if self.contains(a) {
                return Err(Error::InternalClash {
                    action: a,
                    left: left_name.to_owned(),
                    right: right_name.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Computes the signature of the parallel composition of two composable
    /// signatures: outputs and internal actions are united, inputs are united and
    /// then stripped of actions that became outputs.
    pub fn composed_with(&self, other: &Signature) -> Signature {
        let outputs: BTreeSet<Action> = self.outputs.union(&other.outputs).copied().collect();
        let internals: BTreeSet<Action> = self.internals.union(&other.internals).copied().collect();
        let inputs: BTreeSet<Action> = self
            .inputs
            .union(&other.inputs)
            .copied()
            .filter(|a| !outputs.contains(a))
            .collect();
        Signature {
            inputs,
            outputs,
            internals,
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_set =
            |set: &BTreeSet<Action>| set.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ");
        write!(
            f,
            "inputs: {{{}}}, outputs: {{{}}}, internal: {{{}}}",
            fmt_set(&self.inputs),
            fmt_set(&self.outputs),
            fmt_set(&self.internals)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn roles_are_tracked() {
        let mut sig = Signature::new();
        sig.add_input(act("in1"))
            .add_output(act("out1"))
            .add_internal(act("tau1"));
        assert!(sig.is_input(act("in1")));
        assert!(sig.is_output(act("out1")));
        assert!(sig.is_internal(act("tau1")));
        assert!(sig.is_visible(act("in1")));
        assert!(sig.is_visible(act("out1")));
        assert!(!sig.is_visible(act("tau1")));
        assert!(sig.contains(act("tau1")));
        assert!(!sig.contains(act("absent")));
        assert_eq!(sig.num_inputs(), 1);
        assert_eq!(sig.num_outputs(), 1);
        assert_eq!(sig.num_internals(), 1);
    }

    #[test]
    fn validate_detects_conflicts() {
        let mut sig = Signature::new();
        sig.add_input(act("dup")).add_output(act("dup"));
        assert_eq!(
            sig.validate(),
            Err(Error::ConflictingSignature { action: act("dup") })
        );

        let mut sig2 = Signature::new();
        sig2.add_output(act("dup2")).add_internal(act("dup2"));
        assert!(sig2.validate().is_err());

        let mut ok = Signature::new();
        ok.add_input(act("i"))
            .add_output(act("o"))
            .add_internal(act("t"));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn output_clash_is_rejected() {
        let mut a = Signature::new();
        a.add_output(act("shared_out"));
        let mut b = Signature::new();
        b.add_output(act("shared_out"));
        let err = a.check_composable(&b, "A", "B").unwrap_err();
        match err {
            Error::OutputClash { action, .. } => assert_eq!(action, act("shared_out")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn internal_clash_is_rejected() {
        let mut a = Signature::new();
        a.add_internal(act("secret"));
        let mut b = Signature::new();
        b.add_input(act("secret"));
        assert!(a.check_composable(&b, "A", "B").is_err());
        assert!(b.check_composable(&a, "B", "A").is_err());
    }

    #[test]
    fn composition_turns_matched_inputs_into_outputs() {
        let mut a = Signature::new();
        a.add_output(act("f_a"));
        let mut b = Signature::new();
        b.add_input(act("f_a")).add_output(act("f_b"));
        a.check_composable(&b, "A", "B").unwrap();
        let c = a.composed_with(&b);
        assert!(c.is_output(act("f_a")));
        assert!(c.is_output(act("f_b")));
        assert!(!c.is_input(act("f_a")));
    }

    #[test]
    fn composition_keeps_unmatched_inputs() {
        let mut a = Signature::new();
        a.add_input(act("f_env"));
        let mut b = Signature::new();
        b.add_input(act("f_env"));
        let c = a.composed_with(&b);
        assert!(c.is_input(act("f_env")));
        assert_eq!(c.num_outputs(), 0);
    }

    #[test]
    fn remove_strips_every_role() {
        let mut sig = Signature::new();
        sig.add_input(act("x1")).add_output(act("x2"));
        sig.remove(act("x1"));
        sig.remove(act("x2"));
        assert!(!sig.contains(act("x1")));
        assert!(!sig.contains(act("x2")));
    }

    #[test]
    fn display_lists_all_roles() {
        let mut sig = Signature::new();
        sig.add_input(act("alpha_in")).add_output(act("beta_out"));
        let shown = sig.to_string();
        assert!(shown.contains("alpha_in"));
        assert!(shown.contains("beta_out"));
    }
}
